//! # lrm — Latent Reduced Models to Precondition Lossy Compression
//!
//! Umbrella crate re-exporting the full workspace. This reproduces the
//! system described in *"Identifying Latent Reduced Models to Precondition
//! Lossy Compression"* (IPDPS 2019): scientific floating-point data are
//! preconditioned by a reduced model (projection-based or PCA/SVD/Wavelet),
//! and the reduced representation plus a highly compressible delta are
//! stored instead of the raw field.
//!
//! See [`lrm_core`] for the preconditioning pipeline, [`lrm_compress`] for
//! the SZ-like / ZFP-like / FPC codecs, and [`lrm_datasets`] for the nine
//! scientific dataset generators used in the paper's evaluation.

pub use lrm_compress as compress;
pub use lrm_core as core;
pub use lrm_datasets as datasets;
pub use lrm_io as io;
pub use lrm_linalg as linalg;
pub use lrm_parallel as parallel;
pub use lrm_server as server;
pub use lrm_stats as stats;
pub use lrm_wavelet as wavelet;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use lrm_compress::{Codec, CompressorKind, Fpc, Sz, Zfp};
    #[allow(deprecated)]
    pub use lrm_core::{precondition_and_compress, reconstruct};
    pub use lrm_core::{
        LossyCodec, Pipeline, PipelineBuilder, PipelineConfig, PreconditionedArtifact,
        ReducedModelKind,
    };
    pub use lrm_datasets::{Dataset, DatasetKind, Field};
    pub use lrm_stats::DataCharacteristics;
}
