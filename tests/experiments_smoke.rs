//! Integration smoke test: every experiment driver that regenerates a
//! paper table or figure runs end to end at Tiny scale and produces
//! structurally sane output. (Quantitative shape assertions live in the
//! drivers' own unit tests; paper-vs-measured numbers are recorded by the
//! bench harness into EXPERIMENTS.md.)

use lrm_cli::experiments::*;
use lrm_datasets::SizeClass;

#[test]
fn fig1_and_table2() {
    let rows = characteristics::fig1(SizeClass::Tiny);
    assert_eq!(rows.len(), 9);
    let t2 = characteristics::table2(SizeClass::Tiny);
    assert!(t2.reduced_dt > t2.full_dt);
}

#[test]
fn fig3_and_fig4() {
    let rows = projection::fig3(SizeClass::Tiny, 2);
    assert_eq!(rows.len(), 24);
    assert!(rows.iter().all(|r| r.ratio.is_finite() && r.ratio > 0.0));
    let pts = projection::fig4(SizeClass::Tiny, 2);
    assert_eq!(pts.len(), 4);
}

#[test]
fn fig6_through_fig10() {
    let grid = dimred::dimred_grid(SizeClass::Tiny);
    assert_eq!(grid.len(), 72);
    assert_eq!(dimred::fig7(SizeClass::Tiny).len(), 9);
    assert_eq!(dimred::fig8(SizeClass::Tiny).len(), 9);
}

#[test]
fn fig11_sweep() {
    let pts =
        rate_distortion::fig11_datasets(SizeClass::Tiny, &[lrm_datasets::DatasetKind::Laplace]);
    assert_eq!(pts.len(), 21);
}

#[test]
fn fig12_and_table4() {
    let rows = overhead::fig12(SizeClass::Tiny);
    assert_eq!(rows.len(), 4);
    let modeled = end_to_end::table4_modeled();
    assert_eq!(modeled.len(), 6);
    let measured = end_to_end::table4_measured(SizeClass::Tiny, 64);
    assert_eq!(measured.len(), 6);
    let demo = end_to_end::staging_demo(SizeClass::Tiny, 2);
    assert_eq!(demo.snapshots, 2);
}
