//! Cross-crate integration: every dataset, every reduced model, every
//! codec — generate, precondition, serialize, reconstruct, and check the
//! error and size accounting end to end.

// These tests deliberately stay on the deprecated free-function API: they
// are the compile-time proof that pre-0.2 call sites still work through
// the shims.
#![allow(deprecated)]
use lrm::core::{
    precondition_and_compress, precondition_and_compress_with_aux, reconstruct, PipelineConfig,
    ReducedModelKind,
};
use lrm::datasets::{generate, DatasetKind, SizeClass};
use lrm::io::Artifact;
use lrm::stats::{nrmse, Summary};

fn roundtrip_ok(cfg: &PipelineConfig, kind: DatasetKind) {
    let pair = generate(kind, SizeClass::Tiny);
    let field = &pair.full;
    let art = if cfg.model == ReducedModelKind::DuoModel {
        precondition_and_compress_with_aux(field, &pair.reduced, cfg)
    } else {
        precondition_and_compress(field, cfg)
    };
    // The artifact parses as a generic container, too.
    let parsed = Artifact::from_bytes(&art.bytes).expect("artifact parses");
    assert!(parsed.get("meta").is_some());
    assert!(parsed.get("delta").is_some());

    let (rec, shape) = reconstruct(&art.bytes);
    assert_eq!(shape, field.shape, "{kind:?}/{:?}", cfg.model);
    assert_eq!(rec.len(), field.len());
    // Normalized error must be small; exact bounds are codec-specific and
    // covered by unit tests.
    let e = nrmse(&field.data, &rec);
    assert!(e < 0.05, "{kind:?}/{:?}: nrmse {e}", cfg.model);
    // Size accounting is consistent.
    assert_eq!(art.report.raw_bytes, field.nbytes());
    assert!(art.report.total_bytes() > 0);
}

#[test]
fn every_dataset_roundtrips_with_every_applicable_model() {
    for kind in DatasetKind::ALL {
        let pair_shape_dims = generate(kind, SizeClass::Tiny).full.shape.ndims();
        for model in [
            ReducedModelKind::Direct,
            ReducedModelKind::OneBase,
            ReducedModelKind::MultiBase(3),
            ReducedModelKind::DuoModel,
            ReducedModelKind::Pca,
            ReducedModelKind::Svd,
            ReducedModelKind::Wavelet,
        ] {
            let applicable = match model {
                ReducedModelKind::OneBase | ReducedModelKind::MultiBase(_) => pair_shape_dims >= 2,
                // DuoModel interpolates a coarse companion onto the full
                // grid — only meaningful for grid data, not particle
                // coordinate streams (whose reduced run has fewer atoms,
                // not a coarser grid).
                ReducedModelKind::DuoModel => {
                    pair_shape_dims >= 2
                        && !matches!(kind, DatasetKind::Umbrella | DatasetKind::VirtualSites)
                }
                _ => true,
            };
            if !applicable {
                continue;
            }
            roundtrip_ok(&PipelineConfig::sz(model), kind);
        }
    }
}

#[test]
fn zfp_and_scan1d_variants_roundtrip() {
    for kind in [DatasetKind::Heat3d, DatasetKind::Fish, DatasetKind::Wave] {
        roundtrip_ok(&PipelineConfig::zfp(ReducedModelKind::Direct), kind);
        roundtrip_ok(&PipelineConfig::zfp(ReducedModelKind::Pca), kind);
        roundtrip_ok(
            &PipelineConfig::sz(ReducedModelKind::Pca).with_scan_1d(true),
            kind,
        );
    }
}

#[test]
fn reconstruction_preserves_summary_statistics() {
    // Requirement 2 of Section II-B: analytical features survive. Check
    // mean/range drift of a full preconditioned roundtrip.
    let field = generate(DatasetKind::SedovPres, SizeClass::Tiny).full;
    let art = precondition_and_compress(&field, &PipelineConfig::sz(ReducedModelKind::Pca));
    let (rec, _) = reconstruct(&art.bytes);
    let a = Summary::of(&field.data);
    let b = Summary::of(&rec);
    let range = a.range().max(1e-12);
    assert!((a.mean() - b.mean()).abs() / range < 0.01);
    assert!((a.max() - b.max()).abs() / range < 0.05);
    assert!((a.min() - b.min()).abs() / range < 0.05);
}

#[test]
fn preconditioned_artifacts_are_portable_bytes() {
    // Serialize on one "machine", reconstruct on "another": only the raw
    // bytes cross the boundary.
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let art = precondition_and_compress(
        &field,
        &PipelineConfig::sz(ReducedModelKind::OneBase).with_scan_1d(true),
    );
    let wire: Vec<u8> = art.bytes.clone();
    let (rec, shape) = reconstruct(&wire);
    assert_eq!(shape, field.shape);
    assert_eq!(rec.len(), field.len());
}
