//! Robustness integration tests: corrupt inputs, adversarial fields, and
//! failure-injection around the pipeline's parsing layers.

// These tests deliberately stay on the deprecated free-function API: they
// are the compile-time proof that pre-0.2 call sites still work through
// the shims.
#![allow(deprecated)]
use lrm::core::Pipeline;
use lrm::core::{precondition_and_compress, reconstruct, PipelineConfig, ReducedModelKind};
use lrm::datasets::Field;
use lrm::io::Artifact;
use lrm_compress::Shape;

fn sample_field() -> Field {
    let shape = Shape::d2(16, 12);
    let data: Vec<f64> = (0..shape.len())
        .map(|i| (i as f64 * 0.21).sin() * 7.0)
        .collect();
    Field::new("robust", data, shape)
}

#[test]
fn reconstruct_rejects_corrupt_magic() {
    let art = precondition_and_compress(
        &sample_field(),
        &PipelineConfig::sz(ReducedModelKind::OneBase),
    );
    let mut bytes = art.bytes.clone();
    bytes[0] ^= 0xFF;
    // The modern API reports corruption as a typed error...
    let p = Pipeline::builder().build();
    assert!(
        p.reconstruct(&bytes).is_err(),
        "corrupt magic must not decode silently"
    );
    // ...while the deprecated shim keeps its documented panic contract.
    let r = std::panic::catch_unwind(|| reconstruct(&bytes));
    assert!(r.is_err(), "deprecated shim must keep panicking");
}

#[test]
fn reconstruct_rejects_truncated_artifacts() {
    let art =
        precondition_and_compress(&sample_field(), &PipelineConfig::sz(ReducedModelKind::Pca));
    let p = Pipeline::builder().build();
    // Every strict prefix of the stream must decode to Err, never panic.
    for cut in 0..art.bytes.len() {
        assert!(
            p.reconstruct(&art.bytes[..cut]).is_err(),
            "truncation to {cut} bytes must not decode silently"
        );
    }
}

#[test]
fn artifact_sections_are_inspectable_without_reconstruction() {
    // A storage layer can account sizes without touching codec state.
    let art =
        precondition_and_compress(&sample_field(), &PipelineConfig::zfp(ReducedModelKind::Svd));
    let parsed = Artifact::from_bytes(&art.bytes).expect("parse");
    let rep = parsed.get("rep").expect("rep").len();
    let delta = parsed.get("delta").expect("delta").len();
    assert_eq!(rep, art.report.rep_bytes);
    assert_eq!(delta, art.report.delta_bytes);
}

#[test]
fn adversarial_fields_roundtrip() {
    // Constant, alternating-sign, huge-dynamic-range, and subnormal-laden
    // fields must all survive the full pipeline within loose bounds.
    let shape = Shape::d2(20, 10);
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("constant", vec![3.125; shape.len()]),
        (
            "alternating",
            (0..shape.len())
                .map(|i| if i % 2 == 0 { 1e6 } else { -1e6 })
                .collect(),
        ),
        (
            "wide_range",
            (0..shape.len())
                .map(|i| 10f64.powi((i % 17) as i32 - 8))
                .collect(),
        ),
        (
            "tiny_values",
            (0..shape.len())
                .map(|i| 1e-300 * (i as f64 + 1.0))
                .collect(),
        ),
    ];
    for (name, data) in cases {
        let f = Field::new(name, data, shape);
        for cfg in [
            PipelineConfig::sz(ReducedModelKind::Direct),
            PipelineConfig::sz(ReducedModelKind::OneBase),
            PipelineConfig::sz(ReducedModelKind::Pca),
        ] {
            let art = precondition_and_compress(&f, &cfg);
            let (rec, _) = reconstruct(&art.bytes);
            assert_eq!(rec.len(), f.len(), "{name}/{:?}", cfg.model);
            let max = f.data.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            for (a, b) in f.data.iter().zip(&rec) {
                assert!(
                    (a - b).abs() <= 1e-2 * max + 1e-306,
                    "{name}/{:?}: {a} vs {b}",
                    cfg.model
                );
            }
        }
    }
}

#[test]
fn empty_and_single_point_fields() {
    let one = Field::new("one", vec![5.5], Shape::d1(1));
    for cfg in [
        PipelineConfig::sz(ReducedModelKind::Direct),
        PipelineConfig::sz(ReducedModelKind::Pca),
        PipelineConfig::sz(ReducedModelKind::Wavelet),
    ] {
        let art = precondition_and_compress(&one, &cfg);
        let (rec, _) = reconstruct(&art.bytes);
        assert_eq!(rec.len(), 1);
        assert!((rec[0] - 5.5).abs() < 1e-3, "{:?}: {}", cfg.model, rec[0]);
    }
}

#[test]
fn nan_inputs_do_not_poison_neighbors() {
    let shape = Shape::d1(64);
    let mut data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).cos() * 10.0).collect();
    data[20] = f64::NAN;
    let f = Field::new("nan", data.clone(), shape);
    let cfg = PipelineConfig::sz(ReducedModelKind::Direct);
    let art = precondition_and_compress(&f, &cfg);
    let (rec, _) = reconstruct(&art.bytes);
    for (i, (a, b)) in data.iter().zip(&rec).enumerate() {
        if i == 20 {
            continue; // the NaN cell itself may decode as NaN or 0
        }
        assert!(
            (a - b).abs() <= 1e-2 * 10.0,
            "index {i}: {a} vs {b} (NaN leaked)"
        );
    }
}
