//! Error-bound conformance: every dataset × every SZ bound mode × a
//! bound sweep. The decoded output must satisfy the advertised bound
//! *pointwise* (not just on average), and non-finite input anywhere in
//! the metrics layer must surface as a typed error or a counted skip —
//! never a panic.
//!
//! The paper evaluates SZ in its block-based point-wise relative mode;
//! this suite pins down what each mode actually promises:
//!
//! * `Abs(e)` — `|v' - v| <= e` at every point.
//! * `BlockRel(r)` — `|v' - v| <= r * max|block|` per scan-order block
//!   of `BLOCK_LEN` points; all-zero blocks are exact.
//! * `PointwiseRel(r)` — `|v' - v| <= r * |v|` at every point; exact
//!   zeros reproduced exactly.

use lrm::compress::sz::BLOCK_LEN;
use lrm::compress::{Codec, Sz};
use lrm::datasets::{generate, DatasetKind, SizeClass};
use lrm::stats::error::StatsError;
use lrm::stats::{Bound, BoundReport, ErrorReport};

/// The swept relative tolerances (also scaled into absolute bounds).
const SWEEP: [f64; 3] = [1e-2, 1e-4, 1e-6];

fn value_range(data: &[f64]) -> f64 {
    let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (hi - lo).max(f64::MIN_POSITIVE)
}

#[test]
fn absolute_bound_holds_pointwise_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Tiny).full;
        let range = value_range(&field.data);
        for rel in SWEEP {
            let e = rel * range;
            let sz = Sz::absolute(e);
            let bytes = sz.compress(&field.data, field.shape);
            let rec = sz
                .decompress(&bytes, field.shape)
                .expect("own output decodes");
            let report = BoundReport::try_check(&field.data, &rec, Bound::Absolute(e))
                .expect("finite data verifies");
            assert_eq!(
                report.violations, 0,
                "{kind:?} abs bound {e:e}: worst utilization {}",
                report.worst_utilization
            );
            assert!(report.worst_utilization <= 1.0 + 1e-12);
        }
    }
}

#[test]
fn block_relative_bound_holds_per_block_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Tiny).full;
        for rel in SWEEP {
            let sz = Sz::block_rel(rel);
            let bytes = sz.compress(&field.data, field.shape);
            let rec = sz
                .decompress(&bytes, field.shape)
                .expect("own output decodes");
            // The promise is per scan-order block: |v'-v| <= rel * max|block|,
            // with all-zero blocks reproduced exactly. Verify each block
            // against its own absolute bound.
            for (bi, (ob, rb)) in field
                .data
                .chunks(BLOCK_LEN)
                .zip(rec.chunks(BLOCK_LEN))
                .enumerate()
            {
                let block_max = ob.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                if block_max == 0.0 {
                    assert!(
                        rb.iter().all(|&v| v == 0.0),
                        "{kind:?} rel {rel:e}: zero block {bi} not exact"
                    );
                    continue;
                }
                let report = BoundReport::try_check(ob, rb, Bound::Absolute(rel * block_max))
                    .expect("finite data verifies");
                assert_eq!(
                    report.violations, 0,
                    "{kind:?} rel {rel:e} block {bi}: worst utilization {}",
                    report.worst_utilization
                );
            }
        }
    }
}

#[test]
fn pointwise_relative_bound_holds_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Tiny).full;
        for rel in SWEEP {
            let sz = Sz::pointwise_rel(rel);
            let bytes = sz.compress(&field.data, field.shape);
            let rec = sz
                .decompress(&bytes, field.shape)
                .expect("own output decodes");
            // floor = 0 makes Bound::Relative exactly |v'-v| <= rel*|v|,
            // which also forces exact zeros to be reproduced exactly.
            let report =
                BoundReport::try_check(&field.data, &rec, Bound::Relative { rel, floor: 0.0 })
                    .expect("finite data verifies");
            assert_eq!(
                report.violations, 0,
                "{kind:?} pw-rel {rel:e}: worst utilization {}",
                report.worst_utilization
            );
        }
    }
}

/// Poisons a copy of `data` with NaN and both infinities at spread-out
/// indices; returns the poisoned copy and the poisoned index set.
fn poison(data: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let n = data.len();
    let idxs = vec![0, n / 3, n / 2, 2 * n / 3, n - 1];
    let mut out = data.to_vec();
    out[idxs[0]] = f64::NAN;
    out[idxs[1]] = f64::INFINITY;
    out[idxs[2]] = f64::NEG_INFINITY;
    out[idxs[3]] = f64::NAN;
    out[idxs[4]] = f64::INFINITY;
    (out, idxs)
}

#[test]
fn nan_laced_data_yields_counted_report_not_panic() {
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Tiny).full;
        let (bad, idxs) = poison(&field.data);
        let mut uniq = idxs.clone();
        uniq.sort_unstable();
        uniq.dedup();

        // The report path: non-finite pairs are counted and skipped.
        let report = ErrorReport::compare(&bad, &field.data, 0.0).expect("lengths match");
        assert_eq!(report.nonfinite_count, uniq.len(), "{kind:?}");
        assert_eq!(report.finite_count, field.data.len() - uniq.len());
        assert!(!report.all_finite());
        assert!(
            report.mse.is_finite() && report.max_rel.is_finite(),
            "{kind:?}"
        );

        // Free metrics skip the poisoned pairs instead of propagating NaN.
        assert!(lrm::stats::mse(&bad, &field.data).is_finite());
        assert!(lrm::stats::nrmse(&field.data, &bad).is_finite());
        assert!(lrm::stats::max_abs_error(&bad, &field.data).is_finite());
    }
}

#[test]
fn nan_laced_data_yields_typed_error_from_bound_check() {
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let (bad, idxs) = poison(&field.data);
    let first = *idxs.iter().min().expect("nonempty");

    let err = BoundReport::try_check(&bad, &field.data, Bound::Absolute(1.0))
        .expect_err("non-finite original must be rejected");
    assert_eq!(err, StatsError::NonFiniteInput { index: first });

    // Non-finite on the reconstruction side is typed too.
    let err = BoundReport::try_check(&field.data, &bad, Bound::Absolute(1.0))
        .expect_err("non-finite reconstruction must be rejected");
    assert!(matches!(err, StatsError::NonFiniteInput { .. }));

    // Length mismatch is a typed error, not an assert.
    let err = BoundReport::try_check(&field.data[..8], &field.data[..4], Bound::Absolute(1.0))
        .expect_err("length mismatch must be rejected");
    assert_eq!(err, StatsError::LengthMismatch { left: 8, right: 4 });
}

#[test]
fn tighter_bounds_never_decompress_worse() {
    // Sanity on the sweep itself: worst absolute error is monotone in the
    // bound, so the sweep actually exercises distinct regimes.
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let range = value_range(&field.data);
    let mut last_worst = f64::INFINITY;
    for rel in SWEEP {
        let e = rel * range;
        let sz = Sz::absolute(e);
        let bytes = sz.compress(&field.data, field.shape);
        let rec = sz.decompress(&bytes, field.shape).expect("decodes");
        let worst = lrm::stats::max_abs_error(&field.data, &rec);
        assert!(
            worst <= last_worst + f64::EPSILON,
            "worst error grew as the bound tightened: {worst} > {last_worst}"
        );
        last_worst = worst;
    }
}
