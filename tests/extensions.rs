//! Integration tests for the beyond-the-paper extensions, exercised
//! through the public umbrella API exactly as a downstream user would.

// These tests deliberately stay on the deprecated free-function API: they
// are the compile-time proof that pre-0.2 call sites still work through
// the shims.
#![allow(deprecated)]
use lrm::core::temporal::{compress_series, reconstruct_series};
use lrm::core::{
    precondition_and_compress, reconstruct, sz_paper_bounds, PipelineConfig, ReducedModelKind,
};
use lrm::datasets::heat3d::Heat3d;
use lrm::datasets::heat3d_dist::solve_distributed;
use lrm::datasets::{generate, snapshots, DatasetKind, SizeClass};
use lrm::io::DiskStore;
use lrm::linalg::{randomized_svd, svd, Matrix, RsvdConfig};
use lrm::stats::nrmse;
use lrm::wavelet::WaveletModel3d;

#[test]
fn blocked_and_randomized_svd_models_work_through_the_pipeline() {
    let field = generate(DatasetKind::Yf17Temp, SizeClass::Tiny).full;
    for model in [
        ReducedModelKind::PcaBlocked(4),
        ReducedModelKind::SvdBlocked(4),
        ReducedModelKind::SvdRandomized,
    ] {
        let cfg = PipelineConfig::sz(model).with_scan_1d(true);
        let art = precondition_and_compress(&field, &cfg);
        let (rec, shape) = reconstruct(&art.bytes);
        assert_eq!(shape, field.shape, "{model:?}");
        assert!(
            nrmse(&field.data, &rec) < 0.05,
            "{model:?}: nrmse {}",
            nrmse(&field.data, &rec)
        );
    }
}

#[test]
fn randomized_svd_tracks_exact_svd_on_real_data() {
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let (m, n) = field.matrix_dims();
    let mat = Matrix::from_vec(m, n, field.data.clone());
    let exact = svd(&mat);
    let sketch = randomized_svd(&mat, &RsvdConfig::rank(4));
    for i in 0..2 {
        let rel = (exact.sigma[i] - sketch.sigma[i]).abs() / exact.sigma[i].max(1e-12);
        assert!(
            rel < 1e-3,
            "sigma {i}: {} vs {}",
            exact.sigma[i],
            sketch.sigma[i]
        );
    }
}

#[test]
fn temporal_series_over_real_heat3d_snapshots() {
    let fields = snapshots(DatasetKind::Heat3d, 5, SizeClass::Tiny);
    let (base, delta) = sz_paper_bounds();
    let series = compress_series(&fields, &base, &delta);
    let (rec, shape) = reconstruct_series(&series.bytes).expect("decode");
    assert_eq!(shape, fields[0].shape);
    assert_eq!(rec.len(), 5);
    for (f, r) in fields.iter().zip(&rec) {
        assert!(nrmse(&f.data, r) < 0.02, "{}", f.name);
    }
    // Later snapshots (small temporal deltas) must be cheaper than the
    // base snapshot.
    assert!(series.snapshot_bytes[4] <= series.snapshot_bytes[0]);
}

#[test]
fn distributed_heat3d_feeds_the_pipeline_identically() {
    let cfg = Heat3d {
        n: 16,
        steps: 40,
        dt_factor: 0.02,
        ..Default::default()
    };
    let serial = cfg.solve();
    let dist = solve_distributed(&cfg, 4);
    let p = PipelineConfig::sz(ReducedModelKind::OneBase).with_scan_1d(true);
    let a = precondition_and_compress(&serial, &p);
    let b = precondition_and_compress(&dist, &p);
    // Same bits in, same artifact payload out.
    assert_eq!(a.report.total_bytes(), b.report.total_bytes());
}

#[test]
fn wavelet3d_model_on_real_volume() {
    let field = generate(DatasetKind::Astro, SizeClass::Tiny).full;
    let [nx, ny, nz] = field.shape.dims;
    let m = WaveletModel3d::fit(&field.data, nx, ny, nz, 0.05);
    let rec = m.reconstruct();
    assert_eq!(rec.len(), field.len());
    assert!(nrmse(&field.data, &rec) < 0.2);
    assert!(m.representation_bytes() < field.nbytes());
}

#[test]
fn artifacts_survive_a_disk_round_trip() {
    let dir = std::env::temp_dir().join(format!("lrm-ext-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).expect("open");
    let fields = snapshots(DatasetKind::Laplace, 3, SizeClass::Tiny);
    let cfg = PipelineConfig::sz(ReducedModelKind::OneBase).with_scan_1d(true);
    for f in &fields {
        let art = precondition_and_compress(f, &cfg);
        store.write(&f.name, &art.bytes).expect("persist");
    }
    assert_eq!(store.list().expect("list").len(), 3);
    for f in &fields {
        let bytes = store.read(&f.name).expect("read");
        let (rec, _) = reconstruct(&bytes);
        assert!(nrmse(&f.data, &rec) < 0.01, "{}", f.name);
    }
}

#[test]
fn raw_file_import_feeds_the_selector() {
    let field = generate(DatasetKind::SedovPres, SizeClass::Tiny).full;
    let p = std::env::temp_dir().join(format!("lrm-ext-raw-{}", std::process::id()));
    lrm::datasets::write_raw(&field, &p).expect("write");
    let loaded = lrm::datasets::read_raw(&p, field.shape, "import").expect("read");
    let base = PipelineConfig::sz(ReducedModelKind::Direct).with_scan_1d(true);
    let (winner, results) =
        lrm::core::select_best_model(&loaded, &lrm::core::default_candidates(), &base);
    assert!(!results.is_empty());
    // The winner must be reproducible on the identical import.
    let (winner2, _) =
        lrm::core::select_best_model(&loaded, &lrm::core::default_candidates(), &base);
    assert_eq!(winner, winner2);
}
