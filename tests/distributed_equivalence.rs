//! Integration: the distributed (rank-simulated) one-base delta must be
//! identical to the serial computation, and the staged pipeline must
//! produce the same artifacts as inline compression.

// These tests deliberately stay on the deprecated free-function API: they
// are the compile-time proof that pre-0.2 call sites still work through
// the shims.
#![allow(deprecated)]
use lrm::core::parallel_one_base::distributed_one_base;
use lrm::core::{precondition_and_compress, PipelineConfig, ReducedModelKind};
use lrm::datasets::{generate, DatasetKind, Field, SizeClass};
use lrm::io::StagingPipeline;

#[test]
fn distributed_delta_matches_serial_for_real_heat3d_output() {
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let [nx, ny, nz] = field.shape.dims;
    let out = distributed_one_base(&field, [2, 2, 2]);
    let mid = nz / 2;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let want = field.at(x, y, z) - field.at(x, y, mid);
                let got = out.delta[field.shape.idx(x, y, z)];
                assert!((want - got).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn distributed_delta_is_grid_invariant() {
    // The rank grid is an implementation detail: 1, 2, 4 or 8 ranks must
    // produce the same bytes-for-bytes delta.
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let reference = distributed_one_base(&field, [1, 1, 1]).delta;
    for grid in [[2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        let out = distributed_one_base(&field, grid);
        assert_eq!(out.delta, reference, "grid {grid:?}");
    }
}

#[test]
fn staged_compression_equals_inline_compression() {
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let shape = field.shape;
    let cfg = PipelineConfig::sz(ReducedModelKind::OneBase);

    let inline = precondition_and_compress(&field, &cfg);

    let staging = StagingPipeline::start(2, move |name, data| {
        let f = Field::new(name.to_string(), data.to_vec(), shape);
        precondition_and_compress(&f, &cfg).bytes
    });
    staging.submit("snap", field.data.clone());
    let results = staging.finish();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].stored_bytes, inline.bytes.len());
    assert_eq!(results[0].raw_bytes, field.nbytes());
}

#[test]
fn staging_handles_many_snapshots_under_load() {
    let field = generate(DatasetKind::Wave, SizeClass::Tiny).full;
    let shape = field.shape;
    let cfg = PipelineConfig::sz(ReducedModelKind::Direct);
    let staging = StagingPipeline::start(4, move |name, data| {
        let f = Field::new(name.to_string(), data.to_vec(), shape);
        precondition_and_compress(&f, &cfg).bytes
    });
    for i in 0..32 {
        staging.submit(format!("s{i}"), field.data.clone());
    }
    let results = staging.finish();
    assert_eq!(results.len(), 32);
    let first = results[0].stored_bytes;
    assert!(results.iter().all(|r| r.stored_bytes == first));
}
