/root/repo/target/release/deps/lrm_io-6fd2e7bfef500b47.d: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

/root/repo/target/release/deps/liblrm_io-6fd2e7bfef500b47.rlib: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

/root/repo/target/release/deps/liblrm_io-6fd2e7bfef500b47.rmeta: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

crates/lrm-io/src/lib.rs:
crates/lrm-io/src/artifact.rs:
crates/lrm-io/src/chunked.rs:
crates/lrm-io/src/disk.rs:
crates/lrm-io/src/staging.rs:
crates/lrm-io/src/storage.rs:
