/root/repo/target/release/deps/lrm_parallel-061b0bc98c4dbc44.d: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

/root/repo/target/release/deps/liblrm_parallel-061b0bc98c4dbc44.rlib: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

/root/repo/target/release/deps/liblrm_parallel-061b0bc98c4dbc44.rmeta: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

crates/lrm-parallel/src/lib.rs:
crates/lrm-parallel/src/comm.rs:
crates/lrm-parallel/src/domain.rs:
crates/lrm-parallel/src/pool.rs:
