/root/repo/target/release/deps/lrm_linalg-fba152a07a1940e1.d: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

/root/repo/target/release/deps/liblrm_linalg-fba152a07a1940e1.rlib: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

/root/repo/target/release/deps/liblrm_linalg-fba152a07a1940e1.rmeta: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

crates/lrm-linalg/src/lib.rs:
crates/lrm-linalg/src/eigen.rs:
crates/lrm-linalg/src/matrix.rs:
crates/lrm-linalg/src/pca.rs:
crates/lrm-linalg/src/qr.rs:
crates/lrm-linalg/src/rsvd.rs:
crates/lrm-linalg/src/svd.rs:
