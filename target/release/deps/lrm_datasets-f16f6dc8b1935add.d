/root/repo/target/release/deps/lrm_datasets-f16f6dc8b1935add.d: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs

/root/repo/target/release/deps/liblrm_datasets-f16f6dc8b1935add.rlib: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs

/root/repo/target/release/deps/liblrm_datasets-f16f6dc8b1935add.rmeta: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs

crates/lrm-datasets/src/lib.rs:
crates/lrm-datasets/src/astro.rs:
crates/lrm-datasets/src/field.rs:
crates/lrm-datasets/src/field_io.rs:
crates/lrm-datasets/src/fish.rs:
crates/lrm-datasets/src/heat3d.rs:
crates/lrm-datasets/src/heat3d_dist.rs:
crates/lrm-datasets/src/laplace.rs:
crates/lrm-datasets/src/md.rs:
crates/lrm-datasets/src/registry.rs:
crates/lrm-datasets/src/sedov.rs:
crates/lrm-datasets/src/wave.rs:
crates/lrm-datasets/src/yf17.rs:
