/root/repo/target/release/deps/lrm_core-a85c44ba8c0de212.d: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

/root/repo/target/release/deps/liblrm_core-a85c44ba8c0de212.rlib: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

/root/repo/target/release/deps/liblrm_core-a85c44ba8c0de212.rmeta: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

crates/lrm-core/src/lib.rs:
crates/lrm-core/src/codec.rs:
crates/lrm-core/src/dimred.rs:
crates/lrm-core/src/engine.rs:
crates/lrm-core/src/parallel_one_base.rs:
crates/lrm-core/src/partitioned.rs:
crates/lrm-core/src/pipeline.rs:
crates/lrm-core/src/projection.rs:
crates/lrm-core/src/selection.rs:
crates/lrm-core/src/temporal.rs:
