/root/repo/target/release/deps/lrm_cli-24ff199ccec0176a.d: crates/lrm-cli/src/main.rs

/root/repo/target/release/deps/lrm_cli-24ff199ccec0176a: crates/lrm-cli/src/main.rs

crates/lrm-cli/src/main.rs:
