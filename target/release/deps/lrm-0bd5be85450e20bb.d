/root/repo/target/release/deps/lrm-0bd5be85450e20bb.d: src/lib.rs

/root/repo/target/release/deps/liblrm-0bd5be85450e20bb.rlib: src/lib.rs

/root/repo/target/release/deps/liblrm-0bd5be85450e20bb.rmeta: src/lib.rs

src/lib.rs:
