/root/repo/target/release/deps/lrm_wavelet-7ef5feeb1ba4744a.d: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

/root/repo/target/release/deps/liblrm_wavelet-7ef5feeb1ba4744a.rlib: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

/root/repo/target/release/deps/liblrm_wavelet-7ef5feeb1ba4744a.rmeta: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

crates/lrm-wavelet/src/lib.rs:
crates/lrm-wavelet/src/haar.rs:
crates/lrm-wavelet/src/haar3d.rs:
crates/lrm-wavelet/src/sparse.rs:
