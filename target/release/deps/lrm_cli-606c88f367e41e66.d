/root/repo/target/release/deps/lrm_cli-606c88f367e41e66.d: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs

/root/repo/target/release/deps/liblrm_cli-606c88f367e41e66.rlib: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs

/root/repo/target/release/deps/liblrm_cli-606c88f367e41e66.rmeta: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs

crates/lrm-cli/src/lib.rs:
crates/lrm-cli/src/experiments/mod.rs:
crates/lrm-cli/src/experiments/characteristics.rs:
crates/lrm-cli/src/experiments/dimred.rs:
crates/lrm-cli/src/experiments/end_to_end.rs:
crates/lrm-cli/src/experiments/overhead.rs:
crates/lrm-cli/src/experiments/projection.rs:
crates/lrm-cli/src/experiments/rate_distortion.rs:
crates/lrm-cli/src/table.rs:
