/root/repo/target/release/deps/lrm_compress-bdad4d844cacb673.d: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs

/root/repo/target/release/deps/liblrm_compress-bdad4d844cacb673.rlib: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs

/root/repo/target/release/deps/liblrm_compress-bdad4d844cacb673.rmeta: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs

crates/lrm-compress/src/lib.rs:
crates/lrm-compress/src/bitstream.rs:
crates/lrm-compress/src/fpc.rs:
crates/lrm-compress/src/lossless/mod.rs:
crates/lrm-compress/src/lossless/huffman.rs:
crates/lrm-compress/src/lossless/lzss.rs:
crates/lrm-compress/src/lossless/rle.rs:
crates/lrm-compress/src/lossless/varint.rs:
crates/lrm-compress/src/sz/mod.rs:
crates/lrm-compress/src/sz/predictor.rs:
crates/lrm-compress/src/zfp/mod.rs:
crates/lrm-compress/src/zfp/block.rs:
crates/lrm-compress/src/zfp/codec.rs:
crates/lrm-compress/src/zfp/transform.rs:
