/root/repo/target/release/deps/lrm_rng-efc2cee9b32ed112.d: crates/lrm-rng/src/lib.rs

/root/repo/target/release/deps/liblrm_rng-efc2cee9b32ed112.rlib: crates/lrm-rng/src/lib.rs

/root/repo/target/release/deps/liblrm_rng-efc2cee9b32ed112.rmeta: crates/lrm-rng/src/lib.rs

crates/lrm-rng/src/lib.rs:
