/root/repo/target/release/deps/lrm_stats-b2f303169918ffe4.d: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

/root/repo/target/release/deps/liblrm_stats-b2f303169918ffe4.rlib: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

/root/repo/target/release/deps/liblrm_stats-b2f303169918ffe4.rmeta: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

crates/lrm-stats/src/lib.rs:
crates/lrm-stats/src/bytes.rs:
crates/lrm-stats/src/cdf.rs:
crates/lrm-stats/src/error.rs:
crates/lrm-stats/src/moments.rs:
crates/lrm-stats/src/verify.rs:
