/root/repo/target/release/liblrm_rng.rlib: /root/repo/crates/lrm-rng/src/lib.rs
