/root/repo/target/release/examples/__v0_compat_check-c9ec76a0ce0d9091.d: examples/__v0_compat_check.rs

/root/repo/target/release/examples/__v0_compat_check-c9ec76a0ce0d9091: examples/__v0_compat_check.rs

examples/__v0_compat_check.rs:
