/root/repo/target/release/examples/bring_your_own_data-ef782a4306c76c84.d: examples/bring_your_own_data.rs

/root/repo/target/release/examples/bring_your_own_data-ef782a4306c76c84: examples/bring_your_own_data.rs

examples/bring_your_own_data.rs:
