/root/repo/target/release/examples/quickstart-f478db8b01b6cea0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f478db8b01b6cea0: examples/quickstart.rs

examples/quickstart.rs:
