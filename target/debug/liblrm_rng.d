/root/repo/target/debug/liblrm_rng.rlib: /root/repo/crates/lrm-rng/src/lib.rs
