/root/repo/target/debug/examples/heat3d_campaign-d2c5df9798f1c625.d: examples/heat3d_campaign.rs

/root/repo/target/debug/examples/heat3d_campaign-d2c5df9798f1c625: examples/heat3d_campaign.rs

examples/heat3d_campaign.rs:
