/root/repo/target/debug/examples/model_selection-88044f3652995a99.d: examples/model_selection.rs

/root/repo/target/debug/examples/model_selection-88044f3652995a99: examples/model_selection.rs

examples/model_selection.rs:
