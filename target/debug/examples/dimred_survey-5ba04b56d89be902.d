/root/repo/target/debug/examples/dimred_survey-5ba04b56d89be902.d: examples/dimred_survey.rs Cargo.toml

/root/repo/target/debug/examples/libdimred_survey-5ba04b56d89be902.rmeta: examples/dimred_survey.rs Cargo.toml

examples/dimred_survey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
