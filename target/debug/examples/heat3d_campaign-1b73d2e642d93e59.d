/root/repo/target/debug/examples/heat3d_campaign-1b73d2e642d93e59.d: examples/heat3d_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libheat3d_campaign-1b73d2e642d93e59.rmeta: examples/heat3d_campaign.rs Cargo.toml

examples/heat3d_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
