/root/repo/target/debug/examples/bring_your_own_data-3b5b7196fcd65db6.d: examples/bring_your_own_data.rs Cargo.toml

/root/repo/target/debug/examples/libbring_your_own_data-3b5b7196fcd65db6.rmeta: examples/bring_your_own_data.rs Cargo.toml

examples/bring_your_own_data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
