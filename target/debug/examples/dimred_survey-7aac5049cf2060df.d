/root/repo/target/debug/examples/dimred_survey-7aac5049cf2060df.d: examples/dimred_survey.rs

/root/repo/target/debug/examples/dimred_survey-7aac5049cf2060df: examples/dimred_survey.rs

examples/dimred_survey.rs:
