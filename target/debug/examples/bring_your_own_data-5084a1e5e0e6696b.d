/root/repo/target/debug/examples/bring_your_own_data-5084a1e5e0e6696b.d: examples/bring_your_own_data.rs

/root/repo/target/debug/examples/bring_your_own_data-5084a1e5e0e6696b: examples/bring_your_own_data.rs

examples/bring_your_own_data.rs:
