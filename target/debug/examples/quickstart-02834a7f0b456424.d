/root/repo/target/debug/examples/quickstart-02834a7f0b456424.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-02834a7f0b456424: examples/quickstart.rs

examples/quickstart.rs:
