/root/repo/target/debug/deps/lrm_datasets-34ce5081ccfc6a07.d: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs

/root/repo/target/debug/deps/lrm_datasets-34ce5081ccfc6a07: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs

crates/lrm-datasets/src/lib.rs:
crates/lrm-datasets/src/astro.rs:
crates/lrm-datasets/src/field.rs:
crates/lrm-datasets/src/field_io.rs:
crates/lrm-datasets/src/fish.rs:
crates/lrm-datasets/src/heat3d.rs:
crates/lrm-datasets/src/heat3d_dist.rs:
crates/lrm-datasets/src/laplace.rs:
crates/lrm-datasets/src/md.rs:
crates/lrm-datasets/src/registry.rs:
crates/lrm-datasets/src/sedov.rs:
crates/lrm-datasets/src/wave.rs:
crates/lrm-datasets/src/yf17.rs:
