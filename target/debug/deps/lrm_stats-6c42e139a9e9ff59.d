/root/repo/target/debug/deps/lrm_stats-6c42e139a9e9ff59.d: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

/root/repo/target/debug/deps/liblrm_stats-6c42e139a9e9ff59.rlib: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

/root/repo/target/debug/deps/liblrm_stats-6c42e139a9e9ff59.rmeta: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

crates/lrm-stats/src/lib.rs:
crates/lrm-stats/src/bytes.rs:
crates/lrm-stats/src/cdf.rs:
crates/lrm-stats/src/error.rs:
crates/lrm-stats/src/moments.rs:
crates/lrm-stats/src/verify.rs:
