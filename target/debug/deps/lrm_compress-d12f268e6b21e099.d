/root/repo/target/debug/deps/lrm_compress-d12f268e6b21e099.d: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_compress-d12f268e6b21e099.rmeta: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs Cargo.toml

crates/lrm-compress/src/lib.rs:
crates/lrm-compress/src/bitstream.rs:
crates/lrm-compress/src/fpc.rs:
crates/lrm-compress/src/lossless/mod.rs:
crates/lrm-compress/src/lossless/huffman.rs:
crates/lrm-compress/src/lossless/lzss.rs:
crates/lrm-compress/src/lossless/rle.rs:
crates/lrm-compress/src/lossless/varint.rs:
crates/lrm-compress/src/sz/mod.rs:
crates/lrm-compress/src/sz/predictor.rs:
crates/lrm-compress/src/zfp/mod.rs:
crates/lrm-compress/src/zfp/block.rs:
crates/lrm-compress/src/zfp/codec.rs:
crates/lrm-compress/src/zfp/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
