/root/repo/target/debug/deps/robustness-f1b73fd02ff1ad5f.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-f1b73fd02ff1ad5f: tests/robustness.rs

tests/robustness.rs:
