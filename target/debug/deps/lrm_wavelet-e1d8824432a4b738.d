/root/repo/target/debug/deps/lrm_wavelet-e1d8824432a4b738.d: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_wavelet-e1d8824432a4b738.rmeta: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs Cargo.toml

crates/lrm-wavelet/src/lib.rs:
crates/lrm-wavelet/src/haar.rs:
crates/lrm-wavelet/src/haar3d.rs:
crates/lrm-wavelet/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
