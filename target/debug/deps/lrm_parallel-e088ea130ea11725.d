/root/repo/target/debug/deps/lrm_parallel-e088ea130ea11725.d: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

/root/repo/target/debug/deps/liblrm_parallel-e088ea130ea11725.rlib: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

/root/repo/target/debug/deps/liblrm_parallel-e088ea130ea11725.rmeta: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

crates/lrm-parallel/src/lib.rs:
crates/lrm-parallel/src/comm.rs:
crates/lrm-parallel/src/domain.rs:
crates/lrm-parallel/src/pool.rs:
