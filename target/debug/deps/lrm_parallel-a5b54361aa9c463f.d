/root/repo/target/debug/deps/lrm_parallel-a5b54361aa9c463f.d: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

/root/repo/target/debug/deps/lrm_parallel-a5b54361aa9c463f: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs

crates/lrm-parallel/src/lib.rs:
crates/lrm-parallel/src/comm.rs:
crates/lrm-parallel/src/domain.rs:
crates/lrm-parallel/src/pool.rs:
