/root/repo/target/debug/deps/lrm_wavelet-770a5328b53804bb.d: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

/root/repo/target/debug/deps/liblrm_wavelet-770a5328b53804bb.rlib: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

/root/repo/target/debug/deps/liblrm_wavelet-770a5328b53804bb.rmeta: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

crates/lrm-wavelet/src/lib.rs:
crates/lrm-wavelet/src/haar.rs:
crates/lrm-wavelet/src/haar3d.rs:
crates/lrm-wavelet/src/sparse.rs:
