/root/repo/target/debug/deps/lrm_stats-cadea7f3bc5d3145.d: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

/root/repo/target/debug/deps/lrm_stats-cadea7f3bc5d3145: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs

crates/lrm-stats/src/lib.rs:
crates/lrm-stats/src/bytes.rs:
crates/lrm-stats/src/cdf.rs:
crates/lrm-stats/src/error.rs:
crates/lrm-stats/src/moments.rs:
crates/lrm-stats/src/verify.rs:
