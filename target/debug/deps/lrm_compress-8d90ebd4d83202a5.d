/root/repo/target/debug/deps/lrm_compress-8d90ebd4d83202a5.d: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs

/root/repo/target/debug/deps/liblrm_compress-8d90ebd4d83202a5.rlib: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs

/root/repo/target/debug/deps/liblrm_compress-8d90ebd4d83202a5.rmeta: crates/lrm-compress/src/lib.rs crates/lrm-compress/src/bitstream.rs crates/lrm-compress/src/fpc.rs crates/lrm-compress/src/lossless/mod.rs crates/lrm-compress/src/lossless/huffman.rs crates/lrm-compress/src/lossless/lzss.rs crates/lrm-compress/src/lossless/rle.rs crates/lrm-compress/src/lossless/varint.rs crates/lrm-compress/src/sz/mod.rs crates/lrm-compress/src/sz/predictor.rs crates/lrm-compress/src/zfp/mod.rs crates/lrm-compress/src/zfp/block.rs crates/lrm-compress/src/zfp/codec.rs crates/lrm-compress/src/zfp/transform.rs

crates/lrm-compress/src/lib.rs:
crates/lrm-compress/src/bitstream.rs:
crates/lrm-compress/src/fpc.rs:
crates/lrm-compress/src/lossless/mod.rs:
crates/lrm-compress/src/lossless/huffman.rs:
crates/lrm-compress/src/lossless/lzss.rs:
crates/lrm-compress/src/lossless/rle.rs:
crates/lrm-compress/src/lossless/varint.rs:
crates/lrm-compress/src/sz/mod.rs:
crates/lrm-compress/src/sz/predictor.rs:
crates/lrm-compress/src/zfp/mod.rs:
crates/lrm-compress/src/zfp/block.rs:
crates/lrm-compress/src/zfp/codec.rs:
crates/lrm-compress/src/zfp/transform.rs:
