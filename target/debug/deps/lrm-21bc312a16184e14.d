/root/repo/target/debug/deps/lrm-21bc312a16184e14.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblrm-21bc312a16184e14.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
