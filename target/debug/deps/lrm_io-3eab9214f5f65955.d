/root/repo/target/debug/deps/lrm_io-3eab9214f5f65955.d: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

/root/repo/target/debug/deps/lrm_io-3eab9214f5f65955: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

crates/lrm-io/src/lib.rs:
crates/lrm-io/src/artifact.rs:
crates/lrm-io/src/chunked.rs:
crates/lrm-io/src/disk.rs:
crates/lrm-io/src/staging.rs:
crates/lrm-io/src/storage.rs:
