/root/repo/target/debug/deps/lrm_core-d016b83cfbd4277c.d: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

/root/repo/target/debug/deps/lrm_core-d016b83cfbd4277c: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

crates/lrm-core/src/lib.rs:
crates/lrm-core/src/codec.rs:
crates/lrm-core/src/dimred.rs:
crates/lrm-core/src/engine.rs:
crates/lrm-core/src/parallel_one_base.rs:
crates/lrm-core/src/partitioned.rs:
crates/lrm-core/src/pipeline.rs:
crates/lrm-core/src/projection.rs:
crates/lrm-core/src/selection.rs:
crates/lrm-core/src/temporal.rs:
