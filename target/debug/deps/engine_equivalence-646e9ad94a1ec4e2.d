/root/repo/target/debug/deps/engine_equivalence-646e9ad94a1ec4e2.d: crates/lrm-core/tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-646e9ad94a1ec4e2: crates/lrm-core/tests/engine_equivalence.rs

crates/lrm-core/tests/engine_equivalence.rs:
