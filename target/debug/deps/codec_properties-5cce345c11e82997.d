/root/repo/target/debug/deps/codec_properties-5cce345c11e82997.d: crates/lrm-compress/tests/codec_properties.rs

/root/repo/target/debug/deps/codec_properties-5cce345c11e82997: crates/lrm-compress/tests/codec_properties.rs

crates/lrm-compress/tests/codec_properties.rs:
