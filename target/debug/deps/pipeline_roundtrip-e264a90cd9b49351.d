/root/repo/target/debug/deps/pipeline_roundtrip-e264a90cd9b49351.d: tests/pipeline_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_roundtrip-e264a90cd9b49351.rmeta: tests/pipeline_roundtrip.rs Cargo.toml

tests/pipeline_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
