/root/repo/target/debug/deps/lrm_cli-3bb8f79d5e9ca7d4.d: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_cli-3bb8f79d5e9ca7d4.rmeta: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs Cargo.toml

crates/lrm-cli/src/lib.rs:
crates/lrm-cli/src/experiments/mod.rs:
crates/lrm-cli/src/experiments/characteristics.rs:
crates/lrm-cli/src/experiments/dimred.rs:
crates/lrm-cli/src/experiments/end_to_end.rs:
crates/lrm-cli/src/experiments/overhead.rs:
crates/lrm-cli/src/experiments/projection.rs:
crates/lrm-cli/src/experiments/rate_distortion.rs:
crates/lrm-cli/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
