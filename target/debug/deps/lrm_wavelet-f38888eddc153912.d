/root/repo/target/debug/deps/lrm_wavelet-f38888eddc153912.d: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_wavelet-f38888eddc153912.rmeta: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs Cargo.toml

crates/lrm-wavelet/src/lib.rs:
crates/lrm-wavelet/src/haar.rs:
crates/lrm-wavelet/src/haar3d.rs:
crates/lrm-wavelet/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
