/root/repo/target/debug/deps/properties-674e00a427538387.d: crates/lrm-linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-674e00a427538387.rmeta: crates/lrm-linalg/tests/properties.rs Cargo.toml

crates/lrm-linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
