/root/repo/target/debug/deps/codec_properties-ea45bad3def05858.d: crates/lrm-compress/tests/codec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_properties-ea45bad3def05858.rmeta: crates/lrm-compress/tests/codec_properties.rs Cargo.toml

crates/lrm-compress/tests/codec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
