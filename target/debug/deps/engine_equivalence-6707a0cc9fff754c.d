/root/repo/target/debug/deps/engine_equivalence-6707a0cc9fff754c.d: crates/lrm-core/tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-6707a0cc9fff754c.rmeta: crates/lrm-core/tests/engine_equivalence.rs Cargo.toml

crates/lrm-core/tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
