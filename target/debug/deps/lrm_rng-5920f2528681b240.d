/root/repo/target/debug/deps/lrm_rng-5920f2528681b240.d: crates/lrm-rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_rng-5920f2528681b240.rmeta: crates/lrm-rng/src/lib.rs Cargo.toml

crates/lrm-rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
