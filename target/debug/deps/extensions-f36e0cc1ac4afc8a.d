/root/repo/target/debug/deps/extensions-f36e0cc1ac4afc8a.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-f36e0cc1ac4afc8a: tests/extensions.rs

tests/extensions.rs:
