/root/repo/target/debug/deps/pipeline_roundtrip-61ac511c5ba9a4eb.d: tests/pipeline_roundtrip.rs

/root/repo/target/debug/deps/pipeline_roundtrip-61ac511c5ba9a4eb: tests/pipeline_roundtrip.rs

tests/pipeline_roundtrip.rs:
