/root/repo/target/debug/deps/lrm_datasets-8331400cc9973bbf.d: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_datasets-8331400cc9973bbf.rmeta: crates/lrm-datasets/src/lib.rs crates/lrm-datasets/src/astro.rs crates/lrm-datasets/src/field.rs crates/lrm-datasets/src/field_io.rs crates/lrm-datasets/src/fish.rs crates/lrm-datasets/src/heat3d.rs crates/lrm-datasets/src/heat3d_dist.rs crates/lrm-datasets/src/laplace.rs crates/lrm-datasets/src/md.rs crates/lrm-datasets/src/registry.rs crates/lrm-datasets/src/sedov.rs crates/lrm-datasets/src/wave.rs crates/lrm-datasets/src/yf17.rs Cargo.toml

crates/lrm-datasets/src/lib.rs:
crates/lrm-datasets/src/astro.rs:
crates/lrm-datasets/src/field.rs:
crates/lrm-datasets/src/field_io.rs:
crates/lrm-datasets/src/fish.rs:
crates/lrm-datasets/src/heat3d.rs:
crates/lrm-datasets/src/heat3d_dist.rs:
crates/lrm-datasets/src/laplace.rs:
crates/lrm-datasets/src/md.rs:
crates/lrm-datasets/src/registry.rs:
crates/lrm-datasets/src/sedov.rs:
crates/lrm-datasets/src/wave.rs:
crates/lrm-datasets/src/yf17.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
