/root/repo/target/debug/deps/lrm_core-71364603c51468f3.d: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_core-71364603c51468f3.rmeta: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs Cargo.toml

crates/lrm-core/src/lib.rs:
crates/lrm-core/src/codec.rs:
crates/lrm-core/src/dimred.rs:
crates/lrm-core/src/engine.rs:
crates/lrm-core/src/parallel_one_base.rs:
crates/lrm-core/src/partitioned.rs:
crates/lrm-core/src/pipeline.rs:
crates/lrm-core/src/projection.rs:
crates/lrm-core/src/selection.rs:
crates/lrm-core/src/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
