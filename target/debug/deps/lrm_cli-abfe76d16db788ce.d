/root/repo/target/debug/deps/lrm_cli-abfe76d16db788ce.d: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs

/root/repo/target/debug/deps/liblrm_cli-abfe76d16db788ce.rlib: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs

/root/repo/target/debug/deps/liblrm_cli-abfe76d16db788ce.rmeta: crates/lrm-cli/src/lib.rs crates/lrm-cli/src/experiments/mod.rs crates/lrm-cli/src/experiments/characteristics.rs crates/lrm-cli/src/experiments/dimred.rs crates/lrm-cli/src/experiments/end_to_end.rs crates/lrm-cli/src/experiments/overhead.rs crates/lrm-cli/src/experiments/projection.rs crates/lrm-cli/src/experiments/rate_distortion.rs crates/lrm-cli/src/table.rs

crates/lrm-cli/src/lib.rs:
crates/lrm-cli/src/experiments/mod.rs:
crates/lrm-cli/src/experiments/characteristics.rs:
crates/lrm-cli/src/experiments/dimred.rs:
crates/lrm-cli/src/experiments/end_to_end.rs:
crates/lrm-cli/src/experiments/overhead.rs:
crates/lrm-cli/src/experiments/projection.rs:
crates/lrm-cli/src/experiments/rate_distortion.rs:
crates/lrm-cli/src/table.rs:
