/root/repo/target/debug/deps/lrm_rng-81dcde1d755b3bd3.d: crates/lrm-rng/src/lib.rs

/root/repo/target/debug/deps/liblrm_rng-81dcde1d755b3bd3.rlib: crates/lrm-rng/src/lib.rs

/root/repo/target/debug/deps/liblrm_rng-81dcde1d755b3bd3.rmeta: crates/lrm-rng/src/lib.rs

crates/lrm-rng/src/lib.rs:
