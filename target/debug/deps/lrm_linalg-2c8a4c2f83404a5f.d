/root/repo/target/debug/deps/lrm_linalg-2c8a4c2f83404a5f.d: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

/root/repo/target/debug/deps/liblrm_linalg-2c8a4c2f83404a5f.rlib: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

/root/repo/target/debug/deps/liblrm_linalg-2c8a4c2f83404a5f.rmeta: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

crates/lrm-linalg/src/lib.rs:
crates/lrm-linalg/src/eigen.rs:
crates/lrm-linalg/src/matrix.rs:
crates/lrm-linalg/src/pca.rs:
crates/lrm-linalg/src/qr.rs:
crates/lrm-linalg/src/rsvd.rs:
crates/lrm-linalg/src/svd.rs:
