/root/repo/target/debug/deps/experiments_smoke-83157c91e8b9b9fb.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-83157c91e8b9b9fb: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
