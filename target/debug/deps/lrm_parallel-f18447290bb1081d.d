/root/repo/target/debug/deps/lrm_parallel-f18447290bb1081d.d: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_parallel-f18447290bb1081d.rmeta: crates/lrm-parallel/src/lib.rs crates/lrm-parallel/src/comm.rs crates/lrm-parallel/src/domain.rs crates/lrm-parallel/src/pool.rs Cargo.toml

crates/lrm-parallel/src/lib.rs:
crates/lrm-parallel/src/comm.rs:
crates/lrm-parallel/src/domain.rs:
crates/lrm-parallel/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
