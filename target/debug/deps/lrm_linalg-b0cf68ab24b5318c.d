/root/repo/target/debug/deps/lrm_linalg-b0cf68ab24b5318c.d: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

/root/repo/target/debug/deps/lrm_linalg-b0cf68ab24b5318c: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs

crates/lrm-linalg/src/lib.rs:
crates/lrm-linalg/src/eigen.rs:
crates/lrm-linalg/src/matrix.rs:
crates/lrm-linalg/src/pca.rs:
crates/lrm-linalg/src/qr.rs:
crates/lrm-linalg/src/rsvd.rs:
crates/lrm-linalg/src/svd.rs:
