/root/repo/target/debug/deps/lrm_wavelet-458e5cd187a235dd.d: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

/root/repo/target/debug/deps/lrm_wavelet-458e5cd187a235dd: crates/lrm-wavelet/src/lib.rs crates/lrm-wavelet/src/haar.rs crates/lrm-wavelet/src/haar3d.rs crates/lrm-wavelet/src/sparse.rs

crates/lrm-wavelet/src/lib.rs:
crates/lrm-wavelet/src/haar.rs:
crates/lrm-wavelet/src/haar3d.rs:
crates/lrm-wavelet/src/sparse.rs:
