/root/repo/target/debug/deps/properties-b9f399de40c79094.d: crates/lrm-linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-b9f399de40c79094: crates/lrm-linalg/tests/properties.rs

crates/lrm-linalg/tests/properties.rs:
