/root/repo/target/debug/deps/robustness-a2602a65ce703ca3.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-a2602a65ce703ca3.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
