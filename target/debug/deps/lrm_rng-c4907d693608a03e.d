/root/repo/target/debug/deps/lrm_rng-c4907d693608a03e.d: crates/lrm-rng/src/lib.rs

/root/repo/target/debug/deps/lrm_rng-c4907d693608a03e: crates/lrm-rng/src/lib.rs

crates/lrm-rng/src/lib.rs:
