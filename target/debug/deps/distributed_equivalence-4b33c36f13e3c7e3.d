/root/repo/target/debug/deps/distributed_equivalence-4b33c36f13e3c7e3.d: tests/distributed_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_equivalence-4b33c36f13e3c7e3.rmeta: tests/distributed_equivalence.rs Cargo.toml

tests/distributed_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
