/root/repo/target/debug/deps/lrm-87d08d3499aee03c.d: src/lib.rs

/root/repo/target/debug/deps/liblrm-87d08d3499aee03c.rlib: src/lib.rs

/root/repo/target/debug/deps/liblrm-87d08d3499aee03c.rmeta: src/lib.rs

src/lib.rs:
