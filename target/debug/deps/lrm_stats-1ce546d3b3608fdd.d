/root/repo/target/debug/deps/lrm_stats-1ce546d3b3608fdd.d: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_stats-1ce546d3b3608fdd.rmeta: crates/lrm-stats/src/lib.rs crates/lrm-stats/src/bytes.rs crates/lrm-stats/src/cdf.rs crates/lrm-stats/src/error.rs crates/lrm-stats/src/moments.rs crates/lrm-stats/src/verify.rs Cargo.toml

crates/lrm-stats/src/lib.rs:
crates/lrm-stats/src/bytes.rs:
crates/lrm-stats/src/cdf.rs:
crates/lrm-stats/src/error.rs:
crates/lrm-stats/src/moments.rs:
crates/lrm-stats/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
