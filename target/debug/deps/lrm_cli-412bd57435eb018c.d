/root/repo/target/debug/deps/lrm_cli-412bd57435eb018c.d: crates/lrm-cli/src/main.rs

/root/repo/target/debug/deps/lrm_cli-412bd57435eb018c: crates/lrm-cli/src/main.rs

crates/lrm-cli/src/main.rs:
