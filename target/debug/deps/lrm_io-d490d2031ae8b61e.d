/root/repo/target/debug/deps/lrm_io-d490d2031ae8b61e.d: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_io-d490d2031ae8b61e.rmeta: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs Cargo.toml

crates/lrm-io/src/lib.rs:
crates/lrm-io/src/artifact.rs:
crates/lrm-io/src/chunked.rs:
crates/lrm-io/src/disk.rs:
crates/lrm-io/src/staging.rs:
crates/lrm-io/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
