/root/repo/target/debug/deps/lrm_core-29d3f57e78f20b9f.d: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

/root/repo/target/debug/deps/liblrm_core-29d3f57e78f20b9f.rlib: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

/root/repo/target/debug/deps/liblrm_core-29d3f57e78f20b9f.rmeta: crates/lrm-core/src/lib.rs crates/lrm-core/src/codec.rs crates/lrm-core/src/dimred.rs crates/lrm-core/src/engine.rs crates/lrm-core/src/parallel_one_base.rs crates/lrm-core/src/partitioned.rs crates/lrm-core/src/pipeline.rs crates/lrm-core/src/projection.rs crates/lrm-core/src/selection.rs crates/lrm-core/src/temporal.rs

crates/lrm-core/src/lib.rs:
crates/lrm-core/src/codec.rs:
crates/lrm-core/src/dimred.rs:
crates/lrm-core/src/engine.rs:
crates/lrm-core/src/parallel_one_base.rs:
crates/lrm-core/src/partitioned.rs:
crates/lrm-core/src/pipeline.rs:
crates/lrm-core/src/projection.rs:
crates/lrm-core/src/selection.rs:
crates/lrm-core/src/temporal.rs:
