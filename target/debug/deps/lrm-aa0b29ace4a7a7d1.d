/root/repo/target/debug/deps/lrm-aa0b29ace4a7a7d1.d: src/lib.rs

/root/repo/target/debug/deps/lrm-aa0b29ace4a7a7d1: src/lib.rs

src/lib.rs:
