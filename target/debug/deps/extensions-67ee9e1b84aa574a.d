/root/repo/target/debug/deps/extensions-67ee9e1b84aa574a.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-67ee9e1b84aa574a.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
