/root/repo/target/debug/deps/lrm_cli-62f0a458c53d6bfd.d: crates/lrm-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_cli-62f0a458c53d6bfd.rmeta: crates/lrm-cli/src/main.rs Cargo.toml

crates/lrm-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
