/root/repo/target/debug/deps/distributed_equivalence-8d6714e4e4b98ed9.d: tests/distributed_equivalence.rs

/root/repo/target/debug/deps/distributed_equivalence-8d6714e4e4b98ed9: tests/distributed_equivalence.rs

tests/distributed_equivalence.rs:
