/root/repo/target/debug/deps/lrm_cli-59eb7c7343cdad3f.d: crates/lrm-cli/src/main.rs

/root/repo/target/debug/deps/lrm_cli-59eb7c7343cdad3f: crates/lrm-cli/src/main.rs

crates/lrm-cli/src/main.rs:
