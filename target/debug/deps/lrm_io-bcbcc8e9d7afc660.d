/root/repo/target/debug/deps/lrm_io-bcbcc8e9d7afc660.d: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

/root/repo/target/debug/deps/liblrm_io-bcbcc8e9d7afc660.rlib: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

/root/repo/target/debug/deps/liblrm_io-bcbcc8e9d7afc660.rmeta: crates/lrm-io/src/lib.rs crates/lrm-io/src/artifact.rs crates/lrm-io/src/chunked.rs crates/lrm-io/src/disk.rs crates/lrm-io/src/staging.rs crates/lrm-io/src/storage.rs

crates/lrm-io/src/lib.rs:
crates/lrm-io/src/artifact.rs:
crates/lrm-io/src/chunked.rs:
crates/lrm-io/src/disk.rs:
crates/lrm-io/src/staging.rs:
crates/lrm-io/src/storage.rs:
