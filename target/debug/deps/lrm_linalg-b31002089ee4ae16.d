/root/repo/target/debug/deps/lrm_linalg-b31002089ee4ae16.d: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_linalg-b31002089ee4ae16.rmeta: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs Cargo.toml

crates/lrm-linalg/src/lib.rs:
crates/lrm-linalg/src/eigen.rs:
crates/lrm-linalg/src/matrix.rs:
crates/lrm-linalg/src/pca.rs:
crates/lrm-linalg/src/qr.rs:
crates/lrm-linalg/src/rsvd.rs:
crates/lrm-linalg/src/svd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
