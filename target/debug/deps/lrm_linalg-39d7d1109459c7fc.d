/root/repo/target/debug/deps/lrm_linalg-39d7d1109459c7fc.d: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs Cargo.toml

/root/repo/target/debug/deps/liblrm_linalg-39d7d1109459c7fc.rmeta: crates/lrm-linalg/src/lib.rs crates/lrm-linalg/src/eigen.rs crates/lrm-linalg/src/matrix.rs crates/lrm-linalg/src/pca.rs crates/lrm-linalg/src/qr.rs crates/lrm-linalg/src/rsvd.rs crates/lrm-linalg/src/svd.rs Cargo.toml

crates/lrm-linalg/src/lib.rs:
crates/lrm-linalg/src/eigen.rs:
crates/lrm-linalg/src/matrix.rs:
crates/lrm-linalg/src/pca.rs:
crates/lrm-linalg/src/qr.rs:
crates/lrm-linalg/src/rsvd.rs:
crates/lrm-linalg/src/svd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
