//! Shaped scalar fields — the unit of data every generator produces and
//! every preconditioner consumes.

use lrm_compress::Shape;

/// A named scalar field over a 1-D/2-D/3-D grid (row-major, x fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Human-readable name, e.g. `"heat3d/full/t=0.5"`.
    pub name: String,
    /// The samples, `shape.len()` of them.
    pub data: Vec<f64>,
    /// Grid extents.
    pub shape: Shape,
}

impl Field {
    /// Creates a field, checking that the buffer matches the shape.
    pub fn new(name: impl Into<String>, data: Vec<f64>, shape: Shape) -> Self {
        assert_eq!(data.len(), shape.len(), "field: buffer/shape mismatch");
        Self {
            name: name.into(),
            data,
            shape,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field holds no samples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the raw field in bytes (doubles).
    pub fn nbytes(&self) -> usize {
        self.data.len() * 8
    }

    /// Views the field as an `(rows, cols)` matrix for the dimension
    /// reducers: columns are the x extent; every higher dimension is
    /// flattened into rows. A 1-D field is folded into the tallest
    /// near-square matrix whose column count divides its length (so the
    /// column-space methods have structure to exploit); a prime-length
    /// 1-D field degenerates to a single row.
    pub fn matrix_dims(&self) -> (usize, usize) {
        let [nx, ny, nz] = self.shape.dims;
        match self.shape.ndims() {
            1 => {
                let mut cols = (nx as f64).sqrt().min(nx as f64).max(1.0) as usize;
                while cols > 1 && nx % cols != 0 {
                    cols -= 1;
                }
                (nx / cols.max(1), cols.max(1))
            }
            _ => (ny * nz, nx),
        }
    }

    /// Value at `(x, y, z)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.shape.idx(x, y, z)]
    }

    /// Extracts the horizontal plane `z = k` of a 3-D field as a 2-D
    /// field (used by the *one-base*/*multi-base* reduced models).
    pub fn plane_z(&self, k: usize) -> Field {
        let [nx, ny, nz] = self.shape.dims;
        assert!(k < nz, "plane_z: index out of range");
        let mut data = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                data.push(self.at(x, y, k));
            }
        }
        Field::new(
            format!("{}/plane_z={k}", self.name),
            data,
            Shape::d2(nx, ny),
        )
    }

    /// Minimum and maximum sample values (0,0 for an empty field).
    pub fn min_max(&self) -> (f64, f64) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dims_flatten_higher_dimensions() {
        let f = Field::new("t", vec![0.0; 24], Shape::d3(2, 3, 4));
        assert_eq!(f.matrix_dims(), (12, 2));
        // Prime length: degenerate single column.
        let g = Field::new("t", vec![0.0; 7], Shape::d1(7));
        assert_eq!(g.matrix_dims(), (7, 1));
        // Power of two folds to a square.
        let h = Field::new("t", vec![0.0; 4096], Shape::d1(4096));
        assert_eq!(h.matrix_dims(), (64, 64));
        // Non-square composite folds to the nearest divisor.
        let i = Field::new("t", vec![0.0; 1470], Shape::d1(1470));
        assert_eq!(i.matrix_dims(), (42, 35));
    }

    #[test]
    fn plane_extraction() {
        let shape = Shape::d3(2, 2, 2);
        let data: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let f = Field::new("t", data, shape);
        let p = f.plane_z(1);
        assert_eq!(p.shape, Shape::d2(2, 2));
        assert_eq!(p.data, vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn min_max() {
        let f = Field::new("t", vec![3.0, -1.0, 2.0], Shape::d1(3));
        assert_eq!(f.min_max(), (-1.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "buffer/shape mismatch")]
    fn rejects_mismatched_buffer() {
        Field::new("t", vec![0.0; 5], Shape::d2(2, 2));
    }
}
