//! Uniform access to the nine datasets of Table I.
//!
//! Experiments iterate over [`DatasetKind::ALL`] and ask for a
//! full/reduced [`ModelPair`] or a series of snapshots at one of three
//! [`SizeClass`]es: `Tiny` keeps unit tests fast, `Small` drives the
//! benchmark harness at laptop scale, and `Paper` approaches the paper's
//! setup (192³ Heat3d, 1 960-atom MD, …).

use crate::astro::Astro;
use crate::field::Field;
use crate::fish::Fish;
use crate::heat3d::Heat3d;
use crate::laplace::Laplace;
use crate::md::{MdConfig, Umbrella, VirtualSites};
use crate::sedov::Sedov;
use crate::wave::Wave;
use crate::yf17::Yf17;

/// The nine datasets of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Distribution of heat in a region over time (3-D PDE).
    Heat3d,
    /// Steady-state value distributions (2-D PDE).
    Laplace,
    /// Hyperbolic PDE describing waves (1-D).
    Wave,
    /// MD umbrella-sampling trajectory.
    Umbrella,
    /// MD with virtual interaction sites.
    VirtualSites,
    /// Supernova velocity magnitude.
    Astro,
    /// Mixing-tank cooling-jet velocity magnitude (many exact zeros).
    Fish,
    /// Strong-shock hydrodynamics pressure.
    SedovPres,
    /// CFD temperature around an airframe.
    Yf17Temp,
}

impl DatasetKind {
    /// All nine, in Table I order.
    pub const ALL: [DatasetKind; 9] = [
        DatasetKind::Heat3d,
        DatasetKind::Laplace,
        DatasetKind::Wave,
        DatasetKind::Umbrella,
        DatasetKind::VirtualSites,
        DatasetKind::Astro,
        DatasetKind::Fish,
        DatasetKind::SedovPres,
        DatasetKind::Yf17Temp,
    ];

    /// The paper's dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Heat3d => "Heat3d",
            DatasetKind::Laplace => "Laplace",
            DatasetKind::Wave => "Wave",
            DatasetKind::Umbrella => "Umbrella",
            DatasetKind::VirtualSites => "Virtual_sites",
            DatasetKind::Astro => "Astro",
            DatasetKind::Fish => "Fish",
            DatasetKind::SedovPres => "Sedov_pres",
            DatasetKind::Yf17Temp => "Yf17_temp",
        }
    }

    /// Parses a (case-insensitive) dataset name.
    pub fn parse(s: &str) -> Option<DatasetKind> {
        let l = s.to_ascii_lowercase();
        DatasetKind::ALL
            .into_iter()
            .find(|k| k.name().to_ascii_lowercase() == l)
    }
}

/// Problem-size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Seconds-fast sizes for unit tests.
    Tiny,
    /// Laptop-scale sizes for the benchmark harness.
    Small,
    /// Sizes approaching the paper's setup.
    Paper,
}

/// A full-model field paired with its reduced-model counterpart
/// (the object Fig. 1 compares).
#[derive(Debug, Clone)]
pub struct ModelPair {
    /// The full-model output.
    pub full: Field,
    /// The reduced-model output (smaller grid / fewer atoms / smaller
    /// domain, per Section III-A).
    pub reduced: Field,
}

fn heat3d_cfg(size: SizeClass) -> Heat3d {
    match size {
        // dt_factor mirrors the paper's conservative (min h)³/8κ time
        // step, ~0.004 of the stability limit: 50 000 such steps integrate
        // a short physical time, so the fine-scale initial structure is
        // still present in every snapshot (exactly the regime the paper's
        // Table II statistics show).
        SizeClass::Tiny => Heat3d {
            n: 16,
            steps: 400,
            dt_factor: 0.02,
            ..Default::default()
        },
        SizeClass::Small => Heat3d {
            n: 48,
            steps: 4000,
            dt_factor: 0.004,
            ..Default::default()
        },
        SizeClass::Paper => Heat3d {
            n: 192,
            steps: 50_000,
            dt_factor: 0.004,
            ..Default::default()
        },
    }
}

fn laplace_cfg(size: SizeClass) -> Laplace {
    match size {
        SizeClass::Tiny => Laplace {
            n: 16,
            iterations: 60,
            ..Default::default()
        },
        SizeClass::Small => Laplace {
            n: 64,
            iterations: 1500,
            ..Default::default()
        },
        SizeClass::Paper => Laplace {
            n: 192,
            iterations: 12_000,
            ..Default::default()
        },
    }
}

fn wave_cfg(size: SizeClass) -> Wave {
    match size {
        SizeClass::Tiny => Wave {
            n: 128,
            steps: 60,
            ..Default::default()
        },
        SizeClass::Small => Wave {
            n: 4096,
            steps: 1500,
            ..Default::default()
        },
        SizeClass::Paper => Wave {
            n: 65_536,
            steps: 20_000,
            ..Default::default()
        },
    }
}

fn md_cfg(size: SizeClass) -> MdConfig {
    match size {
        SizeClass::Tiny => MdConfig {
            n_atoms: 27,
            steps: 15,
            ..Default::default()
        },
        SizeClass::Small => MdConfig {
            n_atoms: 490,
            steps: 60,
            ..Default::default()
        },
        SizeClass::Paper => MdConfig {
            n_atoms: 1960,
            steps: 200,
            ..Default::default()
        },
    }
}

fn astro_cfg(size: SizeClass) -> Astro {
    match size {
        SizeClass::Tiny => Astro {
            n: 16,
            ..Default::default()
        },
        SizeClass::Small => Astro {
            n: 64,
            ..Default::default()
        },
        SizeClass::Paper => Astro {
            n: 128,
            ..Default::default()
        },
    }
}

fn fish_cfg(size: SizeClass) -> Fish {
    match size {
        SizeClass::Tiny => Fish {
            nx: 24,
            ny: 16,
            ..Default::default()
        },
        SizeClass::Small => Fish {
            nx: 128,
            ny: 96,
            ..Default::default()
        },
        SizeClass::Paper => Fish {
            nx: 512,
            ny: 384,
            ..Default::default()
        },
    }
}

fn sedov_cfg(size: SizeClass) -> Sedov {
    match size {
        SizeClass::Tiny => Sedov {
            n: 16,
            ..Default::default()
        },
        SizeClass::Small => Sedov {
            n: 64,
            ..Default::default()
        },
        SizeClass::Paper => Sedov {
            n: 128,
            ..Default::default()
        },
    }
}

fn yf17_cfg(size: SizeClass) -> Yf17 {
    match size {
        SizeClass::Tiny => Yf17 {
            nx: 24,
            ny: 12,
            nz: 8,
            ..Default::default()
        },
        SizeClass::Small => Yf17::default(),
        SizeClass::Paper => Yf17 {
            nx: 192,
            ny: 96,
            nz: 64,
            ..Default::default()
        },
    }
}

/// Generates the full-model and reduced-model outputs for `kind`.
///
/// The reduction follows Section III-A: PDE datasets scale down the
/// problem size (factor 4 per dimension for Heat3d, matching 192³→48³),
/// the MD datasets lower the atom count 4×, and the remaining datasets
/// halve the computational domain and physical time.
pub fn generate(kind: DatasetKind, size: SizeClass) -> ModelPair {
    match kind {
        DatasetKind::Heat3d => {
            let cfg = heat3d_cfg(size);
            ModelPair {
                full: cfg.solve(),
                reduced: cfg.coarse(4).solve(),
            }
        }
        DatasetKind::Laplace => {
            let cfg = laplace_cfg(size);
            ModelPair {
                full: cfg.solve(),
                reduced: cfg.coarse(4).solve(),
            }
        }
        DatasetKind::Wave => {
            let cfg = wave_cfg(size);
            ModelPair {
                full: cfg.solve(),
                reduced: cfg.coarse(4).solve(),
            }
        }
        DatasetKind::Umbrella => {
            let u = Umbrella {
                md: md_cfg(size),
                ..Default::default()
            };
            ModelPair {
                full: u.solve(),
                reduced: u.coarse(4).solve(),
            }
        }
        DatasetKind::VirtualSites => {
            let v = VirtualSites {
                md: md_cfg(size),
                ..Default::default()
            };
            ModelPair {
                full: v.solve(),
                reduced: v.coarse(4).solve(),
            }
        }
        DatasetKind::Astro => {
            let a = astro_cfg(size);
            ModelPair {
                full: a.solve(),
                reduced: a.reduced().solve(),
            }
        }
        DatasetKind::Fish => {
            let f = fish_cfg(size);
            ModelPair {
                full: f.solve(),
                reduced: f.reduced().solve(),
            }
        }
        DatasetKind::SedovPres => {
            let s = sedov_cfg(size);
            ModelPair {
                full: s.solve(),
                reduced: s.reduced().solve(),
            }
        }
        DatasetKind::Yf17Temp => {
            let y = yf17_cfg(size);
            ModelPair {
                full: y.solve(),
                reduced: y.reduced().solve(),
            }
        }
    }
}

/// Generates `count` *reduced-model* snapshots over the run's lifetime,
/// time-aligned with [`snapshots`] — the coarse companions DuoModel
/// preconditions against.
pub fn reduced_snapshots(kind: DatasetKind, count: usize, size: SizeClass) -> Vec<Field> {
    match kind {
        DatasetKind::Heat3d => heat3d_cfg(size).coarse(4).snapshots(count),
        DatasetKind::Laplace => laplace_cfg(size).coarse(4).snapshots(count),
        DatasetKind::Wave => wave_cfg(size).coarse(4).snapshots(count),
        DatasetKind::Umbrella => Umbrella {
            md: md_cfg(size),
            ..Default::default()
        }
        .coarse(4)
        .snapshots(count),
        DatasetKind::VirtualSites => VirtualSites {
            md: md_cfg(size),
            ..Default::default()
        }
        .coarse(4)
        .snapshots(count),
        DatasetKind::Astro => astro_cfg(size).reduced().snapshots(count),
        DatasetKind::Fish => fish_cfg(size).reduced().snapshots(count),
        DatasetKind::SedovPres => sedov_cfg(size).reduced().snapshots(count),
        DatasetKind::Yf17Temp => yf17_cfg(size).reduced().snapshots(count),
    }
}

/// Generates `count` full-model snapshots over the run's lifetime (the
/// "20 outputs of each application" the paper averages over).
pub fn snapshots(kind: DatasetKind, count: usize, size: SizeClass) -> Vec<Field> {
    match kind {
        DatasetKind::Heat3d => heat3d_cfg(size).snapshots(count),
        DatasetKind::Laplace => laplace_cfg(size).snapshots(count),
        DatasetKind::Wave => wave_cfg(size).snapshots(count),
        DatasetKind::Umbrella => Umbrella {
            md: md_cfg(size),
            ..Default::default()
        }
        .snapshots(count),
        DatasetKind::VirtualSites => VirtualSites {
            md: md_cfg(size),
            ..Default::default()
        }
        .snapshots(count),
        DatasetKind::Astro => astro_cfg(size).snapshots(count),
        DatasetKind::Fish => fish_cfg(size).snapshots(count),
        DatasetKind::SedovPres => sedov_cfg(size).snapshots(count),
        DatasetKind::Yf17Temp => yf17_cfg(size).snapshots(count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_datasets_generate_tiny_pairs() {
        for kind in DatasetKind::ALL {
            let pair = generate(kind, SizeClass::Tiny);
            assert!(!pair.full.is_empty(), "{:?} full empty", kind);
            assert!(!pair.reduced.is_empty(), "{:?} reduced empty", kind);
            assert!(
                pair.reduced.len() < pair.full.len(),
                "{:?}: reduced ({}) must be smaller than full ({})",
                kind,
                pair.reduced.len(),
                pair.full.len()
            );
            assert!(pair.full.data.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn names_roundtrip_through_parse() {
        for kind in DatasetKind::ALL {
            assert_eq!(DatasetKind::parse(kind.name()), Some(kind));
            assert_eq!(DatasetKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn snapshots_counts_match() {
        for kind in DatasetKind::ALL {
            let s = snapshots(kind, 3, SizeClass::Tiny);
            assert_eq!(s.len(), 3, "{kind:?}");
        }
    }

    #[test]
    fn reduction_is_substantial() {
        // Requirement 3 of Section II-B: the reduced model must be
        // substantially cheaper. Check >= 4x smaller output everywhere.
        for kind in DatasetKind::ALL {
            let pair = generate(kind, SizeClass::Tiny);
            assert!(
                pair.full.len() >= 3 * pair.reduced.len(),
                "{:?}: {} vs {}",
                kind,
                pair.full.len(),
                pair.reduced.len()
            );
        }
    }
}
