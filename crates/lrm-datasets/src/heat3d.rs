//! Heat3d: explicit finite-difference solver for the 3-D heat equation.
//!
//! `∂u/∂t = κ ∇²u` on the unit cube with Dirichlet boundaries, central
//! differences in space and forward Euler in time (the Heat3d code of the
//! paper's case study, Section IV-A). The solver is data-parallel over z
//! slabs on the workspace worker pool — the in-process analogue of the
//! paper's MPI decomposition (the rank-level communication pattern is exercised
//! separately in `lrm-parallel`).
//!
//! Three model variants mirror the paper:
//! * **full** — the 3-D solve ([`Heat3d::solve`]).
//! * **projected reduced model** — the Z dimension collapsed, giving the
//!   2-D equation the paper derives ([`Heat2d::solve`]); Table II pairs
//!   the two.
//! * **DuoModel reduced model** — the same 3-D solve at a fraction of the
//!   resolution ([`Heat3d::coarse`]).

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the 3-D solve.
#[derive(Debug, Clone, Copy)]
pub struct Heat3d {
    /// Points along each edge (paper: 192).
    pub n: usize,
    /// Thermal conductivity κ.
    pub kappa: f64,
    /// Number of time steps (paper: 50 000).
    pub steps: usize,
    /// Hot-boundary temperature.
    pub t_hot: f64,
    /// Initial interior temperature.
    pub t_cold: f64,
    /// Fraction of the stability-limited time step actually used. The
    /// paper derives Δt from `(min h)³ / 8κ`, which sits ~250× below the
    /// h²/6κ stability limit — so its 50 000 steps integrate a *short*
    /// physical time and the initial fine-scale structure survives into
    /// every snapshot. 1.0 reproduces a standard stability-bound solver.
    pub dt_factor: f64,
    /// Amplitude of the z-coherent initial temperature texture (a
    /// patterned heat source): multi-scale (x, y) structure replicated
    /// along z. Because the heat equation is linear and the boundary
    /// conditions are z-uniform, this component evolves identically in
    /// every plane — the latent reduced model one-base extracts.
    pub texture: f64,
}

impl Default for Heat3d {
    fn default() -> Self {
        Self {
            n: 48,
            kappa: 1.0,
            steps: 500,
            t_hot: 100.0,
            t_cold: 0.0,
            dt_factor: 1.0,
            texture: 15.0,
        }
    }
}

/// Deterministic multi-scale (x, y) texture in unit coordinates —
/// the patterned initial temperature both Heat3d models share.
fn texture_at(fx: f64, fy: f64) -> f64 {
    // Wavelengths from ~0.4 down to ~0.08 of the domain.
    (fx * 15.7).sin() * (fy * 12.3).cos()
        + 0.8 * (fx * 31.4 + 1.3).sin() * (fy * 27.2 + 0.7).sin()
        + 0.6 * (fx * 52.9 + 2.1).cos() * (fy * 47.1 + 1.9).sin()
        + 0.4 * (fx * 78.5 + 0.4).sin() * (fy * 71.3 + 2.6).cos()
}

impl Heat3d {
    /// Stable time step: `h² / (6κ)` scaled by a safety factor (the 3-D
    /// CFL-like stability condition for forward Euler).
    pub fn stable_dt(&self) -> f64 {
        let h = 1.0 / (self.n.max(2) - 1) as f64;
        h * h / (6.0 * self.kappa) * 0.9
    }

    /// The time step actually integrated: `stable_dt * dt_factor`.
    pub fn dt(&self) -> f64 {
        self.stable_dt() * self.dt_factor.clamp(1e-6, 1.0)
    }

    /// Initial condition: cold interior, hot side walls (the four x/y
    /// faces), a hot spherical inclusion at the center, plus a
    /// constellation of small hot spots. The z faces are adiabatic
    /// (Neumann), so the solution is nearly uniform along z away from the
    /// inclusions — which makes the mid z-plane the symmetry plane the
    /// paper identifies as the natural one-base reduced model. The small
    /// spots have a *physical* radius of ~1/20 of the domain, so a
    /// 4×-coarser reduced run under-resolves them — the fine-scale
    /// physics a low-resolution DuoModel companion discards (Section
    /// II-B's caveat).
    fn init(&self) -> Vec<f64> {
        let n = self.n;
        let shape = Shape::d3(n, n, n);
        let mut u = vec![self.t_cold; shape.len()];
        for z in 0..n {
            for k in 0..n {
                u[shape.idx(0, k, z)] = self.t_hot;
                u[shape.idx(n - 1, k, z)] = self.t_hot;
                u[shape.idx(k, 0, z)] = self.t_hot;
                u[shape.idx(k, n - 1, z)] = self.t_hot;
            }
        }
        // Sphere centers in unit coordinates: one large central inclusion
        // and six small off-center spots.
        let spheres: [(f64, f64, f64, f64); 7] = [
            (0.50, 0.50, 0.50, 1.0 / 6.0),
            (0.25, 0.25, 0.60, 0.05),
            (0.75, 0.30, 0.40, 0.05),
            (0.30, 0.75, 0.70, 0.05),
            (0.70, 0.70, 0.25, 0.05),
            (0.20, 0.55, 0.30, 0.05),
            (0.60, 0.20, 0.75, 0.05),
        ];
        let scale = (n as f64 - 1.0).max(1.0);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let (fx, fy, fz) = (x as f64 / scale, y as f64 / scale, z as f64 / scale);
                    let i = shape.idx(x, y, z);
                    let interior = x > 0 && x < n - 1 && y > 0 && y < n - 1;
                    if interior {
                        u[i] += self.texture * texture_at(fx, fy);
                    }
                    for &(cx, cy, cz, r) in &spheres {
                        let d2 = (fx - cx).powi(2) + (fy - cy).powi(2) + (fz - cz).powi(2);
                        if d2 < r * r {
                            u[i] = self.t_hot;
                            break;
                        }
                    }
                }
            }
        }
        u
    }

    /// Runs the solve to completion and returns the final temperature
    /// field.
    pub fn solve(&self) -> Field {
        if self.steps == 0 {
            return self.solve_initial();
        }
        self.snapshots(1).pop().expect("one snapshot requested")
    }

    /// The initial condition as a field (used by the distributed solver
    /// and handy for inspecting the texture).
    pub fn solve_initial(&self) -> Field {
        let n = self.n;
        Field::new(
            format!("heat3d/init/n={n}"),
            self.init(),
            Shape::d3(n, n, n),
        )
    }

    /// Runs the solve, capturing `count` snapshots uniformly spaced over
    /// the simulation lifetime (the paper's experiments use 20 outputs).
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "heat3d: need at least one snapshot");
        let n = self.n;
        let shape = Shape::d3(n, n, n);
        let h = 1.0 / (n.max(2) - 1) as f64;
        let dt = self.dt();
        let coef = self.kappa * dt / (h * h);

        let mut u = self.init();
        let mut next = u.clone();
        let mut out = Vec::with_capacity(count);
        let plane = n * n;

        for step in 1..=self.steps {
            {
                let u_ref = &u;
                // Interior z-slabs update in parallel; boundary faces stay
                // Dirichlet-fixed.
                let slabs: Vec<&mut [f64]> =
                    next[plane..(n - 1) * plane].chunks_mut(plane).collect();
                lrm_parallel::WorkerPool::auto().run(slabs, |zi, slab| {
                    let z = zi + 1;
                    for y in 1..n - 1 {
                        for x in 1..n - 1 {
                            let i = shape.idx(x, y, z);
                            let c = u_ref[i];
                            let lap = u_ref[i + 1]
                                + u_ref[i - 1]
                                + u_ref[i + n]
                                + u_ref[i - n]
                                + u_ref[i + plane]
                                + u_ref[i - plane]
                                - 6.0 * c;
                            slab[y * n + x] = c + coef * lap;
                        }
                    }
                });
            }
            // Adiabatic (Neumann) z faces: copy the adjacent interior plane.
            let (lo, rest) = next.split_at_mut(plane);
            lo.copy_from_slice(&rest[..plane]);
            let start_top = (n - 2) * plane;
            let (body, top) = next.split_at_mut((n - 1) * plane);
            top.copy_from_slice(&body[start_top..start_top + plane]);
            // Side walls stay Dirichlet-hot.
            for z in [0usize, n - 1] {
                for k in 0..n {
                    next[shape.idx(0, k, z)] = self.t_hot;
                    next[shape.idx(n - 1, k, z)] = self.t_hot;
                    next[shape.idx(k, 0, z)] = self.t_hot;
                    next[shape.idx(k, n - 1, z)] = self.t_hot;
                }
            }
            std::mem::swap(&mut u, &mut next);
            // Snapshot on the uniform schedule (always include the end).
            let due = step * count / self.steps;
            let prev_due = (step - 1) * count / self.steps;
            if due > prev_due {
                out.push(Field::new(
                    format!("heat3d/full/n={n}/step={step}"),
                    u.clone(),
                    shape,
                ));
            }
        }
        if out.len() < count {
            out.push(Field::new(
                format!("heat3d/full/n={n}/step={}", self.steps),
                u,
                shape,
            ));
        }
        out
    }

    /// The DuoModel-style reduced model: the same physics at `1/factor`
    /// resolution (the paper's Heat3d reduced model by grid scaling,
    /// 192³ → 48³ is `factor = 4`).
    pub fn coarse(&self, factor: usize) -> Heat3d {
        Heat3d {
            n: (self.n / factor).max(4),
            ..*self
        }
    }

    /// The projected 2-D reduced model of the same setup (Section IV-A:
    /// collapse Z, enlarge the time step to the 2-D stability bound).
    pub fn projected(&self) -> Heat2d {
        Heat2d {
            n: self.n,
            kappa: self.kappa,
            texture: self.texture,
            // The paper integrates the reduced model to the same physical
            // time with far fewer steps (50 000 → 260) thanks to the
            // larger stable dt; mirror the ratio.
            steps: (self.steps as f64 * self.dt()
                / Heat2d {
                    n: self.n,
                    kappa: self.kappa,
                    texture: self.texture,
                    steps: 1,
                    t_hot: self.t_hot,
                    t_cold: self.t_cold,
                }
                .stable_dt())
            .ceil()
            .max(1.0) as usize,
            t_hot: self.t_hot,
            t_cold: self.t_cold,
        }
    }
}

/// The projection-based 2-D reduced model of [`Heat3d`].
#[derive(Debug, Clone, Copy)]
pub struct Heat2d {
    /// Points along each edge.
    pub n: usize,
    /// Thermal conductivity κ.
    pub kappa: f64,
    /// Texture amplitude (matches the parent 3-D model's).
    pub texture: f64,
    /// Number of time steps.
    pub steps: usize,
    /// Hot-boundary temperature.
    pub t_hot: f64,
    /// Initial interior temperature.
    pub t_cold: f64,
}

impl Heat2d {
    /// Stable time step for the 2-D forward-Euler update.
    pub fn stable_dt(&self) -> f64 {
        let h = 1.0 / (self.n.max(2) - 1) as f64;
        h * h / (4.0 * self.kappa) * 0.9
    }

    /// Runs the 2-D solve; the initial condition is the mid-plane of the
    /// 3-D initial condition (hot disc at center; the hot z=0 face of the
    /// full model has no 2-D counterpart).
    pub fn solve(&self) -> Field {
        let n = self.n;
        let shape = Shape::d2(n, n);
        let h = 1.0 / (n.max(2) - 1) as f64;
        let dt = self.stable_dt();
        let coef = self.kappa * dt / (h * h);

        let mut u = vec![self.t_cold; shape.len()];
        for k in 0..n {
            u[shape.idx(0, k, 0)] = self.t_hot;
            u[shape.idx(n - 1, k, 0)] = self.t_hot;
            u[shape.idx(k, 0, 0)] = self.t_hot;
            u[shape.idx(k, n - 1, 0)] = self.t_hot;
        }
        let c = (n as f64 - 1.0) / 2.0;
        let r2 = (n as f64 / 6.0).powi(2);
        let scale = (n as f64 - 1.0).max(1.0);
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = shape.idx(x, y, 0);
                u[i] += self.texture * texture_at(x as f64 / scale, y as f64 / scale);
                let d2 = (x as f64 - c).powi(2) + (y as f64 - c).powi(2);
                if d2 < r2 {
                    u[i] = self.t_hot;
                }
            }
        }
        let mut next = u.clone();
        for _ in 0..self.steps {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = shape.idx(x, y, 0);
                    let lap = u[i + 1] + u[i - 1] + u[i + n] + u[i - n] - 4.0 * u[i];
                    next[i] = u[i] + coef * lap;
                }
            }
            std::mem::swap(&mut u, &mut next);
        }
        Field::new(format!("heat3d/projected2d/n={n}"), u, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Heat3d {
        Heat3d {
            n: 16,
            steps: 50,
            ..Default::default()
        }
    }

    #[test]
    fn temperatures_stay_within_initial_bounds() {
        // Discrete maximum principle: explicit stable heat steps cannot
        // create new extrema.
        let f = tiny().solve();
        let (lo, hi) = f.min_max();
        assert!(lo >= -1e-9 && hi <= 100.0 + 1e-9, "({lo}, {hi})");
    }

    #[test]
    fn heat_diffuses_from_hot_walls() {
        let cfg = tiny();
        let f = cfg.solve();
        // Just inside a hot wall, interior points must have warmed up.
        let v = f.at(1, 8, 8);
        assert!(v > 1.0, "near-wall temperature {v}");
        // Points near the domain center (away from the inclusion) stay
        // cooler than the walls.
        assert!(f.at(4, 8, 8) < 100.0);
    }

    #[test]
    fn solution_is_nearly_uniform_along_z() {
        // The property one-base exploits: with adiabatic z faces the
        // field barely varies along z away from the hot spots.
        let f = Heat3d {
            n: 24,
            steps: 300,
            ..Default::default()
        }
        .solve();
        let mid = 12;
        let mut worst: f64 = 0.0;
        for z in 2..22 {
            let d = (f.at(2, 2, z) - f.at(2, 2, mid)).abs();
            worst = worst.max(d);
        }
        assert!(worst < 5.0, "z variation {worst}");
    }

    #[test]
    fn snapshots_are_ordered_and_counted() {
        let snaps = tiny().snapshots(5);
        assert_eq!(snaps.len(), 5);
        // Energy (sum) decreases toward steady state with cold walls?
        // Not necessarily monotone with a hot boundary; just check shapes.
        for s in &snaps {
            assert_eq!(s.shape, Shape::d3(16, 16, 16));
        }
    }

    #[test]
    fn stable_dt_scales_with_resolution() {
        let a = Heat3d {
            n: 16,
            ..Default::default()
        };
        let b = Heat3d {
            n: 32,
            ..Default::default()
        };
        assert!(a.stable_dt() > b.stable_dt());
    }

    #[test]
    fn projected_model_takes_fewer_steps_with_larger_dt() {
        let full = Heat3d {
            n: 32,
            steps: 1000,
            ..Default::default()
        };
        let red = full.projected();
        assert!(red.steps < full.steps);
        assert!(red.stable_dt() > full.stable_dt());
    }

    #[test]
    fn projected_solve_resembles_mid_plane() {
        // The paper's key observation: the full model's mid-plane is close
        // to the 2-D reduced model. "Close" here is statistical, not
        // pointwise; compare value ranges.
        let full = Heat3d {
            n: 24,
            steps: 200,
            ..Default::default()
        };
        let f3 = full.solve();
        let mid = f3.plane_z(12);
        let f2 = full.projected().solve();
        let (lo3, hi3) = mid.min_max();
        let (lo2, hi2) = f2.min_max();
        assert!((hi3 - hi2).abs() <= 100.0 && (lo3 - lo2).abs() <= 100.0);
        assert!(hi2 > lo2, "2-D solve should have structure");
    }

    #[test]
    fn coarse_model_shrinks_grid() {
        let full = Heat3d {
            n: 48,
            ..Default::default()
        };
        assert_eq!(full.coarse(4).n, 12);
        assert_eq!(full.coarse(100).n, 4);
    }

    #[test]
    fn solver_is_deterministic() {
        let a = tiny().solve();
        let b = tiny().solve();
        assert_eq!(a.data, b.data);
    }
}
