//! Yf17_temp: temperature in a CFD calculation around an aircraft.
//!
//! The paper's *Yf17_temp* dataset is the temperature field of a
//! computational fluid dynamics run around a YF-17 airframe. We
//! synthesize the same structure: freestream temperature with compressive
//! heating ahead of the body (stagnation), a hot boundary layer on an
//! ellipsoidal fuselage, a cooling expansion over the wing region, and a
//! warm decaying wake. The reduced model shrinks the computational domain
//! per Section III-A.

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the synthetic airframe temperature field.
#[derive(Debug, Clone, Copy)]
pub struct Yf17 {
    /// Grid points in x (streamwise).
    pub nx: usize,
    /// Grid points in y (spanwise).
    pub ny: usize,
    /// Grid points in z (vertical).
    pub nz: usize,
    /// Freestream temperature (K).
    pub t_inf: f64,
    /// Stagnation temperature rise (K).
    pub t_stag: f64,
}

impl Default for Yf17 {
    fn default() -> Self {
        Self {
            nx: 96,
            ny: 48,
            nz: 32,
            t_inf: 288.0,
            t_stag: 60.0,
        }
    }
}

impl Yf17 {
    /// Generates the 3-D temperature field.
    pub fn solve(&self) -> Field {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let shape = Shape::d3(nx, ny, nz);
        let mut data = Vec::with_capacity(shape.len());
        // Fuselage: ellipsoid centered at 35% chord, mid-span, mid-height.
        let (cx, cy, cz) = (0.35, 0.5, 0.5);
        let (ax, ay, az) = (0.22, 0.06, 0.06);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let fx = x as f64 / (nx - 1) as f64;
                    let fy = y as f64 / (ny - 1) as f64;
                    let fz = z as f64 / (nz - 1) as f64;
                    // Signed ellipsoid distance (<1 inside).
                    let e = ((fx - cx) / ax).powi(2)
                        + ((fy - cy) / ay).powi(2)
                        + ((fz - cz) / az).powi(2);
                    let d = e.sqrt() - 1.0; // ~ normalized wall distance
                    let mut t = self.t_inf;
                    // Boundary-layer heating decays away from the skin.
                    if d > 0.0 {
                        t += self.t_stag * (-3.0 * d).exp();
                    } else {
                        t += self.t_stag; // body surface temperature
                    }
                    // Stagnation lobe ahead of the nose.
                    let nose = ((fx - (cx - ax)) / 0.05).powi(2)
                        + ((fy - cy) / 0.08).powi(2)
                        + ((fz - cz) / 0.08).powi(2);
                    t += 0.5 * self.t_stag * (-nose).exp();
                    // Expansion cooling over the wing (above the body,
                    // mid-chord): a shallow cold pocket.
                    let wing = ((fx - 0.45) / 0.12).powi(2)
                        + ((fy - cy) / 0.3).powi(2)
                        + ((fz - (cz + 0.12)) / 0.06).powi(2);
                    t -= 0.35 * self.t_stag * (-wing).exp();
                    // Warm wake decaying downstream of the tail.
                    if fx > cx + ax {
                        let wx = (fx - (cx + ax)) / 0.3;
                        let wr = ((fy - cy) / 0.08).powi(2) + ((fz - cz) / 0.08).powi(2);
                        t += 0.4 * self.t_stag * (-wx).exp() * (-wr).exp();
                    }
                    data.push(t);
                }
            }
        }
        Field::new(format!("yf17_temp/{nx}x{ny}x{nz}"), data, shape)
    }

    /// Reduced model: half-size computational domain.
    pub fn reduced(&self) -> Yf17 {
        Yf17 {
            nx: (self.nx / 2).max(8),
            ny: (self.ny / 2).max(8),
            nz: (self.nz / 2).max(8),
            ..*self
        }
    }

    /// Snapshots with the airframe progressively heating (transient warm-up).
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "yf17: need at least one snapshot");
        (1..=count)
            .map(|i| {
                Yf17 {
                    t_stag: self.t_stag * i as f64 / count as f64,
                    ..*self
                }
                .solve()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperatures_are_physical() {
        let f = Yf17 {
            nx: 32,
            ny: 16,
            nz: 12,
            ..Default::default()
        }
        .solve();
        for &t in &f.data {
            assert!(t.is_finite() && t > 200.0 && t < 400.0, "T = {t}");
        }
    }

    #[test]
    fn body_is_hotter_than_freestream() {
        let cfg = Yf17::default();
        let f = cfg.solve();
        // Point on the fuselage center vs far-field corner.
        let body = f.at(33, 24, 16);
        let far = f.at(0, 0, 0);
        assert!(body > far + 0.5 * cfg.t_stag, "body {body} vs far {far}");
    }

    #[test]
    fn wake_decays_downstream() {
        let cfg = Yf17::default();
        let f = cfg.solve();
        let near_tail = f.at(60, 24, 16);
        let downstream = f.at(95, 24, 16);
        assert!(near_tail > downstream, "{near_tail} vs {downstream}");
    }

    #[test]
    fn wing_pocket_is_cool() {
        let cfg = Yf17::default();
        let f = cfg.solve();
        // The expansion pocket sits above the mid-chord.
        let pocket = f.at(43, 24, 22);
        let symmetric_below = f.at(43, 24, 10);
        assert!(pocket < symmetric_below, "{pocket} vs {symmetric_below}");
    }

    #[test]
    fn reduced_model_halves_extents() {
        let r = Yf17::default().reduced();
        assert_eq!((r.nx, r.ny, r.nz), (48, 24, 16));
    }

    #[test]
    fn warmup_snapshots_increase_peak() {
        let snaps = Yf17 {
            nx: 24,
            ny: 12,
            nz: 8,
            ..Default::default()
        }
        .snapshots(3);
        let peak = |f: &Field| f.min_max().1;
        assert!(peak(&snaps[2]) > peak(&snaps[0]));
    }
}
