//! Astro: velocity magnitude in a supernova simulation.
//!
//! The paper's *Astro* dataset is the velocity magnitude of a supernova
//! run. We synthesize the same structure from the physics it captures: a
//! spherically expanding blast with a sharp shock front, a post-shock
//! velocity profile that rises roughly linearly with radius (homologous
//! expansion), and multi-scale turbulent perturbations behind the shock.
//! The reduced model shrinks the computational volume and evaluates at an
//! earlier time, as Section III-A describes for this dataset family.

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the synthetic supernova field.
#[derive(Debug, Clone, Copy)]
pub struct Astro {
    /// Grid points per edge.
    pub n: usize,
    /// Domain half-width in code units.
    pub half_width: f64,
    /// Evaluation time (controls the shock radius).
    pub time: f64,
    /// Peak ejecta velocity.
    pub v_max: f64,
    /// Turbulence amplitude relative to the local velocity.
    pub turbulence: f64,
}

impl Default for Astro {
    fn default() -> Self {
        Self {
            n: 64,
            half_width: 1.0,
            time: 0.8,
            v_max: 3.0e3,
            turbulence: 0.08,
        }
    }
}

impl Astro {
    /// Shock radius at the configured time (self-similar `t^0.4` growth,
    /// Sedov scaling).
    pub fn shock_radius(&self) -> f64 {
        0.9 * self.half_width * self.time.powf(0.4)
    }

    /// Generates the 3-D velocity-magnitude field.
    pub fn solve(&self) -> Field {
        let n = self.n;
        let shape = Shape::d3(n, n, n);
        let r_shock = self.shock_radius();
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let fx = (x as f64 / (n - 1) as f64 - 0.5) * 2.0 * self.half_width;
                    let fy = (y as f64 / (n - 1) as f64 - 0.5) * 2.0 * self.half_width;
                    let fz = (z as f64 / (n - 1) as f64 - 0.5) * 2.0 * self.half_width;
                    let r = (fx * fx + fy * fy + fz * fz).sqrt();
                    let v = if r < r_shock {
                        // Homologous interior: v ∝ r, with deterministic
                        // multi-scale "turbulence" from superposed modes.
                        let base = self.v_max * r / r_shock;
                        let turb = (fx * 21.0).sin() * (fy * 17.0).cos() * (fz * 13.0).sin()
                            + 0.5 * (fx * 41.0).cos() * (fy * 37.0).sin()
                            + 0.25 * (fz * 71.0).sin() * (fx * 67.0).cos();
                        base * (1.0 + self.turbulence * turb)
                    } else {
                        // Ambient medium: exponentially decaying precursor.
                        let d = (r - r_shock) / (0.05 * self.half_width);
                        self.v_max * 0.02 * (-d).exp()
                    };
                    data.push(v.max(0.0));
                }
            }
        }
        Field::new(format!("astro/n={n}/t={}", self.time), data, shape)
    }

    /// Reduced model: half-size volume observed at an earlier time
    /// (paper: smaller computational domain, shorter physical time).
    pub fn reduced(&self) -> Astro {
        Astro {
            n: (self.n / 2).max(8),
            half_width: self.half_width * 0.5,
            time: self.time * 0.5,
            ..*self
        }
    }

    /// Snapshots at `count` uniformly spaced times up to `self.time`.
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "astro: need at least one snapshot");
        (1..=count)
            .map(|i| {
                Astro {
                    time: self.time * i as f64 / count as f64,
                    ..*self
                }
                .solve()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_is_nonnegative_and_finite() {
        let f = Astro {
            n: 24,
            ..Default::default()
        }
        .solve();
        assert!(f.data.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn shock_front_separates_fast_and_slow() {
        let a = Astro {
            n: 32,
            ..Default::default()
        };
        let f = a.solve();
        // Center is slow (v ∝ r), mid-radius inside the shock is fast,
        // corner (outside) is near ambient.
        let c = f.at(16, 16, 16);
        let mid = f.at(26, 16, 16);
        let corner = f.at(0, 0, 0);
        assert!(mid > c, "mid {mid} vs center {c}");
        assert!(corner < 0.1 * mid, "corner {corner} vs mid {mid}");
    }

    #[test]
    fn shock_radius_grows_with_time() {
        let early = Astro {
            time: 0.2,
            ..Default::default()
        };
        let late = Astro {
            time: 0.9,
            ..Default::default()
        };
        assert!(late.shock_radius() > early.shock_radius());
    }

    #[test]
    fn reduced_model_shrinks_domain_and_time() {
        let a = Astro::default();
        let r = a.reduced();
        assert_eq!(r.n, 32);
        assert!(r.half_width < a.half_width && r.time < a.time);
    }

    #[test]
    fn snapshots_show_expansion() {
        let a = Astro {
            n: 24,
            ..Default::default()
        };
        let snaps = a.snapshots(3);
        assert_eq!(snaps.len(), 3);
        // More cells are moving fast at later times.
        let moving = |f: &Field| f.data.iter().filter(|v| **v > 100.0).count();
        assert!(moving(&snaps[2]) >= moving(&snaps[0]));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Astro {
            n: 16,
            ..Default::default()
        };
        assert_eq!(a.solve().data, a.solve().data);
    }
}
