//! Distributed Heat3d: the solver of [`crate::heat3d`] run across
//! simulated MPI ranks with halo (ghost-plane) exchange.
//!
//! The paper executes Heat3d on 512 Titan ranks (8×8×8); this module runs
//! the identical algorithm on `lrm-parallel`'s thread ranks, decomposing
//! along z: each rank owns a slab, exchanges one ghost plane with each
//! neighbor per step, and the gathered result must match the serial
//! solver bit-for-bit (same arithmetic, same order within each plane).

use crate::field::Field;
use crate::heat3d::Heat3d;
use lrm_compress::Shape;
use lrm_parallel::run_ranks;

/// Tags for the halo exchange.
const TAG_UP: u64 = 100; // data flowing to the rank above (z+)
const TAG_DOWN: u64 = 101; // data flowing to the rank below (z-)

/// Runs the Heat3d solve decomposed over `ranks` z-slabs and reassembles
/// the final field. Produces the same result as [`Heat3d::solve`] (up to
/// floating-point associativity, which this scheme preserves exactly
/// because each cell's update reads the same nine values in the same
/// order).
///
/// # Panics
/// Panics if `ranks` exceeds the number of interior z-planes.
pub fn solve_distributed(cfg: &Heat3d, ranks: usize) -> Field {
    let n = cfg.n;
    assert!(
        ranks >= 1 && ranks <= n.saturating_sub(2).max(1),
        "heat3d_dist: rank count must fit the interior planes"
    );
    let shape = Shape::d3(n, n, n);
    let plane = n * n;
    let h = 1.0 / (n.max(2) - 1) as f64;
    let dt = cfg.dt();
    let coef = cfg.kappa * dt / (h * h);
    let t_hot = cfg.t_hot;

    // Initial global state comes from the same initializer the serial
    // solver uses (rank 0 could scatter it; sharing it read-only is the
    // in-process equivalent).
    let init = {
        // Build via a 1-step-less serial run: Heat3d::init is private, so
        // reproduce through snapshots(1) with steps=0 is impossible;
        // instead run 0 steps by solving with steps.min(0)... Heat3d
        // requires steps >= 0; we reconstruct the initial condition by
        // running the serial path for 0 steps.
        let mut c = *cfg;
        c.steps = 0;
        c.solve_initial()
    };

    // Split interior planes [1, n-1) into contiguous slabs.
    let z_range = |r: usize| -> (usize, usize) {
        let interior = n - 2;
        (1 + r * interior / ranks, 1 + (r + 1) * interior / ranks)
    };

    let results = run_ranks(ranks, |ctx| {
        let r = ctx.rank();
        let (z0, z1) = z_range(r);
        let nz_local = z1 - z0;
        // Local buffer with one ghost plane on each side.
        let mut local = vec![0.0f64; (nz_local + 2) * plane];
        local[plane..(nz_local + 1) * plane].copy_from_slice(&init.data[z0 * plane..z1 * plane]);
        // Ghost planes start from the initial condition.
        local[..plane].copy_from_slice(&init.data[(z0 - 1) * plane..z0 * plane]);
        local[(nz_local + 1) * plane..].copy_from_slice(&init.data[z1 * plane..(z1 + 1) * plane]);
        let mut next = local.clone();

        for _step in 0..cfg.steps {
            // Interior update over owned planes.
            for zl in 1..=nz_local {
                for y in 1..n - 1 {
                    for x in 1..n - 1 {
                        let i = zl * plane + y * n + x;
                        let c = local[i];
                        let lap = local[i + 1]
                            + local[i - 1]
                            + local[i + n]
                            + local[i - n]
                            + local[i + plane]
                            + local[i - plane]
                            - 6.0 * c;
                        next[i] = c + coef * lap;
                    }
                }
            }
            // Side walls stay hot within owned planes.
            for zl in 1..=nz_local {
                for k in 0..n {
                    next[zl * plane + k] = t_hot; // y = 0 row
                    next[zl * plane + (n - 1) * n + k] = t_hot; // y = n-1 row
                    next[zl * plane + k * n] = t_hot; // x = 0 column
                    next[zl * plane + k * n + (n - 1)] = t_hot; // x = n-1
                }
            }
            std::mem::swap(&mut local, &mut next);

            // Halo exchange: send boundary planes, receive ghosts.
            let bottom_owned = local[plane..2 * plane].to_vec();
            let top_owned = local[nz_local * plane..(nz_local + 1) * plane].to_vec();
            if r > 0 {
                ctx.send(r - 1, TAG_DOWN, bottom_owned);
            }
            if r + 1 < ctx.size() {
                ctx.send(r + 1, TAG_UP, top_owned.clone());
            }
            if r > 0 {
                let ghost = ctx.recv(r - 1, TAG_UP);
                local[..plane].copy_from_slice(&ghost);
            } else {
                // Global z = 0 face: adiabatic (copy of first interior).
                let (ghost, rest) = local.split_at_mut(plane);
                ghost.copy_from_slice(&rest[..plane]);
            }
            if r + 1 < ctx.size() {
                let ghost = ctx.recv(r + 1, TAG_DOWN);
                local[(nz_local + 1) * plane..].copy_from_slice(&ghost);
            } else {
                // Global z = n-1 face: adiabatic.
                let start = nz_local * plane;
                let (body, ghost) = local.split_at_mut((nz_local + 1) * plane);
                ghost.copy_from_slice(&body[start..start + plane]);
            }
            // The z-face copies above are the *ghosts*; the serial solver
            // also materializes those faces in the output. Rank 0 and the
            // last rank own those boundary planes implicitly.
        }
        // Return owned planes plus, for the edge ranks, the boundary face.
        let mut out = Vec::new();
        if r == 0 {
            out.extend_from_slice(&local[..plane]); // z = 0 face
        }
        out.extend_from_slice(&local[plane..(nz_local + 1) * plane]);
        if r + 1 == ctx.size() {
            out.extend_from_slice(&local[(nz_local + 1) * plane..]); // z = n-1
        }
        ctx.gather(0, out)
    });

    let mut data = Vec::with_capacity(shape.len());
    for part in results[0].as_ref().expect("root gathered") {
        data.extend_from_slice(part);
    }
    Field::new(format!("heat3d/dist/n={n}/ranks={ranks}"), data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Heat3d {
        Heat3d {
            n: 16,
            steps: 30,
            dt_factor: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn distributed_matches_serial_bitwise() {
        let c = cfg();
        let serial = c.solve();
        for ranks in [1usize, 2, 3, 5] {
            let dist = solve_distributed(&c, ranks);
            assert_eq!(dist.shape, serial.shape);
            for (i, (a, b)) in serial.data.iter().zip(&dist.data).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "ranks {ranks}, index {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn zero_step_run_returns_initial_condition() {
        let mut c = cfg();
        c.steps = 0;
        let dist = solve_distributed(&c, 2);
        let serial = c.solve_initial();
        assert_eq!(dist.data, serial.data);
    }

    #[test]
    #[should_panic(expected = "rank count must fit")]
    fn too_many_ranks_is_rejected() {
        solve_distributed(&cfg(), 100);
    }
}
