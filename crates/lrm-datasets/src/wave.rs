//! Wave: 1-D wave equation (hyperbolic PDE), leapfrog scheme.
//!
//! `∂²u/∂t² = c² ∂²u/∂x²` with fixed ends and a Gaussian initial
//! displacement. The paper lists *Wave* among the classical PDE datasets
//! and notes it is one-dimensional (which is why it is excluded from the
//! projection experiments of Fig. 3 but included in the dimension
//! reduction study of Fig. 6, where the 1-D output is reshaped).

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the wave solve.
#[derive(Debug, Clone, Copy)]
pub struct Wave {
    /// Grid points.
    pub n: usize,
    /// Wave speed.
    pub c: f64,
    /// Time steps.
    pub steps: usize,
    /// Initial pulse amplitude.
    pub amplitude: f64,
}

impl Default for Wave {
    fn default() -> Self {
        Self {
            n: 4096,
            c: 1.0,
            steps: 2000,
            amplitude: 1.0,
        }
    }
}

impl Wave {
    /// CFL-stable time step (Courant number 0.9).
    pub fn stable_dt(&self) -> f64 {
        let h = 1.0 / (self.n.max(2) - 1) as f64;
        0.9 * h / self.c
    }

    fn init(&self) -> Vec<f64> {
        let n = self.n;
        (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                // Gaussian pulse at x = 0.3 plus a weaker one at x = 0.7.
                self.amplitude
                    * ((-((x - 0.3) / 0.05).powi(2)).exp()
                        + 0.4 * (-((x - 0.7) / 0.08).powi(2)).exp())
            })
            .collect()
    }

    /// Runs the solve to completion and returns the final displacement.
    pub fn solve(&self) -> Field {
        self.snapshots(1).pop().expect("one snapshot requested")
    }

    /// Captures `count` snapshots uniformly spaced over the run.
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "wave: need at least one snapshot");
        let n = self.n;
        let shape = Shape::d1(n);
        let h = 1.0 / (n - 1) as f64;
        let dt = self.stable_dt();
        let r2 = (self.c * dt / h).powi(2);

        let mut prev = self.init();
        // First step from rest (zero initial velocity): Taylor expansion.
        let mut cur = prev.clone();
        for x in 1..n - 1 {
            cur[x] = prev[x] + 0.5 * r2 * (prev[x + 1] - 2.0 * prev[x] + prev[x - 1]);
        }
        let mut out = Vec::with_capacity(count);
        let mut next = vec![0.0; n];
        for step in 1..=self.steps {
            for x in 1..n - 1 {
                next[x] = 2.0 * cur[x] - prev[x] + r2 * (cur[x + 1] - 2.0 * cur[x] + cur[x - 1]);
            }
            next[0] = 0.0;
            next[n - 1] = 0.0;
            std::mem::swap(&mut prev, &mut cur);
            std::mem::swap(&mut cur, &mut next);
            let due = step * count / self.steps;
            let prev_due = (step - 1) * count / self.steps;
            if due > prev_due {
                out.push(Field::new(
                    format!("wave/n={n}/step={step}"),
                    cur.clone(),
                    shape,
                ));
            }
        }
        if out.len() < count {
            out.push(Field::new(
                format!("wave/n={n}/step={}", self.steps),
                cur,
                shape,
            ));
        }
        out
    }

    /// Reduced model: smaller grid and proportionally fewer steps.
    pub fn coarse(&self, factor: usize) -> Wave {
        Wave {
            n: (self.n / factor).max(8),
            steps: (self.steps / factor).max(1),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_stays_bounded() {
        // A stable leapfrog solve conserves (discrete) energy; the
        // amplitude must not blow up.
        let f = Wave {
            n: 512,
            steps: 1500,
            ..Default::default()
        }
        .solve();
        let (lo, hi) = f.min_max();
        assert!(hi < 2.0 && lo > -2.0, "({lo}, {hi})");
    }

    #[test]
    fn pulse_propagates() {
        let cfg = Wave {
            n: 512,
            steps: 200,
            ..Default::default()
        };
        let snaps = cfg.snapshots(2);
        // The pulse peak must move from its initial location.
        let peak_at = |f: &Field| {
            f.data
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .expect("non-empty")
                .0
        };
        let p0 = (0.3 * 511.0) as usize;
        let p1 = peak_at(&snaps[1]);
        assert_ne!(p0, p1, "pulse did not move");
    }

    #[test]
    fn boundaries_stay_fixed() {
        let f = Wave {
            n: 256,
            steps: 777,
            ..Default::default()
        }
        .solve();
        assert_eq!(f.data[0], 0.0);
        assert_eq!(f.data[255], 0.0);
    }

    #[test]
    fn snapshot_count_is_exact() {
        let snaps = Wave {
            n: 128,
            steps: 37,
            ..Default::default()
        }
        .snapshots(7);
        assert_eq!(snaps.len(), 7);
    }

    #[test]
    fn coarse_shrinks() {
        let r = Wave::default().coarse(4);
        assert_eq!(r.n, 1024);
        assert_eq!(r.steps, 500);
    }
}
