//! Field import/export — bring your own data.
//!
//! Two formats:
//!
//! * **raw** — the bare little-endian `f64` stream HPC codes dump
//!   (shape supplied by the caller), for interoperating with existing
//!   files;
//! * **lrmf** — a self-describing container (magic + dims + name), so
//!   fields round-trip without side-channel metadata.

use crate::field::Field;
use lrm_compress::Shape;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes of the self-describing field format.
const MAGIC: &[u8; 4] = b"LRMF";

/// Writes the bare little-endian doubles of `field` (no header) — the
/// format the paper's datasets live in on disk.
pub fn write_raw(field: &Field, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    for v in &field.data {
        f.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a bare little-endian double stream, checking that the byte count
/// matches `shape`.
pub fn read_raw(
    path: impl AsRef<Path>,
    shape: Shape,
    name: impl Into<String>,
) -> std::io::Result<Field> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() != shape.len() * 8 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "raw field: {} bytes on disk but shape {:?} needs {}",
                bytes.len(),
                shape.dims,
                shape.len() * 8
            ),
        ));
    }
    let data: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Ok(Field::new(name, data, shape))
}

/// Writes the self-describing format: magic, dims (3 × u32), name length +
/// bytes, then the doubles.
pub fn write_lrmf(field: &Field, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(MAGIC)?;
    for d in field.shape.dims {
        f.write_all(&(d as u32).to_le_bytes())?;
    }
    let name = field.name.as_bytes();
    f.write_all(&(name.len() as u32).to_le_bytes())?;
    f.write_all(name)?;
    for v in &field.data {
        f.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a file produced by [`write_lrmf`].
pub fn read_lrmf(path: impl AsRef<Path>) -> std::io::Result<Field> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 20 || &bytes[..4] != MAGIC {
        return Err(bad("lrmf: bad magic"));
    }
    let dim = |i: usize| -> usize {
        u32::from_le_bytes(bytes[4 + 4 * i..8 + 4 * i].try_into().expect("dims")) as usize
    };
    let shape = Shape {
        dims: [dim(0), dim(1), dim(2)],
    };
    let nlen = u32::from_le_bytes(bytes[16..20].try_into().expect("nlen")) as usize;
    if bytes.len() < 20 + nlen + shape.len() * 8 {
        return Err(bad("lrmf: truncated"));
    }
    let name = std::str::from_utf8(&bytes[20..20 + nlen])
        .map_err(|_| bad("lrmf: invalid name"))?
        .to_string();
    let data: Vec<f64> = bytes[20 + nlen..20 + nlen + shape.len() * 8]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Ok(Field::new(name, data, shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lrm-fieldio-{name}-{}", std::process::id()))
    }

    fn sample() -> Field {
        let shape = Shape::d3(4, 3, 2);
        let data: Vec<f64> = (0..24).map(|i| (i as f64 * 0.7).sin() * 1e3).collect();
        Field::new("sample/field", data, shape)
    }

    #[test]
    fn raw_roundtrip() {
        let f = sample();
        let p = tmp("raw");
        write_raw(&f, &p).expect("write");
        let g = read_raw(&p, f.shape, "sample/field").expect("read");
        assert_eq!(f, g);
    }

    #[test]
    fn raw_rejects_wrong_shape() {
        let f = sample();
        let p = tmp("rawbad");
        write_raw(&f, &p).expect("write");
        assert!(read_raw(&p, Shape::d1(7), "x").is_err());
    }

    #[test]
    fn lrmf_roundtrip_preserves_everything() {
        let f = sample();
        let p = tmp("lrmf");
        write_lrmf(&f, &p).expect("write");
        let g = read_lrmf(&p).expect("read");
        assert_eq!(f, g);
        assert_eq!(g.name, "sample/field");
    }

    #[test]
    fn lrmf_rejects_corruption() {
        let p = tmp("corrupt");
        fs::write(&p, b"NOPEnope").expect("write");
        assert!(read_lrmf(&p).is_err());
        let f = sample();
        write_lrmf(&f, &p).expect("write");
        let bytes = fs::read(&p).expect("read");
        fs::write(&p, &bytes[..bytes.len() - 4]).expect("truncate");
        assert!(read_lrmf(&p).is_err());
    }

    #[test]
    fn raw_bytes_are_bit_exact() {
        // The raw format must match Field data bit-for-bit (it is what
        // compression ratios are measured against).
        let f = sample();
        let p = tmp("bits");
        write_raw(&f, &p).expect("write");
        let on_disk = fs::read(&p).expect("read");
        assert_eq!(on_disk.len(), f.nbytes());
        for (i, v) in f.data.iter().enumerate() {
            assert_eq!(&on_disk[i * 8..(i + 1) * 8], &v.to_le_bytes());
        }
    }
}
