//! Sedov_pres: pressure of strong shocks in a hydrodynamical simulation.
//!
//! Reproduces the pressure field of the Sedov–Taylor point-explosion
//! problem (the standard strong-shock benchmark in FLASH-style hydro
//! codes). The self-similar solution puts the shock at
//! `R(t) = ξ₀ (E t² / ρ)^(1/5)`; we use the well-known approximation to
//! the interior profile: pressure peaks at the shock front by the
//! Rankine–Hugoniot jump and falls to a finite central plateau
//! (`p_c ≈ 0.306 p_shock` for γ = 1.4).
//!
//! The paper's setup (Section III-A): full model on a `(1,1,1)` volume
//! with 20 000 steps; reduced model on `(0.5,0.5,0.5)` with 10 000 steps,
//! both honoring the CFL condition — i.e. the reduced model sees the blast
//! at half the physical time in half the domain.

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the Sedov–Taylor pressure field.
#[derive(Debug, Clone, Copy)]
pub struct Sedov {
    /// Grid points per edge.
    pub n: usize,
    /// Domain edge length (paper full model: 1.0).
    pub domain: f64,
    /// Number of hydro steps (paper: 20 000); with a fixed CFL time step
    /// this sets the physical evaluation time.
    pub steps: usize,
    /// CFL-limited time step.
    pub dt: f64,
    /// Explosion energy.
    pub energy: f64,
    /// Ambient density.
    pub rho0: f64,
    /// Ambient pressure.
    pub p_ambient: f64,
    /// Adiabatic index.
    pub gamma: f64,
}

impl Default for Sedov {
    fn default() -> Self {
        Self {
            n: 64,
            domain: 1.0,
            steps: 20_000,
            dt: 1.0e-5,
            energy: 1.0,
            rho0: 1.0,
            p_ambient: 1e-5,
            gamma: 1.4,
        }
    }
}

impl Sedov {
    /// Physical time reached after the configured steps.
    pub fn time(&self) -> f64 {
        self.steps as f64 * self.dt
    }

    /// Self-similar shock radius `ξ₀ (E t²/ρ)^{1/5}` (ξ₀ ≈ 1.15 for
    /// γ = 1.4).
    pub fn shock_radius(&self) -> f64 {
        let t = self.time();
        1.15 * (self.energy * t * t / self.rho0).powf(0.2)
    }

    /// Post-shock (Rankine–Hugoniot) pressure for a strong shock.
    pub fn shock_pressure(&self) -> f64 {
        let t = self.time();
        let r = self.shock_radius();
        if t <= 0.0 || r <= 0.0 {
            return self.p_ambient;
        }
        let us = 0.4 * r / t; // dR/dt of the self-similar solution
        2.0 / (self.gamma + 1.0) * self.rho0 * us * us
    }

    /// Generates the 3-D pressure field with the explosion at the domain
    /// corner (octant symmetry, as FLASH's sedov setup uses).
    pub fn solve(&self) -> Field {
        let n = self.n;
        let shape = Shape::d3(n, n, n);
        let r_s = self.shock_radius();
        let p_s = self.shock_pressure();
        let pc_frac = 0.306; // central plateau fraction for gamma = 1.4
        let h = self.domain / (n - 1) as f64;
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let r =
                        ((x as f64 * h).powi(2) + (y as f64 * h).powi(2) + (z as f64 * h).powi(2))
                            .sqrt();
                    let p = if r < r_s {
                        // Interior profile: plateau at the center rising
                        // steeply (≈ (r/R)^{3γ}) toward the front.
                        let xi = (r / r_s).max(1e-9);
                        p_s * (pc_frac + (1.0 - pc_frac) * xi.powf(3.0 * self.gamma))
                    } else {
                        // Smeared shock front into the ambient medium
                        // (finite-volume codes smear it over a few cells).
                        let d = (r - r_s) / (2.0 * h);
                        self.p_ambient + (p_s - self.p_ambient) * (-d * d).exp()
                    };
                    data.push(p);
                }
            }
        }
        Field::new(
            format!("sedov_pres/n={n}/steps={}", self.steps),
            data,
            shape,
        )
    }

    /// The paper's reduced model: half the domain, half the steps.
    ///
    /// The explosion energy is scaled by 1/8 so the reduced blast is
    /// self-similar to the full one: with `t → t/2` and `E → E/8`,
    /// `R ∝ (E t²)^{1/5}` halves along with the domain and the post-shock
    /// pressure `∝ (R/t)²` is unchanged — which is why the full and
    /// reduced CDFs coincide in Fig. 1.
    pub fn reduced(&self) -> Sedov {
        Sedov {
            n: (self.n / 2).max(8),
            domain: self.domain * 0.5,
            steps: self.steps / 2,
            energy: self.energy / 8.0,
            ..*self
        }
    }

    /// Snapshots at `count` uniformly spaced step counts.
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "sedov: need at least one snapshot");
        (1..=count)
            .map(|i| {
                Sedov {
                    steps: (self.steps * i / count).max(1),
                    ..*self
                }
                .solve()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_is_positive_and_finite() {
        let f = Sedov {
            n: 24,
            ..Default::default()
        }
        .solve();
        assert!(f.data.iter().all(|&p| p.is_finite() && p > 0.0));
    }

    #[test]
    fn peak_pressure_sits_at_the_shock() {
        let s = Sedov {
            n: 48,
            ..Default::default()
        };
        let f = s.solve();
        let (_, hi) = f.min_max();
        // The peak is the Rankine–Hugoniot value (up to front smearing).
        assert!(hi <= s.shock_pressure() * 1.01);
        assert!(hi >= s.shock_pressure() * 0.5);
    }

    #[test]
    fn center_is_a_plateau_below_the_front() {
        let s = Sedov {
            n: 48,
            ..Default::default()
        };
        let f = s.solve();
        let center = f.at(0, 0, 0);
        let (_, hi) = f.min_max();
        assert!(center < hi, "plateau {center} must lie below peak {hi}");
        assert!(
            center > 0.2 * hi,
            "plateau {center} should be a sizable fraction of {hi}"
        );
    }

    #[test]
    fn ambient_region_is_near_ambient_pressure() {
        let s = Sedov {
            n: 32,
            steps: 2000,
            ..Default::default()
        };
        let f = s.solve();
        let corner = f.at(31, 31, 31);
        assert!(corner < 10.0 * s.p_ambient + s.shock_pressure() * 1e-3);
    }

    #[test]
    fn shock_expands_with_steps() {
        let a = Sedov {
            steps: 5000,
            ..Default::default()
        };
        let b = Sedov {
            steps: 20_000,
            ..Default::default()
        };
        assert!(b.shock_radius() > a.shock_radius());
    }

    #[test]
    fn reduced_model_is_half_domain_half_steps() {
        let s = Sedov::default();
        let r = s.reduced();
        assert_eq!(r.steps, 10_000);
        assert!((r.domain - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshots_are_ordered_in_time() {
        let snaps = Sedov {
            n: 16,
            ..Default::default()
        }
        .snapshots(3);
        assert_eq!(snaps.len(), 3);
    }
}
