//! Fish: velocity magnitude of cooling air injected into a mixing tank.
//!
//! The paper describes *Fish* as "a peculiar dataset that contains many
//! zeros" — a CFD velocity-magnitude field where most of the tank is
//! quiescent (exactly zero in the solver's output) and only the injection
//! plume carries motion. That zero-dominance is load-bearing for the
//! evaluation: Fig. 6 shows the dimension-reduction preconditioners
//! *hurting* on Fish because their deltas turn exact zeros into near-zero
//! noise. The generator reproduces exactly that structure.

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the synthetic mixing-tank field.
#[derive(Debug, Clone, Copy)]
pub struct Fish {
    /// Grid width (x).
    pub nx: usize,
    /// Grid height (y).
    pub ny: usize,
    /// Inlet velocity.
    pub v_inlet: f64,
    /// Plume spreading half-angle (radians).
    pub spread: f64,
    /// Velocity threshold under which the solver reports exact zero.
    pub cutoff: f64,
}

impl Default for Fish {
    fn default() -> Self {
        Self {
            nx: 128,
            ny: 96,
            v_inlet: 10.0,
            spread: 0.25,
            cutoff: 0.5,
        }
    }
}

impl Fish {
    /// Generates the 2-D velocity-magnitude field. The jet enters at the
    /// middle of the left wall and decays as a self-similar turbulent
    /// round jet: centerline velocity ∝ 1/x, Gaussian cross-profile with
    /// width ∝ x. Values below `cutoff` are flushed to exact zero, as the
    /// originating solver's output does.
    pub fn solve(&self) -> Field {
        let (nx, ny) = (self.nx, self.ny);
        let shape = Shape::d2(nx, ny);
        let y0 = (ny as f64 - 1.0) / 2.0;
        let mut data = Vec::with_capacity(shape.len());
        for y in 0..ny {
            for x in 0..nx {
                let xf = x as f64 + 1.0; // avoid the 1/x singularity
                let dy = y as f64 - y0;
                let width = 1.5 + self.spread * xf;
                let centerline = self.v_inlet * 6.0 / (xf + 5.0);
                let v = centerline * (-0.5 * (dy / width).powi(2)).exp();
                // Secondary recirculation cell in the tank's far corner.
                let rx = (x as f64 - nx as f64 * 0.85) / (nx as f64 * 0.1);
                let ry = (y as f64 - ny as f64 * 0.2) / (ny as f64 * 0.15);
                let recirc = 0.3 * self.v_inlet * (-(rx * rx + ry * ry)).exp() * 0.1;
                let total = v + recirc;
                data.push(if total < self.cutoff { 0.0 } else { total });
            }
        }
        Field::new(format!("fish/{nx}x{ny}"), data, shape)
    }

    /// Reduced model: smaller computational domain (half extents).
    pub fn reduced(&self) -> Fish {
        Fish {
            nx: (self.nx / 2).max(8),
            ny: (self.ny / 2).max(8),
            ..*self
        }
    }

    /// Snapshots with progressively developing plume (inlet ramp-up).
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "fish: need at least one snapshot");
        (1..=count)
            .map(|i| {
                Fish {
                    v_inlet: self.v_inlet * i as f64 / count as f64,
                    ..*self
                }
                .solve()
            })
            .collect()
    }

    /// Fraction of exactly-zero samples (the dataset's signature).
    pub fn zero_fraction(field: &Field) -> f64 {
        if field.is_empty() {
            return 0.0;
        }
        field.data.iter().filter(|v| **v == 0.0).count() as f64 / field.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_mostly_exact_zeros() {
        let f = Fish::default().solve();
        let zf = Fish::zero_fraction(&f);
        assert!(zf > 0.3, "zero fraction {zf} — Fish must be zero-dominated");
    }

    #[test]
    fn jet_is_fastest_at_inlet_centerline() {
        let cfg = Fish::default();
        let f = cfg.solve();
        let inlet = f.at(0, 48, 0);
        assert!(inlet > 0.0);
        let downstream = f.at(100, 48, 0);
        assert!(inlet > downstream, "{inlet} vs {downstream}");
    }

    #[test]
    fn jet_decays_off_axis() {
        let f = Fish::default().solve();
        assert!(f.at(10, 48, 0) > f.at(10, 80, 0));
    }

    #[test]
    fn no_negative_velocities() {
        let f = Fish::default().solve();
        assert!(f.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn reduced_model_keeps_zero_dominance() {
        let f = Fish::default().reduced().solve();
        assert!(Fish::zero_fraction(&f) > 0.2);
    }

    #[test]
    fn ramp_up_snapshots_increase_moving_area() {
        let snaps = Fish::default().snapshots(3);
        let moving = |f: &Field| f.data.iter().filter(|v| **v > 0.0).count();
        assert!(moving(&snaps[2]) >= moving(&snaps[0]));
    }
}
