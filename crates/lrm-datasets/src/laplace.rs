//! Laplace: 2-D steady-state solver (Jacobi iteration).
//!
//! Solves `∇²u = 0` on the unit square with fixed boundary values — the
//! paper's "description of steady state situations of values
//! distributions". Snapshots are intermediate Jacobi iterates, which is
//! what a simulation would write while converging; the reduced model uses
//! a scaled-down problem size, exactly as in Section III-A.

use crate::field::Field;
use lrm_compress::Shape;

/// Configuration of the Laplace solve.
#[derive(Debug, Clone, Copy)]
pub struct Laplace {
    /// Grid points per edge.
    pub n: usize,
    /// Number of Jacobi iterations.
    pub iterations: usize,
    /// Peak boundary value.
    pub amplitude: f64,
}

impl Default for Laplace {
    fn default() -> Self {
        Self {
            n: 64,
            iterations: 2000,
            amplitude: 100.0,
        }
    }
}

impl Laplace {
    fn init(&self) -> Vec<f64> {
        let n = self.n;
        let shape = Shape::d2(n, n);
        let mut u = vec![0.0; shape.len()];
        // Top edge: sinusoidal hot profile; bottom edge: linear ramp;
        // sides grounded. This gives a smooth harmonic interior.
        for x in 0..n {
            let t = x as f64 / (n - 1) as f64;
            u[shape.idx(x, n - 1, 0)] = self.amplitude * (std::f64::consts::PI * t).sin();
            u[shape.idx(x, 0, 0)] = 0.25 * self.amplitude * t;
        }
        u
    }

    /// Runs to the configured iteration count, returning the final iterate.
    pub fn solve(&self) -> Field {
        self.snapshots(1).pop().expect("one snapshot requested")
    }

    /// Captures `count` iterates uniformly spaced over the run.
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "laplace: need at least one snapshot");
        let n = self.n;
        let shape = Shape::d2(n, n);
        let mut u = self.init();
        let mut next = u.clone();
        let mut out = Vec::with_capacity(count);
        for it in 1..=self.iterations {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = shape.idx(x, y, 0);
                    next[i] = 0.25 * (u[i + 1] + u[i - 1] + u[i + n] + u[i - n]);
                }
            }
            std::mem::swap(&mut u, &mut next);
            let due = it * count / self.iterations;
            let prev_due = (it - 1) * count / self.iterations;
            if due > prev_due {
                out.push(Field::new(
                    format!("laplace/n={n}/iter={it}"),
                    u.clone(),
                    shape,
                ));
            }
        }
        if out.len() < count {
            out.push(Field::new(
                format!("laplace/n={n}/iter={}", self.iterations),
                u,
                shape,
            ));
        }
        out
    }

    /// Reduced model: the problem at `1/factor` resolution (and
    /// proportionally fewer iterations, since Jacobi converges in O(n²)).
    pub fn coarse(&self, factor: usize) -> Laplace {
        Laplace {
            n: (self.n / factor).max(4),
            iterations: (self.iterations / (factor * factor)).max(1),
            amplitude: self.amplitude,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_respects_maximum_principle() {
        let f = Laplace {
            n: 32,
            iterations: 500,
            amplitude: 10.0,
        }
        .solve();
        let (lo, hi) = f.min_max();
        assert!(lo >= -1e-9 && hi <= 10.0 + 1e-9, "({lo}, {hi})");
    }

    #[test]
    fn interior_approaches_harmonicity() {
        let cfg = Laplace {
            n: 24,
            iterations: 3000,
            amplitude: 1.0,
        };
        let f = cfg.solve();
        // Residual of the 5-point stencil should be tiny after convergence.
        let n = cfg.n;
        let mut worst = 0.0f64;
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let r = 0.25
                    * (f.at(x + 1, y, 0)
                        + f.at(x - 1, y, 0)
                        + f.at(x, y + 1, 0)
                        + f.at(x, y - 1, 0))
                    - f.at(x, y, 0);
                worst = worst.max(r.abs());
            }
        }
        assert!(worst < 1e-4, "residual {worst}");
    }

    #[test]
    fn snapshots_converge_monotonically_in_residual() {
        let cfg = Laplace {
            n: 24,
            iterations: 1000,
            amplitude: 5.0,
        };
        let snaps = cfg.snapshots(4);
        assert_eq!(snaps.len(), 4);
        let res = |f: &Field| {
            let n = cfg.n;
            let mut s = 0.0;
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let r = 0.25
                        * (f.at(x + 1, y, 0)
                            + f.at(x - 1, y, 0)
                            + f.at(x, y + 1, 0)
                            + f.at(x, y - 1, 0))
                        - f.at(x, y, 0);
                    s += r * r;
                }
            }
            s
        };
        assert!(res(&snaps[3]) <= res(&snaps[0]));
    }

    #[test]
    fn coarse_reduces_work() {
        let full = Laplace::default();
        let red = full.coarse(4);
        assert_eq!(red.n, 16);
        assert!(red.iterations < full.iterations);
    }
}
