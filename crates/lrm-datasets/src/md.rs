//! Molecular dynamics generators standing in for the paper's Gromacs
//! runs (*Umbrella* and *Virtual_sites*).
//!
//! A velocity-Verlet Lennard-Jones fluid in a periodic box provides the
//! trajectory data; the two variants add the features their namesakes
//! exercise:
//!
//! * [`Umbrella`] — a harmonic *umbrella bias* tethers a tagged particle
//!   to a reference point along a reaction coordinate, as in umbrella
//!   sampling free-energy runs.
//! * [`VirtualSites`] — every third particle carries a massless virtual
//!   interaction site placed deterministically from its neighbors'
//!   geometry (the construction Gromacs uses for e.g. TIP4P water); the
//!   site coordinates are part of the output.
//!
//! The output field is the flattened coordinate trajectory (x,y,z per
//! site), which is what Gromacs writes and what the paper compresses.
//! The reduced model lowers the number of atoms (paper: 1 960 → 490).

use crate::field::Field;
use lrm_compress::Shape;
use lrm_rng::Rng64;

/// Shared MD engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct MdConfig {
    /// Number of (real) particles (paper full model: 1 960).
    pub n_atoms: usize,
    /// Integration steps.
    pub steps: usize,
    /// Time step in reduced LJ units.
    pub dt: f64,
    /// Box edge length in reduced units.
    pub box_len: f64,
    /// RNG seed for initial velocities.
    pub seed: u64,
}

impl Default for MdConfig {
    fn default() -> Self {
        Self {
            n_atoms: 490,
            steps: 200,
            dt: 0.002,
            box_len: 12.0,
            seed: 42,
        }
    }
}

/// State of an MD run.
struct MdState {
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
    box_len: f64,
}

impl MdState {
    fn new(cfg: &MdConfig) -> Self {
        let n = cfg.n_atoms;
        // Lattice initial positions: simple cubic filling of the box.
        let per_edge = (n as f64).cbrt().ceil().clamp(1.0, n.max(1) as f64) as usize;
        let spacing = cfg.box_len / per_edge as f64;
        let mut pos = Vec::with_capacity(n);
        'fill: for z in 0..per_edge {
            for y in 0..per_edge {
                for x in 0..per_edge {
                    if pos.len() == n {
                        break 'fill;
                    }
                    pos.push([
                        (x as f64 + 0.5) * spacing,
                        (y as f64 + 0.5) * spacing,
                        (z as f64 + 0.5) * spacing,
                    ]);
                }
            }
        }
        let mut rng = Rng64::new(cfg.seed);
        let vel: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.range_f64(-0.5, 0.5),
                    rng.range_f64(-0.5, 0.5),
                    rng.range_f64(-0.5, 0.5),
                ]
            })
            .collect();
        Self {
            pos,
            vel,
            force: vec![[0.0; 3]; n],
            box_len: cfg.box_len,
        }
    }

    /// Minimum-image displacement from `a` to `b`.
    #[inline]
    fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let l = self.box_len;
        let mut d = [0.0; 3];
        for k in 0..3 {
            let mut x = b[k] - a[k];
            if x > l / 2.0 {
                x -= l;
            } else if x < -l / 2.0 {
                x += l;
            }
            d[k] = x;
        }
        d
    }

    /// Lennard-Jones forces with cutoff 2.5σ (σ = 1, ε = 1).
    fn compute_forces(&mut self) {
        let n = self.pos.len();
        let cutoff2 = 2.5f64 * 2.5;
        for f in self.force.iter_mut() {
            *f = [0.0; 3];
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.min_image(self.pos[i], self.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 > cutoff2 || r2 < 1e-12 {
                    continue;
                }
                let inv2 = 1.0 / r2;
                let inv6 = inv2 * inv2 * inv2;
                // F/r = 24ε (2 (σ/r)^12 − (σ/r)^6) / r².
                let fr = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
                for k in 0..3 {
                    self.force[i][k] -= fr * d[k];
                    self.force[j][k] += fr * d[k];
                }
            }
        }
    }

    /// One velocity-Verlet step; `extra_force(i, pos) -> [f; 3]` injects
    /// per-particle bias forces (the umbrella potential).
    fn step(&mut self, dt: f64, extra_force: &dyn Fn(usize, [f64; 3]) -> [f64; 3]) {
        let n = self.pos.len();
        for i in 0..n {
            let ef = extra_force(i, self.pos[i]);
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * (self.force[i][k] + ef[k]);
                self.pos[i][k] += dt * self.vel[i][k];
                // Wrap into the periodic box.
                self.pos[i][k] = self.pos[i][k].rem_euclid(self.box_len);
            }
        }
        self.compute_forces();
        for i in 0..n {
            let ef = extra_force(i, self.pos[i]);
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * (self.force[i][k] + ef[k]);
            }
        }
        // Mild velocity rescale keeps the tiny systems from heating up
        // (a crude Berendsen thermostat).
        let ke: f64 = self
            .vel
            .iter()
            .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
            .sum();
        let target = 0.75 * 3.0 * n as f64;
        if ke > 1e-12 {
            let lambda = (target / ke).sqrt().clamp(0.95, 1.05);
            for v in self.vel.iter_mut() {
                for k in 0..3 {
                    v[k] *= lambda;
                }
            }
        }
    }
}

/// Umbrella-sampling MD run.
#[derive(Debug, Clone, Copy)]
pub struct Umbrella {
    /// Engine parameters.
    pub md: MdConfig,
    /// Umbrella spring constant.
    pub k_spring: f64,
}

impl Default for Umbrella {
    fn default() -> Self {
        Self {
            md: MdConfig::default(),
            k_spring: 50.0,
        }
    }
}

impl Umbrella {
    /// Runs the simulation and returns the final coordinate snapshot as a
    /// flat field (3 doubles per atom).
    pub fn solve(&self) -> Field {
        self.snapshots(1).pop().expect("one snapshot requested")
    }

    /// Captures `count` coordinate snapshots uniformly over the run.
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "umbrella: need at least one snapshot");
        let cfg = &self.md;
        let mut st = MdState::new(cfg);
        st.compute_forces();
        let anchor = [cfg.box_len / 2.0; 3];
        let k = self.k_spring;
        let bias = move |i: usize, p: [f64; 3]| -> [f64; 3] {
            if i != 0 {
                return [0.0; 3];
            }
            // Harmonic tether on the tagged particle.
            [
                -k * (p[0] - anchor[0]),
                -k * (p[1] - anchor[1]),
                -k * (p[2] - anchor[2]),
            ]
        };
        let mut out = Vec::with_capacity(count);
        for step in 1..=cfg.steps {
            st.step(cfg.dt, &bias);
            let due = step * count / cfg.steps;
            let prev_due = (step - 1) * count / cfg.steps;
            if due > prev_due {
                out.push(coords_field(
                    format!("umbrella/n={}/step={step}", cfg.n_atoms),
                    &st.pos,
                ));
            }
        }
        while out.len() < count {
            out.push(coords_field(
                format!("umbrella/n={}/end", cfg.n_atoms),
                &st.pos,
            ));
        }
        out
    }

    /// Reduced model: fewer atoms (paper: 1 960 → 490 is `factor = 4`).
    pub fn coarse(&self, factor: usize) -> Umbrella {
        Umbrella {
            md: MdConfig {
                n_atoms: (self.md.n_atoms / factor).max(8),
                ..self.md
            },
            ..*self
        }
    }
}

/// Virtual-sites MD run: every third real particle gets a massless
/// interaction site placed at a fixed offset along the bisector of its
/// two lattice neighbors.
#[derive(Debug, Clone, Copy)]
pub struct VirtualSites {
    /// Engine parameters.
    pub md: MdConfig,
    /// Virtual-site offset distance.
    pub offset: f64,
}

impl Default for VirtualSites {
    fn default() -> Self {
        Self {
            md: MdConfig::default(),
            offset: 0.15,
        }
    }
}

impl VirtualSites {
    /// Runs the simulation; the output interleaves real coordinates with
    /// the constructed virtual-site coordinates.
    pub fn solve(&self) -> Field {
        self.snapshots(1).pop().expect("one snapshot requested")
    }

    /// Captures `count` snapshots uniformly over the run.
    pub fn snapshots(&self, count: usize) -> Vec<Field> {
        assert!(count >= 1, "virtual_sites: need at least one snapshot");
        let cfg = &self.md;
        let mut st = MdState::new(cfg);
        st.compute_forces();
        let no_bias = |_: usize, _: [f64; 3]| [0.0f64; 3];
        let mut out = Vec::with_capacity(count);
        for step in 1..=cfg.steps {
            st.step(cfg.dt, &no_bias);
            let due = step * count / cfg.steps;
            let prev_due = (step - 1) * count / cfg.steps;
            if due > prev_due {
                out.push(self.emit(&st, step));
            }
        }
        while out.len() < count {
            out.push(self.emit(&st, cfg.steps));
        }
        out
    }

    fn emit(&self, st: &MdState, step: usize) -> Field {
        let n = st.pos.len();
        let mut coords: Vec<f64> = Vec::with_capacity(n * 3 + n); // + virtual sites
        for p in &st.pos {
            coords.extend_from_slice(p);
        }
        // Virtual site for particles i ≡ 0 (mod 3) with neighbors i+1, i+2:
        // site = p_i + offset * unit(bisector(p_{i+1}-p_i, p_{i+2}-p_i)).
        let mut i = 0;
        while i + 2 < n {
            let a = st.pos[i];
            let d1 = st.min_image(a, st.pos[i + 1]);
            let d2 = st.min_image(a, st.pos[i + 2]);
            let mut b = [d1[0] + d2[0], d1[1] + d2[1], d1[2] + d2[2]];
            let norm = (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]).sqrt();
            if norm > 1e-12 {
                for k in &mut b {
                    *k /= norm;
                }
            }
            coords.push(a[0] + self.offset * b[0]);
            coords.push(a[1] + self.offset * b[1]);
            coords.push(a[2] + self.offset * b[2]);
            i += 3;
        }
        let len = coords.len();
        Field::new(
            format!("virtual_sites/n={n}/step={step}"),
            coords,
            Shape::d1(len),
        )
    }

    /// Reduced model: fewer atoms.
    pub fn coarse(&self, factor: usize) -> VirtualSites {
        VirtualSites {
            md: MdConfig {
                n_atoms: (self.md.n_atoms / factor).max(9),
                ..self.md
            },
            ..*self
        }
    }
}

fn coords_field(name: String, pos: &[[f64; 3]]) -> Field {
    let mut coords = Vec::with_capacity(pos.len() * 3);
    for p in pos {
        coords.extend_from_slice(p);
    }
    let len = coords.len();
    Field::new(name, coords, Shape::d1(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_md() -> MdConfig {
        MdConfig {
            n_atoms: 27,
            steps: 20,
            ..Default::default()
        }
    }

    #[test]
    fn umbrella_output_has_expected_size() {
        let u = Umbrella {
            md: tiny_md(),
            ..Default::default()
        };
        let f = u.solve();
        assert_eq!(f.len(), 27 * 3);
    }

    #[test]
    fn positions_stay_in_box() {
        let u = Umbrella {
            md: tiny_md(),
            ..Default::default()
        };
        let f = u.solve();
        for &c in &f.data {
            assert!((0.0..=12.0).contains(&c), "coordinate {c} escaped the box");
        }
    }

    #[test]
    fn tagged_particle_stays_near_anchor() {
        let mut cfg = tiny_md();
        cfg.steps = 100;
        let u = Umbrella {
            md: cfg,
            k_spring: 200.0,
        };
        let f = u.solve();
        let anchor = 6.0;
        // Particle 0 is tethered to the box center by a stiff spring.
        for k in 0..3 {
            let d = (f.data[k] - anchor)
                .abs()
                .min(12.0 - (f.data[k] - anchor).abs());
            assert!(d < 3.0, "tagged particle drifted: axis {k}, dist {d}");
        }
    }

    #[test]
    fn virtual_sites_adds_one_site_per_triplet() {
        let v = VirtualSites {
            md: tiny_md(),
            ..Default::default()
        };
        let f = v.solve();
        assert_eq!(f.len(), 27 * 3 + 9 * 3);
    }

    #[test]
    fn runs_are_deterministic() {
        let u = Umbrella {
            md: tiny_md(),
            ..Default::default()
        };
        assert_eq!(u.solve().data, u.solve().data);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = tiny_md();
        a.seed = 1;
        let mut b = tiny_md();
        b.seed = 2;
        let fa = Umbrella {
            md: a,
            ..Default::default()
        }
        .solve();
        let fb = Umbrella {
            md: b,
            ..Default::default()
        }
        .solve();
        assert_ne!(fa.data, fb.data);
    }

    #[test]
    fn coarse_reduces_atom_count() {
        let u = Umbrella::default();
        assert_eq!(u.coarse(4).md.n_atoms, 122);
        let v = VirtualSites::default();
        assert_eq!(v.coarse(4).md.n_atoms, 122);
    }

    #[test]
    fn energies_stay_finite() {
        let u = Umbrella {
            md: tiny_md(),
            ..Default::default()
        };
        let f = u.solve();
        assert!(f.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn snapshots_count() {
        let u = Umbrella {
            md: tiny_md(),
            ..Default::default()
        };
        assert_eq!(u.snapshots(5).len(), 5);
    }
}
