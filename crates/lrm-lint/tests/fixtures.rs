//! Fixture-based self-tests for the lint engine.
//!
//! Every `tests/fixtures/*.rs` file is a known snippet — bad code that a
//! rule must flag, next to the corrected idiom it must accept. The file
//! name's prefix (up to `__`) selects the rule families applied, mirroring
//! a `lint.toml` registration; `//~ rule-name` trailer comments record the
//! expected findings as (line, rule) pairs. The harness fails on any
//! missed *or* spurious finding, so the fixtures double as a
//! false-positive regression corpus. The fixture directory itself is
//! excluded from workspace scans by `collect_rust_files`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use lrm_lint::rules::{lint_source, FileKind};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    paths
}

/// The rule families a fixture opts into, from its `<prefix>__` name.
fn kind_for(prefix: &str) -> FileKind {
    let mut kind = FileKind::default();
    match prefix {
        "decode" => kind.decode = true,
        "wire" => kind.wire = true,
        "numerics" => kind.numerics = true,
        "concurrency" => kind.concurrency = true,
        "taint" => kind.taint = true,
        "lockorder" => kind.lockorder = true,
        // Registry drift is the *absence* of a registration: the
        // fixture runs with no rule families at all.
        "drift" => {}
        "plain" => {}
        other => panic!("fixture prefix {other:?} does not name a rule family"),
    }
    kind
}

/// Parses `//~ rule-name` markers into the expected (line, rule) set.
fn expectations(src: &str) -> BTreeSet<(usize, String)> {
    let mut want = BTreeSet::new();
    for (idx, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            rest = &rest[pos + 3..];
            let rule = rest.split_whitespace().next().unwrap_or("");
            assert!(!rule.is_empty(), "empty //~ marker on line {}", idx + 1);
            want.insert((idx + 1, rule.to_string()));
        }
    }
    want
}

fn stem(path: &Path) -> &str {
    path.file_stem()
        .and_then(|s| s.to_str())
        .expect("fixture has a utf-8 stem")
}

#[test]
fn fixture_corpus_matches_expected_findings() {
    let paths = fixture_paths();
    assert!(
        paths.len() >= 10,
        "expected a fixture corpus, found {} files",
        paths.len()
    );
    for path in &paths {
        let name = stem(path);
        let prefix = name.split("__").next().expect("split never empty");
        let src = std::fs::read_to_string(path).expect("fixture readable");
        let want = expectations(&src);
        let got: BTreeSet<(usize, String)> = lint_source(name, &src, kind_for(prefix))
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        assert_eq!(
            got, want,
            "fixture {name}: findings diverge from //~ markers \
             (left = engine, right = expected)"
        );
    }
}

#[test]
fn every_new_rule_fires_somewhere_in_the_corpus() {
    let mut fired = BTreeSet::new();
    for path in fixture_paths() {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        for (_, rule) in expectations(&src) {
            fired.insert(rule);
        }
    }
    for rule in [
        "float-total-cmp",
        "nan-guard",
        "float-cast-bounds",
        "div-abs",
        "lock-across-call",
        "no-unscoped-spawn",
        "result-slot-discipline",
        "wire-alloc-unclamped",
        "lock-order-cycle",
        "blocking-in-event-loop",
        "unregistered-decode-path",
    ] {
        assert!(fired.contains(rule), "no fixture exercises rule {rule}");
    }
}

#[test]
fn clean_fixture_exists_and_is_clean() {
    // At least one fixture must assert the zero-findings path explicitly.
    let path = fixtures_dir().join("plain__clean.rs");
    let src = std::fs::read_to_string(&path).expect("plain__clean.rs exists");
    assert!(expectations(&src).is_empty());
    assert!(lint_source("plain__clean", &src, FileKind::default()).is_empty());
}
