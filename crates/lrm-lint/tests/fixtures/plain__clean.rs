//! Fixture: a well-behaved file produces zero findings.

/// Doubles every element in place.
pub fn double(v: &mut [f64]) {
    for x in v.iter_mut() {
        *x *= 2.0;
    }
}
