//! Fixture: two mutexes taken in opposite orders anywhere in the
//! workspace is a deadlock waiting for the right interleaving
//! (`lock-order-cycle`).

// Bad: `forward` takes jobs → results...
fn forward(s: &Shared) {
    let jobs = s.jobs.lock().unwrap();
    let results = s.results.lock().unwrap(); //~ lock-order-cycle
    drop(results);
    drop(jobs);
}

// ...while `backward` takes results → jobs.
fn backward(s: &Shared) {
    let results = s.results.lock().unwrap();
    let jobs = s.jobs.lock().unwrap(); //~ lock-order-cycle
    drop(jobs);
    drop(results);
}

// Good: a consistent global order never cycles.
fn drain(s: &Shared) {
    let queue = s.queue.lock().unwrap();
    let done = s.done.lock().unwrap();
    drop(done);
    drop(queue);
}

fn publish(s: &Shared) {
    let queue = s.queue.lock().unwrap();
    let done = s.done.lock().unwrap();
    drop(done);
    drop(queue);
}

// Good: a temporary `.lock()` (no `let`) releases at the end of its
// statement, so no (done, queue) pair is recorded here.
fn tally(s: &Shared) {
    s.done.lock().unwrap().push(1);
    let queue = s.queue.lock().unwrap();
    drop(queue);
}
