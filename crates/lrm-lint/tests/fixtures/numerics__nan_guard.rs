//! Fixture: error-metric functions must classify non-finite input (or
//! delegate to a metric that does) so NaN never silently poisons a
//! report.

pub fn mean_error(a: &[f64], b: &[f64]) -> f64 { //~ nan-guard
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += (x - y) * (x - y);
    }
    s / a.len() as f64
}

pub fn guarded_error(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            s += (x - y).abs();
        }
    }
    s
}

pub fn rel_error(a: &[f64], b: &[f64]) -> f64 {
    // good: delegates to a metric that classifies non-finite input.
    guarded_error(a, b)
}
