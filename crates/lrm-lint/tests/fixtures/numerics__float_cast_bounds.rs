//! Fixture: a float expression cast to an integer type silently
//! saturates on NaN/inf/overflow; the value must be clamped first.

pub fn grid_side(n: usize) -> usize {
    (n as f64).sqrt() as usize //~ float-cast-bounds
}

pub fn grid_side_clamped(n: usize) -> usize {
    (n as f64).sqrt().clamp(0.0, n as f64) as usize // good: clamped
}
