//! Fixture: holding a mutex guard across a caller-supplied callback
//! invites deadlock (the callback may take the same lock).

use std::sync::Mutex;

pub fn for_each_locked<F: Fn(usize)>(m: &Mutex<Vec<usize>>, f: F) {
    let guard = m.lock().expect("poisoned");
    for &v in guard.iter() {
        f(v); //~ lock-across-call
    }
}

pub fn for_each_dropped<F: Fn(usize)>(m: &Mutex<Vec<usize>>, f: F) {
    let guard = m.lock().expect("poisoned");
    let items = guard.clone();
    drop(guard);
    for v in items {
        f(v); // good: guard explicitly dropped before the callback
    }
}

pub fn for_each_scoped<F: Fn(usize)>(m: &Mutex<Vec<usize>>, f: F) {
    let items;
    {
        let guard = m.lock().expect("poisoned");
        items = guard.clone();
    }
    for v in items {
        f(v); // good: guard's scope closed before the callback
    }
}
