//! Fixture: one-level interprocedural taint — passing an unclamped
//! wire length to a helper that sizes an allocation from it
//! (`wire-alloc-unclamped` at the call site).

const MAX_ENTRIES: usize = 1 << 16;

// The helper alone is not flagged: its caller may clamp.
fn alloc_entries(n: usize) -> Vec<u64> {
    Vec::with_capacity(n)
}

// Bad: the wire count reaches `alloc_entries`' capacity unclamped.
fn decode_directory(count: u32) -> Vec<u64> {
    let n = count as usize;
    alloc_entries(n) //~ wire-alloc-unclamped
}

// Good: clamped before the call.
fn decode_directory_clamped(count: u32) -> Vec<u64> {
    let n = (count as usize).min(MAX_ENTRIES);
    alloc_entries(n)
}

// Good: the clamp can sit in the argument itself.
fn decode_directory_inline(count: u32) -> Vec<u64> {
    alloc_entries((count as usize).min(MAX_ENTRIES))
}
