//! Fixture: wire formats must not serialize platform-width integers or
//! iterate unordered containers.

use std::collections::HashMap; //~ wire-hashmap

pub fn write_len(v: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&v.len().to_le_bytes()); //~ wire-usize
    out.extend_from_slice(&(v.len() as u32).to_le_bytes()); // good: fixed width
    let _: Option<HashMap<String, u32>> = None; //~ wire-hashmap
}
