//! Fixture: inside an error-metric function, dividing by an unguarded
//! value risks inf/NaN when the divisor is zero or subnormal.

pub fn rel_error(x: f64, scale: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    x / scale //~ div-abs
}

pub fn rel_error_guarded(x: f64, scale: f64) -> f64 {
    if x.is_finite() && scale.abs() > 1e-300 {
        x / scale // good: magnitude checked above
    } else {
        0.0
    }
}

pub fn rel_error_floored(x: f64, scale: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    let denom = scale.abs().max(1e-300);
    x / denom // good: denominator floored at binding time
}
