//! Fixture: sorting floats with `partial_cmp(..).expect(..)` panics on
//! NaN; `f64::total_cmp` gives a total order and must be used instead.

pub fn sort_values(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite")); //~ float-total-cmp
    v
}

pub fn sorted_total(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(f64::total_cmp); // good: total order, NaN cannot panic
    v
}
