//! Fixture: decode-path hardening rules fire inside decoder functions.

pub fn decode_header(bytes: &[u8]) -> u16 {
    let hi = bytes.first().copied().unwrap(); //~ no-unwrap
    let lo = bytes[1]; //~ no-index
    (u16::from(hi) << 8) | u16::from(lo)
}
