//! Fixture: `lint:allow` with a reason suppresses a finding; without a
//! reason the allow itself is the finding and suppresses nothing.

pub fn sort_with_reason(mut v: Vec<f64>) -> Vec<f64> {
    // lint:allow(float-total-cmp): inputs pre-filtered to finite values
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v
}

pub fn sort_without_reason(mut v: Vec<f64>) -> Vec<f64> {
    // lint:allow(float-total-cmp) //~ allow-no-reason
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite")); //~ float-total-cmp
    v
}
