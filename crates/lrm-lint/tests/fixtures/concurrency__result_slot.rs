//! Fixture: writes into shared result slots must store `Some(..)` so a
//! lost result is distinguishable from a never-scheduled task.

pub fn record_raw(out_slots: &mut [u64], i: usize, r: u64) {
    out_slots[i] = r; //~ result-slot-discipline
}

pub fn record(slots: &mut [Option<u64>], i: usize, r: u64) {
    slots[i] = Some(r); // good: absence stays observable
}
