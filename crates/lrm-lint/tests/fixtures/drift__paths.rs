//! Fixture: a byte-slice decoder in a file that is not registered
//! under `[decode]` in lint.toml (`unregistered-decode-path`). The
//! fixture runs with no registrations at all, standing in for a new
//! wire-format module someone forgot to add to the registry.

// Bad: a decoder signature outside the [decode] registry.
fn decode_record(b: &[u8]) -> Option<Record> { //~ unregistered-decode-path
    Record::from_parts(b)
}

// Bad: `read_*` and `parse*` count as decoder names too.
fn read_header(bytes: &[u8]) -> Header { //~ unregistered-decode-path
    Header { len: bytes.len() }
}

fn parse_frame(buf: &[u8]) -> Frame { //~ unregistered-decode-path
    Frame { len: buf.len() }
}

// Good: a decoder-named helper that does not take raw bytes.
fn decode_flag(word: u32) -> bool {
    word & 1 != 0
}

// Good: a byte-slice helper without a decoder name.
fn checksum(b: &[u8]) -> u32 {
    b.iter().map(|&x| x as u32).sum()
}

#[cfg(test)]
mod tests {
    // Good: test scaffolding is exempt even with a decoder shape.
    #[test]
    fn decode_record_roundtrip() {
        assert!(super::decode_record(&[1, 2, 3]).is_none());
    }
}
