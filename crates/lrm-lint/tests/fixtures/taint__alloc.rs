//! Fixture: lengths read off the wire must be clamped before they size
//! an allocation (`wire-alloc-unclamped`, intraprocedural cases).

const MAX_SAMPLES: usize = 1 << 20;

// Bad: a decode fn's integer parameter is a wire length by convention,
// and it flows straight into the capacity.
fn decode_samples(count: u32) -> Vec<u8> {
    let n = count as usize;
    Vec::with_capacity(n) //~ wire-alloc-unclamped
}

// Bad: framed-reader accessors seed taint; `vec![_; n]` repeat counts
// and `set_len` are sinks.
fn decode_block(header: &mut Reader) -> Vec<u8> {
    let n = header.u32("count") as usize;
    let mut v = vec![0u8; n]; //~ wire-alloc-unclamped
    // SAFETY: fixture illustration; the capacity above covers `n`.
    unsafe { v.set_len(n) }; //~ wire-alloc-unclamped
    v
}

// Bad: `payload_len` is wire data wherever it appears.
fn frame_body(payload_len: usize) -> Vec<u8> {
    vec![0u8; payload_len] //~ wire-alloc-unclamped
}

// Good: `.min()` clamps before sizing.
fn decode_clamped(count: u32) -> Vec<u8> {
    let n = (count as usize).min(MAX_SAMPLES);
    Vec::with_capacity(n)
}

// Good: a MAX_* guard sanitizes the length for the rest of the fn.
fn decode_guarded(count: u32) -> Option<Vec<u8>> {
    let n = count as usize;
    if n > MAX_SAMPLES {
        return None;
    }
    Some(Vec::with_capacity(n))
}

// Good: the fallible `take(..)?` is this repo's bounds-checked reader
// take — a validated read, not an allocation.
fn decode_payload(r: &mut Reader) -> Result<Vec<u8>, Error> {
    let n = r.u32("len")? as usize;
    let raw = r.take(n, "body")?;
    Ok(raw.to_vec())
}
