//! Fixture: unscoped `thread::spawn` leaks workers on early return;
//! scoped threads or a documented join path are required.

pub fn fire_and_forget() {
    std::thread::spawn(|| { //~ no-unscoped-spawn
        let _ = 1 + 1;
    });
}

pub fn scoped_work(data: &mut [u64]) {
    std::thread::scope(|s| {
        for chunk in data.chunks_mut(2) {
            s.spawn(move || {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
        }
    });
}

pub fn documented_worker() -> std::thread::JoinHandle<()> {
    // lint:allow(no-unscoped-spawn): handle is returned; the caller joins it
    std::thread::spawn(|| {})
}
