//! Fixture: anything reachable from the `event_loop` root runs on the
//! dispatch thread and must not block (`blocking-in-event-loop`).
//! Single-file runs treat any fn named `event_loop` as the root.

fn event_loop(s: &Shared) {
    loop {
        poll_ready(s);
        dispatch(s);
    }
}

// Good: non-blocking polling belongs on the loop.
fn poll_ready(s: &Shared) {
    while let Ok(job) = s.jobs.try_recv() {
        s.queue.push(job);
    }
}

// Bad: a condvar wait on the loop thread stalls every connection.
fn dispatch(s: &Shared) {
    let guard = s.state.lock().unwrap();
    let _ = s.cond.wait_timeout(guard, TICK); //~ blocking-in-event-loop
    reject(s);
}

// Intentional blocking points carry an allow with a reason.
fn reject(s: &Shared) {
    // lint:allow(blocking-in-event-loop): best-effort reject write on a socket about to close
    let _ = s.stream.write_all(s.busy_frame());
}

// Good: blocking off the loop thread — `worker` is not reachable from
// the root.
fn worker(s: &Shared) {
    let job = s.jobs.recv().unwrap();
    s.results.send(job).unwrap();
}
