//! Wire-taint dataflow: `wire-alloc-unclamped`.
//!
//! A length that came off the wire must be clamped before it sizes an
//! allocation. This pack tracks wire-derived values lexically through
//! one function body — plus one level of call via per-function
//! summaries — from **sources** to **sinks**:
//!
//! * **Sources** (seed taint): `u*::from_le_bytes` / `from_be_bytes`,
//!   the framed-reader accessors `.u8(`/`.u16(`/`.u32(`/`.u64(`, calls
//!   to `read_*` / `decode_*` / `decode` helpers (bit-level
//!   `read_bit`/`read_bits` excepted — they yield symbols, not
//!   lengths), the conventional `payload_len` name, and — inside
//!   decode-named fns — integer-typed parameters, which are wire
//!   values by this repo's calling convention.
//! * **Propagation**: `let` bindings whose right-hand side mentions a
//!   tainted name (or a source) taint the bound names; rebinding from a
//!   clean expression clears them. Multi-line `let` statements are
//!   joined before matching.
//! * **Cleansing**: a right-hand side or sink argument containing
//!   `.min(` / `.clamp(` / `checked_*` is treated as clamped; an
//!   `if name <|>|!= MAX_* | max_* | .len()` comparison sanitizes
//!   `name` for the rest of the function.
//! * **Sinks**: `Vec::with_capacity`, `.reserve(`, `.set_len(`,
//!   `vec![_; n]`, iterator/IO `.take(n)` (except the fallible
//!   `.take(..)?`, which is this repo's *bounds-checked* reader take),
//!   and `[a..b]` slice spans.
//!
//! The engine is deliberately one function deep: a value returned
//! through two calls and then allocated is not tracked. DESIGN.md
//! documents that false-negative budget.

use crate::callgraph::{calls_on_line, resolvable, CallGraph, FnRef};
use crate::rules::{snippet_of, Finding};
use crate::tokens::{has_word, is_decode_fn, param_list, split_top_level, FnScope};
use crate::workspace::{SourceFile, Workspace};
use std::collections::{HashMap, HashSet};

/// Names bit-level readers that yield symbols, not lengths.
const READ_EXEMPT: &[&str] = &["read_bit", "read_bits"];

/// Runs the pack: intraprocedural walk over every fn in `[taint]`
/// files, then call-site checks against per-fn sink-parameter
/// summaries.
pub fn apply(ws: &Workspace, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let summaries = build_summaries(ws);
    for sf in &ws.files {
        if !sf.kind.taint {
            continue;
        }
        let originals = sf.originals();
        for f in &sf.map.fns {
            if f.is_test {
                continue;
            }
            walk_fn(
                sf,
                f,
                Mode::Report {
                    graph,
                    summaries: &summaries,
                    originals: &originals,
                    findings,
                },
            );
        }
    }
}

/// Sink-parameter summary: for each fn, which parameter positions flow
/// unclamped into a sink inside its body.
type Summaries = HashMap<FnRef, Vec<usize>>;

fn build_summaries(ws: &Workspace) -> Summaries {
    let mut out = Summaries::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        if !sf.kind.taint {
            continue;
        }
        for (xi, f) in sf.map.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut positions = Vec::new();
            for (pos, name) in fn_params(f) {
                let mut hit = false;
                walk_fn(
                    sf,
                    f,
                    Mode::Probe {
                        param: &name,
                        hit: &mut hit,
                    },
                );
                if hit {
                    positions.push(pos);
                }
            }
            if !positions.is_empty() {
                out.insert((fi, xi), positions);
            }
        }
    }
    out
}

/// `(position, name)` of each named, non-self parameter.
fn fn_params(f: &FnScope) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (pos, part) in split_top_level(param_list(&f.signature)).iter().enumerate() {
        let Some(colon) = part.find(':') else {
            continue; // `self`, `&mut self`
        };
        let name = part[..colon].trim().trim_start_matches("mut ").trim();
        if !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            out.push((pos, name.to_owned()));
        }
    }
    out
}

/// Integer-typed parameter names of a decode-named fn — wire lengths by
/// calling convention.
fn seed_params(f: &FnScope) -> Vec<String> {
    if !is_decode_fn(&f.name) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for part in split_top_level(param_list(&f.signature)) {
        let Some(colon) = part.find(':') else {
            continue;
        };
        let name = part[..colon].trim().trim_start_matches("mut ").trim();
        // The masked signature spaces words apart; squash before
        // comparing types.
        let ty: String = part[colon + 1..].chars().filter(|c| *c != ' ').collect();
        if matches!(ty.as_str(), "u16" | "u32" | "u64" | "usize")
            && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            out.push(name.to_owned());
        }
    }
    out
}

/// What a walk does with a sink hit.
enum Mode<'a> {
    /// Full engine: sources on, call-site checks on, findings emitted.
    Report {
        graph: &'a CallGraph,
        summaries: &'a Summaries,
        originals: &'a [&'a str],
        findings: &'a mut Vec<Finding>,
    },
    /// Summary probe: only `param` is tainted, sources off, stop at the
    /// first sink hit.
    Probe { param: &'a str, hit: &'a mut bool },
}

fn walk_fn(sf: &SourceFile, f: &FnScope, mut mode: Mode<'_>) {
    let seeds_on = matches!(mode, Mode::Report { .. });
    let mut tainted: HashSet<String> = match &mode {
        Mode::Report { .. } => {
            let mut t: HashSet<String> = seed_params(f).into_iter().collect();
            // The conventional header-length name is wire data wherever
            // it appears in a taint-registered file.
            t.insert("payload_len".to_owned());
            t
        }
        Mode::Probe { param, .. } => [(*param).to_owned()].into_iter().collect(),
    };
    let mut sanitized: HashSet<String> = HashSet::new();

    for (first_ln, stmt) in statements(sf, f) {
        // Guard: `if name <|>|!= ...MAX/max_/.len()...` sanitizes.
        if has_word(&stmt, "if")
            && (stmt.contains('<') || stmt.contains('>') || stmt.contains("!="))
            && (stmt.contains("MAX") || stmt.contains("max_") || stmt.contains(".len()"))
        {
            let guarded: Vec<String> = tainted
                .iter()
                .filter(|n| has_word(&stmt, n))
                .cloned()
                .collect();
            for n in guarded {
                tainted.remove(&n);
                sanitized.insert(n);
            }
        }

        // Sinks first: `let n = src(); vec.set_len(n)` cannot occur in
        // one statement, and checking before the `let` update keeps
        // `let v = Vec::with_capacity(n)` attributed to the old `n`.
        let dirty = |expr: &str| -> Option<String> {
            if is_clamped(expr) {
                return None;
            }
            if let Some(n) = tainted.iter().find(|n| has_word(expr, n)) {
                return Some(format!("`{n}`"));
            }
            if seeds_on && seeded(expr) {
                return Some("a wire read".to_owned());
            }
            None
        };

        let mut hits: Vec<(String, String)> = Vec::new(); // (what, which sink)
        for (arg, sink) in sink_args(&stmt) {
            if let Some(what) = dirty(&arg) {
                hits.push((what, sink));
            }
        }

        match &mut mode {
            Mode::Probe { hit, .. } => {
                if !hits.is_empty() {
                    **hit = true;
                    return;
                }
            }
            Mode::Report {
                graph,
                summaries,
                originals,
                findings,
            } => {
                for (what, sink) in hits {
                    findings.push(Finding {
                        rule: "wire-alloc-unclamped",
                        file: sf.rel.clone(),
                        line: first_ln,
                        snippet: snippet_of(originals, first_ln),
                        message: format!(
                            "{sink} sized by {what} with no clamp — \
                             compare against a MAX_* bound or use .min()/checked_* first"
                        ),
                    });
                }

                // One level of call: tainted argument at a position the
                // callee's summary says reaches a sink unclamped.
                for site in calls_on_line(&stmt) {
                    if !resolvable(&site) {
                        continue;
                    }
                    let Some(targets) = graph.by_name.get(&site.name) else {
                        continue;
                    };
                    let Some(args) = call_args(&stmt, site.col + site.name.len()) else {
                        continue;
                    };
                    let args = split_top_level(&args);
                    let mut flagged = false;
                    for t in targets {
                        let Some(positions) = summaries.get(t) else {
                            continue;
                        };
                        for &pos in positions {
                            if flagged {
                                break;
                            }
                            let Some(arg) = args.get(pos) else { continue };
                            if let Some(what) = dirty(arg) {
                                findings.push(Finding {
                                    rule: "wire-alloc-unclamped",
                                    file: sf.rel.clone(),
                                    line: first_ln,
                                    snippet: snippet_of(originals, first_ln),
                                    message: format!(
                                        "passes {what} to `{}`, which sizes an \
                                         allocation from it — clamp before the call",
                                        site.name
                                    ),
                                });
                                flagged = true;
                            }
                        }
                    }
                }
            }
        }

        // `let` update: propagate or clear the bound names.
        if let Some((names, rhs)) = let_binding(&stmt) {
            let rhs_tainted = !is_clamped(rhs)
                && (tainted.iter().any(|n| has_word(rhs, n)) || (seeds_on && seeded(rhs)));
            for n in names {
                if rhs_tainted {
                    sanitized.remove(&n);
                    tainted.insert(n);
                } else {
                    tainted.remove(&n);
                }
            }
        }
    }
}

/// Joins the lines of `f`'s body into statements. A `let` joins until
/// all brackets close *and* a trailing `;` (so multi-line initializers
/// — including closure bodies — stay one statement); anything else
/// joins only while `(`/`[` groups are open, so control-flow headers
/// ending in `{` terminate immediately.
fn statements(sf: &SourceFile, f: &FnScope) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut i = f.body_start;
    while i <= f.body_end && i <= sf.masked.lines.len() {
        let first = i;
        let line = &sf.masked.lines[i - 1];
        let is_let = {
            let t = line.trim_start();
            t == "let" || t.starts_with("let ")
        };
        let mut joined = line.clone();
        let mut all_depth = depth_delta(line, true);
        let mut paren_depth = depth_delta(line, false);
        i += 1;
        loop {
            let done = if is_let {
                all_depth <= 0 && joined.trim_end().ends_with(';')
            } else {
                paren_depth <= 0
            };
            if done || i > f.body_end || i > sf.masked.lines.len() {
                break;
            }
            let next = &sf.masked.lines[i - 1];
            joined.push(' ');
            joined.push_str(next);
            all_depth += depth_delta(next, true);
            paren_depth += depth_delta(next, false);
            i += 1;
        }
        out.push((first, joined));
    }
    out
}

fn depth_delta(line: &str, count_braces: bool) -> i32 {
    let mut d = 0i32;
    for b in line.bytes() {
        match b {
            b'(' | b'[' => d += 1,
            b')' | b']' => d -= 1,
            b'{' if count_braces => d += 1,
            b'}' if count_braces => d -= 1,
            _ => {}
        }
    }
    d
}

/// Does this expression read wire data directly? `from_le_bytes` is
/// matched as a word, not a call — it is often passed as a function
/// reference (`.map(u32::from_le_bytes)`).
fn seeded(expr: &str) -> bool {
    if has_word(expr, "from_le_bytes") || has_word(expr, "from_be_bytes") {
        return true;
    }
    for acc in [".u8(", ".u16(", ".u32(", ".u64("] {
        if expr.contains(acc) {
            return true;
        }
    }
    calls_on_line(expr).iter().any(|s| {
        (s.name.starts_with("read_") && !READ_EXEMPT.contains(&s.name.as_str()))
            || s.name.starts_with("decode_")
            || s.name == "decode"
    })
}

/// Clamp / validation vocabulary that cleanses an expression.
fn is_clamped(expr: &str) -> bool {
    expr.contains(".min(") || expr.contains(".clamp(") || expr.contains("checked_")
}

/// If `stmt` is a `let`, the bound lowercase names and the right-hand
/// side. Uppercase idents (enum constructors in patterns) are skipped.
fn let_binding(stmt: &str) -> Option<(Vec<String>, &str)> {
    let t = stmt.trim_start();
    let body = t.strip_prefix("let")?;
    if !body.starts_with([' ', '\t']) {
        return None;
    }
    let eq = top_level_eq(body)?;
    let (lhs, rhs) = (&body[..eq], &body[eq + 1..]);
    // Drop a top-level type ascription so `let n: usize = ..` binds `n`
    // without tainting the word `usize`.
    let lhs = match lhs
        .find(':')
        .filter(|&i| lhs.as_bytes().get(i + 1) != Some(&b':'))
    {
        Some(i) if !lhs[..i].contains('(') => &lhs[..i],
        _ => lhs,
    };
    let mut names = Vec::new();
    let bytes = lhs.as_bytes();
    let mut j = 0usize;
    while j < bytes.len() {
        if bytes[j].is_ascii_alphabetic() || bytes[j] == b'_' {
            let start = j;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let word = &lhs[start..j];
            if word != "mut" && word != "ref" && !word.starts_with(char::is_uppercase) {
                names.push(word.to_owned());
            }
        } else {
            j += 1;
        }
    }
    Some((names, rhs))
}

/// Byte offset of the first `=` in `s` that is an assignment, not part
/// of `==`, `!=`, `<=`, `>=`, or `=>`.
fn top_level_eq(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth <= 0 => {
                let prev = i.checked_sub(1).map(|p| bytes[p]);
                let next = bytes.get(i + 1).copied();
                if prev != Some(b'=')
                    && prev != Some(b'!')
                    && prev != Some(b'<')
                    && prev != Some(b'>')
                    && next != Some(b'=')
                    && next != Some(b'>')
                {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Balanced paren group content starting at `open` (the `(` offset).
fn call_args(stmt: &str, open: usize) -> Option<String> {
    let bytes = stmt.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(stmt[open + 1..i].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Every sink-argument expression in `stmt`, with a label for the
/// report: capacity/length calls, `vec![_; n]`, and `[a..b]` spans.
fn sink_args(stmt: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for pat in ["with_capacity(", ".reserve(", ".set_len(", ".take("] {
        let mut from = 0usize;
        while let Some(pos) = stmt[from..].find(pat) {
            let at = from + pos;
            let open = at + pat.len() - 1;
            from = open;
            let Some(args) = call_args(stmt, open) else {
                continue;
            };
            if pat == ".take(" {
                // `.take(n)?` is the fallible bounds-checked reader
                // take — a validated read, not an allocation.
                let close = open + args.len() + 1;
                if stmt[close + 1..].trim_start().starts_with('?') {
                    continue;
                }
            }
            out.push((args, format!("`{}..)`", pat.trim_end_matches('('))));
        }
    }

    // `vec![elem; n]`: the repeat count is the sink.
    let mut from = 0usize;
    while let Some(pos) = stmt[from..].find("vec![") {
        let open = from + pos + "vec![".len() - 1;
        from = open;
        if let Some(body) = bracket_body(stmt, open) {
            if let Some(semi) = top_level_semi(&body) {
                out.push((body[semi + 1..].to_owned(), "`vec![_; n]`".to_owned()));
            }
        }
    }

    // `[a..b]` spans: a range index sized by its bounds.
    let bytes = stmt.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| bytes[p]);
        if prev == Some(b'!') || prev == Some(b'#') {
            continue; // macro or attribute, handled above
        }
        if let Some(body) = bracket_body(stmt, i) {
            if body.contains("..") {
                out.push((body, "slice span".to_owned()));
            }
        }
    }
    out
}

/// Balanced `[..]` content starting at `open` (the `[` offset).
fn bracket_body(stmt: &str, open: usize) -> Option<String> {
    let bytes = stmt.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(stmt[open + 1..i].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Offset of the first `;` at paren/bracket depth 0 inside a
/// `vec![...]` body.
fn top_level_semi(body: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' if depth <= 0 => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;
    use crate::workspace::Workspace;

    fn taint_kind() -> FileKind {
        FileKind {
            taint: true,
            ..FileKind::default()
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::new("t.rs".into(), src.into(), taint_kind())],
        };
        let graph = CallGraph::build(&ws);
        let mut findings = Vec::new();
        apply(&ws, &graph, &mut findings);
        findings
    }

    #[test]
    fn wire_length_into_with_capacity_flags() {
        let f = run("fn decode_header(b: &[u8]) -> Vec<u8> {\n\
             \x20   let n = u64::from_le_bytes([b[0]; 8]) as usize;\n\
             \x20   Vec::with_capacity(n)\n\
             }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wire-alloc-unclamped");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn min_clamp_cleanses() {
        let f = run("fn decode_header(b: &[u8]) -> Vec<u8> {\n\
             \x20   let n = u64::from_le_bytes([b[0]; 8]) as usize;\n\
             \x20   let n = n.min(1024);\n\
             \x20   Vec::with_capacity(n)\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_comparison_sanitizes() {
        let f = run("fn decode_header(b: &[u8]) -> Option<Vec<u8>> {\n\
             \x20   let n = u32::from_le_bytes([b[0]; 4]) as usize;\n\
             \x20   if n > MAX_PAYLOAD {\n\
             \x20       return None;\n\
             \x20   }\n\
             \x20   Some(Vec::with_capacity(n))\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn decode_fn_int_params_are_seeded() {
        let f = run("fn decode_block(data: &[u8], count: usize) -> Vec<u8> {\n\
             \x20   Vec::with_capacity(count)\n\
             }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn fallible_take_is_a_validated_read() {
        let f = run("fn decode_header(r: &mut Reader) -> Result<(), E> {\n\
             \x20   let n = r.u32(\"len\")? as usize;\n\
             \x20   let raw = r.take(n, \"body\")?;\n\
             \x20   Ok(())\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn one_level_call_into_allocating_helper_flags() {
        let f = run("fn alloc_buf(n: usize) -> Vec<u8> {\n\
             \x20   Vec::with_capacity(n)\n\
             }\n\
             fn decode_header(b: &[u8]) -> Vec<u8> {\n\
             \x20   let n = u64::from_le_bytes([b[0]; 8]) as usize;\n\
             \x20   alloc_buf(n)\n\
             }\n");
        // One finding at the call site; `alloc_buf` alone is not
        // flagged (its caller may clamp).
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("alloc_buf"));
    }

    #[test]
    fn vec_repeat_and_set_len_are_sinks() {
        let f = run("fn decode_header(b: &[u8]) -> Vec<u8> {\n\
             \x20   let n = u32::from_le_bytes([b[0]; 4]) as usize;\n\
             \x20   let mut v = vec![0u8; n];\n\
             \x20   unsafe { v.set_len(n) };\n\
             \x20   v\n\
             }\n");
        let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [3, 4], "{f:?}");
    }

    #[test]
    fn unregistered_files_are_untouched() {
        let ws = Workspace {
            files: vec![SourceFile::new(
                "t.rs".into(),
                "fn decode(b: &[u8]) -> Vec<u8> {\n\
                 \x20   let n = u64::from_le_bytes([b[0]; 8]) as usize;\n\
                 \x20   Vec::with_capacity(n)\n\
                 }\n"
                .into(),
                FileKind::default(),
            )],
        };
        let graph = CallGraph::build(&ws);
        let mut findings = Vec::new();
        apply(&ws, &graph, &mut findings);
        assert!(findings.is_empty());
    }
}
