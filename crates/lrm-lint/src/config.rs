//! `lint.toml` — the decode-path registry.
//!
//! The linter does not guess which code is decode-reachable; the
//! registry at the repository root declares it. The file is a small,
//! explicit subset of TOML (sections containing a `paths` string
//! array), parsed here without any external dependency:
//!
//! ```toml
//! [decode]
//! paths = [
//!     "crates/lrm-compress/src/sz",       # a directory: every .rs inside
//!     "crates/lrm-io/src/artifact.rs",    # or a single file
//! ]
//!
//! [wire]
//! paths = ["crates/lrm-io/src/artifact.rs"]
//!
//! [lockorder]
//! paths = ["crates/lrm-server/src/server.rs"]
//! # Event-loop dispatch roots for `blocking-in-event-loop`, as
//! # `path::fn_name` (or a bare fn name matching anywhere).
//! roots = ["crates/lrm-server/src/server.rs::run"]
//! ```

use crate::rules::FileKind;

/// Parsed registry: path prefixes (relative to the repo root) for each
/// rule family.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Decode-reachable modules: panic-free rules apply.
    pub decode: Vec<String>,
    /// Wire-format modules: serialization rules apply.
    pub wire: Vec<String>,
    /// Metric/linalg modules: the numerics pack applies.
    pub numerics: Vec<String>,
    /// Parallel-runtime modules: the concurrency pack applies.
    pub concurrency: Vec<String>,
    /// Wire-facing modules: the interprocedural taint pack applies.
    pub taint: Vec<String>,
    /// Lock-holding modules: the lock-order / event-loop pack applies.
    pub lockorder: Vec<String>,
    /// Event-loop dispatch roots (`path::fn` or bare `fn`) for
    /// `blocking-in-event-loop` reachability.
    pub lockorder_roots: Vec<String>,
}

impl Config {
    /// Which rule families apply to the file at `rel_path` (repo-root
    /// relative, `/`-separated). A registry entry matches the file
    /// itself or, for directories, anything beneath it.
    pub fn kind_of(&self, rel_path: &str) -> FileKind {
        let matches = |paths: &[String]| {
            paths.iter().any(|p| {
                rel_path == p
                    || rel_path
                        .strip_prefix(p.as_str())
                        .is_some_and(|rest| rest.starts_with('/'))
            })
        };
        FileKind {
            decode: matches(&self.decode),
            wire: matches(&self.wire),
            numerics: matches(&self.numerics),
            concurrency: matches(&self.concurrency),
            taint: matches(&self.taint),
            lockorder: matches(&self.lockorder),
        }
    }
}

/// Where a `paths` / `roots` array's strings land.
#[derive(Clone, Copy, PartialEq)]
enum Dest {
    Decode,
    Wire,
    Numerics,
    Concurrency,
    Taint,
    Lockorder,
    LockorderRoots,
}

impl Dest {
    fn vec(self, cfg: &mut Config) -> &mut Vec<String> {
        match self {
            Dest::Decode => &mut cfg.decode,
            Dest::Wire => &mut cfg.wire,
            Dest::Numerics => &mut cfg.numerics,
            Dest::Concurrency => &mut cfg.concurrency,
            Dest::Taint => &mut cfg.taint,
            Dest::Lockorder => &mut cfg.lockorder,
            Dest::LockorderRoots => &mut cfg.lockorder_roots,
        }
    }
}

/// Parses the registry text. Returns `Err` with a line-tagged message
/// on anything outside the supported subset, so a typo in the registry
/// fails CI loudly instead of silently linting nothing.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut in_array: Option<Dest> = None;

    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }

        if let Some(dest) = in_array {
            if collect_strings(&line, dest.vec(&mut cfg), ln)? {
                in_array = None;
            }
            continue;
        }

        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_owned();
            match section.as_str() {
                "decode" | "wire" | "numerics" | "concurrency" | "taint" | "lockorder" => {}
                other => return Err(format!("lint.toml:{ln}: unknown section [{other}]")),
            }
            continue;
        }

        let (key, dest) = if line.starts_with("paths") {
            let dest = match section.as_str() {
                "decode" => Dest::Decode,
                "wire" => Dest::Wire,
                "numerics" => Dest::Numerics,
                "concurrency" => Dest::Concurrency,
                "taint" => Dest::Taint,
                "lockorder" => Dest::Lockorder,
                _ => return Err(format!("lint.toml:{ln}: paths outside a section")),
            };
            ("paths", dest)
        } else if line.starts_with("roots") {
            if section != "lockorder" {
                return Err(format!(
                    "lint.toml:{ln}: `roots` is only valid in [lockorder]"
                ));
            }
            ("roots", Dest::LockorderRoots)
        } else {
            return Err(format!("lint.toml:{ln}: unsupported syntax: {line}"));
        };

        let rest = line[key.len()..].trim_start();
        let rest = rest
            .strip_prefix('=')
            .ok_or_else(|| format!("lint.toml:{ln}: expected `{key} = [...]`"))?
            .trim_start();
        let rest = rest
            .strip_prefix('[')
            .ok_or_else(|| format!("lint.toml:{ln}: expected `[` after `{key} =`"))?;
        if !collect_strings(rest, dest.vec(&mut cfg), ln)? {
            in_array = Some(dest);
        }
    }

    if in_array.is_some() {
        return Err("lint.toml: unterminated array".to_owned());
    }
    Ok(cfg)
}

/// Pulls quoted strings out of one line of an array body into `out`.
/// Returns `Ok(true)` when the closing `]` was seen.
fn collect_strings(line: &str, out: &mut Vec<String>, ln: usize) -> Result<bool, String> {
    let mut rest = line;
    loop {
        rest = rest.trim_start_matches([',', ' ', '\t']);
        if rest.is_empty() {
            return Ok(false);
        }
        if let Some(after) = rest.strip_prefix(']') {
            if !after.trim().is_empty() {
                return Err(format!("lint.toml:{ln}: trailing text after `]`"));
            }
            return Ok(true);
        }
        let body = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("lint.toml:{ln}: expected quoted path"))?;
        let end = body
            .find('"')
            .ok_or_else(|| format!("lint.toml:{ln}: unterminated string"))?;
        out.push(body[..end].to_owned());
        rest = &body[end + 1..];
    }
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_sections() {
        let cfg = parse(
            r#"
# registry
[decode]
paths = [
    "crates/a/src/x.rs",  # file
    "crates/a/src/sub",
]

[wire]
paths = ["crates/b/src/w.rs"]
"#,
        )
        .expect("parse");
        assert_eq!(cfg.decode, vec!["crates/a/src/x.rs", "crates/a/src/sub"]);
        assert_eq!(cfg.wire, vec!["crates/b/src/w.rs"]);
    }

    #[test]
    fn single_line_array() {
        let cfg = parse("[decode]\npaths = [\"a.rs\", \"b.rs\"]\n").expect("parse");
        assert_eq!(cfg.decode, vec!["a.rs", "b.rs"]);
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(parse("[decoder]\npaths = []\n").is_err());
    }

    #[test]
    fn numerics_and_concurrency_sections_parse() {
        let cfg = parse(
            "[numerics]\npaths = [\"crates/n/src\"]\n\
             [concurrency]\npaths = [\"crates/c/src/pool.rs\"]\n",
        )
        .expect("parse");
        assert!(cfg.kind_of("crates/n/src/error.rs").numerics);
        assert!(!cfg.kind_of("crates/n/src/error.rs").concurrency);
        assert!(cfg.kind_of("crates/c/src/pool.rs").concurrency);
    }

    #[test]
    fn taint_and_lockorder_sections_parse_with_roots() {
        let cfg = parse(
            "[taint]\npaths = [\"crates/s/src\"]\n\
             [lockorder]\npaths = [\"crates/s/src/server.rs\"]\n\
             roots = [\"crates/s/src/server.rs::run\"]\n",
        )
        .expect("parse");
        assert!(cfg.kind_of("crates/s/src/server.rs").taint);
        assert!(cfg.kind_of("crates/s/src/server.rs").lockorder);
        assert!(!cfg.kind_of("crates/s/src/other.rs").lockorder);
        assert_eq!(cfg.lockorder_roots, vec!["crates/s/src/server.rs::run"]);
    }

    #[test]
    fn roots_outside_lockorder_is_an_error() {
        assert!(parse("[decode]\nroots = [\"a.rs::f\"]\n").is_err());
    }

    #[test]
    fn unterminated_array_is_an_error() {
        assert!(parse("[decode]\npaths = [\n\"a.rs\",\n").is_err());
    }

    #[test]
    fn stray_syntax_is_an_error() {
        assert!(parse("[decode]\nfiles = [\"a.rs\"]\n").is_err());
    }

    #[test]
    fn kind_of_matches_files_and_directories() {
        let cfg = Config {
            decode: vec!["crates/a/src/sub".into(), "crates/a/src/x.rs".into()],
            wire: vec!["crates/a/src/x.rs".into()],
            ..Config::default()
        };
        assert!(cfg.kind_of("crates/a/src/sub/inner.rs").decode);
        assert!(cfg.kind_of("crates/a/src/x.rs").decode);
        assert!(cfg.kind_of("crates/a/src/x.rs").wire);
        // Prefix must be a whole path component: `subtle.rs` is not in
        // the `sub` directory.
        assert!(!cfg.kind_of("crates/a/src/subtle.rs").decode);
        assert!(!cfg.kind_of("crates/a/src/other.rs").decode);
        assert!(!cfg.kind_of("crates/a/src/sub/inner.rs").wire);
    }
}
