//! Plain-text findings table for terminals and CI logs.

use crate::rules::Finding;

/// Renders the findings as an aligned three-column table
/// (rule, file:line, snippet) followed by a one-line-per-rule legend.
/// Returns an empty string when there is nothing to report.
pub fn render_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return String::new();
    }
    let rows: Vec<(String, String, String)> = findings
        .iter()
        .map(|f| {
            (
                f.rule.to_owned(),
                format!("{}:{}", f.file, f.line),
                f.snippet.clone(),
            )
        })
        .collect();
    let w0 = column_width("rule", rows.iter().map(|r| r.0.as_str()));
    let w1 = column_width("location", rows.iter().map(|r| r.1.as_str()));

    let mut out = String::new();
    out.push_str(&format!("{:w0$}  {:w1$}  snippet\n", "rule", "location"));
    out.push_str(&format!(
        "{}  {}  {}\n",
        "-".repeat(w0),
        "-".repeat(w1),
        "-".repeat(7)
    ));
    for (rule, loc, snippet) in &rows {
        out.push_str(&format!("{rule:w0$}  {loc:w1$}  {snippet}\n"));
    }

    out.push('\n');
    let mut seen: Vec<&str> = Vec::new();
    for f in findings {
        if !seen.contains(&f.rule) {
            seen.push(f.rule);
            out.push_str(&format!("{}: {}\n", f.rule, f.message));
        }
    }
    out
}

fn column_width<'a>(header: &str, cells: impl Iterator<Item = &'a str>) -> usize {
    cells
        .map(|c| c.chars().count())
        .chain(std::iter::once(header.chars().count()))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_findings_render_nothing() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn table_lists_every_finding_and_each_rule_once() {
        let f = |rule, line| Finding {
            rule,
            file: "a.rs".to_owned(),
            line,
            snippet: "x".to_owned(),
            message: format!("about {rule}"),
        };
        let out = render_table(&[f("no-unwrap", 3), f("no-unwrap", 9), f("no-index", 4)]);
        assert_eq!(out.matches("a.rs:").count(), 3);
        assert_eq!(out.matches("about no-unwrap").count(), 1);
        assert_eq!(out.matches("about no-index").count(), 1);
        assert!(out.contains("rule"));
        assert!(out.contains("location"));
    }
}
