//! Plain-text findings table, per-pack counts, and the `--json` dump
//! for terminals and CI logs.

use crate::rules::Finding;

/// Rule-pack names in display order, with the rules each one owns.
/// Every entry of [`crate::rules::RULE_NAMES`] belongs to exactly one
/// pack (checked by a test below).
pub const PACKS: &[(&str, &[&str])] = &[
    (
        "decode",
        &["no-unwrap", "no-panic", "no-index", "range-add"],
    ),
    ("safety", &["unsafe-safety", "safety-todo"]),
    ("wire", &["wire-usize", "wire-hashmap"]),
    (
        "numerics",
        &[
            "float-total-cmp",
            "nan-guard",
            "float-cast-bounds",
            "div-abs",
        ],
    ),
    (
        "concurrency",
        &[
            "lock-across-call",
            "no-unscoped-spawn",
            "result-slot-discipline",
        ],
    ),
    ("taint", &["wire-alloc-unclamped"]),
    ("lockorder", &["lock-order-cycle", "blocking-in-event-loop"]),
    ("registry", &["unregistered-decode-path"]),
    ("allow", &["allow-no-reason", "allow-unknown"]),
];

/// One `pack: N` line per pack (zeros included), for the CI job
/// summary.
pub fn render_pack_counts(findings: &[Finding]) -> String {
    let mut out = String::from("findings by pack:\n");
    for (pack, rules) in PACKS {
        let n = findings.iter().filter(|f| rules.contains(&f.rule)).count();
        out.push_str(&format!("  {pack:12} {n}\n"));
    }
    out
}

/// The findings as a JSON array (hand-rolled: the workspace has no
/// serde). Stable field order, one object per line.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.snippet),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the findings as an aligned three-column table
/// (rule, file:line, snippet) followed by a one-line-per-rule legend.
/// Returns an empty string when there is nothing to report.
pub fn render_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return String::new();
    }
    let rows: Vec<(String, String, String)> = findings
        .iter()
        .map(|f| {
            (
                f.rule.to_owned(),
                format!("{}:{}", f.file, f.line),
                f.snippet.clone(),
            )
        })
        .collect();
    let w0 = column_width("rule", rows.iter().map(|r| r.0.as_str()));
    let w1 = column_width("location", rows.iter().map(|r| r.1.as_str()));

    let mut out = String::new();
    out.push_str(&format!("{:w0$}  {:w1$}  snippet\n", "rule", "location"));
    out.push_str(&format!(
        "{}  {}  {}\n",
        "-".repeat(w0),
        "-".repeat(w1),
        "-".repeat(7)
    ));
    for (rule, loc, snippet) in &rows {
        out.push_str(&format!("{rule:w0$}  {loc:w1$}  {snippet}\n"));
    }

    out.push('\n');
    let mut seen: Vec<&str> = Vec::new();
    for f in findings {
        if !seen.contains(&f.rule) {
            seen.push(f.rule);
            out.push_str(&format!("{}: {}\n", f.rule, f.message));
        }
    }
    out
}

fn column_width<'a>(header: &str, cells: impl Iterator<Item = &'a str>) -> usize {
    cells
        .map(|c| c.chars().count())
        .chain(std::iter::once(header.chars().count()))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_findings_render_nothing() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn packs_partition_the_rule_set() {
        let mut covered: Vec<&str> = Vec::new();
        for (_, rules) in PACKS {
            for r in *rules {
                assert!(!covered.contains(r), "{r} is in two packs");
                covered.push(r);
            }
        }
        for r in crate::rules::RULE_NAMES {
            assert!(covered.contains(r), "{r} belongs to no pack");
        }
        assert_eq!(covered.len(), crate::rules::RULE_NAMES.len());
    }

    #[test]
    fn pack_counts_include_zeros() {
        let f = Finding {
            rule: "wire-alloc-unclamped",
            file: "a.rs".to_owned(),
            line: 3,
            snippet: "x".to_owned(),
            message: "m".to_owned(),
        };
        let out = render_pack_counts(&[f]);
        assert!(out.contains("taint"));
        assert!(out.contains("lockorder"));
        assert!(out
            .lines()
            .any(|l| l.trim_start().starts_with("taint") && l.trim_end().ends_with('1')));
        assert!(out
            .lines()
            .any(|l| l.trim_start().starts_with("decode") && l.trim_end().ends_with('0')));
    }

    #[test]
    fn json_escapes_and_round_trips_shape() {
        let f = Finding {
            rule: "no-unwrap",
            file: "a.rs".to_owned(),
            line: 3,
            snippet: "let s = \"q\\\"uote\";".to_owned(),
            message: "m".to_owned(),
        };
        let out = render_json(&[f]);
        assert!(out.starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        assert!(out.contains("\\\"q\\\\\\\"uote\\\""));
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn table_lists_every_finding_and_each_rule_once() {
        let f = |rule, line| Finding {
            rule,
            file: "a.rs".to_owned(),
            line,
            snippet: "x".to_owned(),
            message: format!("about {rule}"),
        };
        let out = render_table(&[f("no-unwrap", 3), f("no-unwrap", 9), f("no-index", 4)]);
        assert_eq!(out.matches("a.rs:").count(), 3);
        assert_eq!(out.matches("about no-unwrap").count(), 1);
        assert_eq!(out.matches("about no-index").count(), 1);
        assert!(out.contains("rule"));
        assert!(out.contains("location"));
    }
}
