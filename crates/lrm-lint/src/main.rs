//! CLI for `lrm-lint`. See the library docs for the rule set.
//!
//! ```text
//! cargo run -p lrm-lint                      # lint the repository
//! cargo run -p lrm-lint -- --all             # same (the default scope)
//! cargo run -p lrm-lint -- --root <dir>      # lint another tree
//! cargo run -p lrm-lint -- --baseline lint-baseline.txt
//! cargo run -p lrm-lint -- --write-baseline lint-baseline.txt
//! cargo run -p lrm-lint -- --fix-safety-stubs
//! cargo run -p lrm-lint -- --dump-callgraph  # debug the resolver
//! cargo run -p lrm-lint -- --timings         # per-phase wall clock
//! cargo run -p lrm-lint -- --json findings.json
//! ```
//!
//! Exit status: 0 when the tree is clean, 1 on findings, 2 on usage or
//! I/O errors (missing `lint.toml`, unreadable files).

use lrm_lint::callgraph::CallGraph;
use lrm_lint::rules::Finding;
use lrm_lint::workspace::{analyze, AnalyzeOptions, SourceFile, Workspace};
use lrm_lint::{baseline, config, report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const SAFETY_STUB: &str = "// SAFETY: TODO(lint): document why this unsafe block is sound.";

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut fix_stubs = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut dump_callgraph = false;
    let mut timings_flag = false;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a directory argument"),
            },
            // The full registry is the default scope; the flag exists
            // so CI invocations state their intent explicitly.
            "--all" => {}
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a file argument"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage_error("--write-baseline needs a file argument"),
            },
            "--fix-safety-stubs" => fix_stubs = true,
            "--dump-callgraph" => dump_callgraph = true,
            "--timings" => timings_flag = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a file argument"),
            },
            "--help" | "-h" => {
                println!(
                    "lrm-lint: decode-path, numerics, concurrency & interprocedural\n\
                     static analysis\n\n\
                     USAGE: lrm-lint [--all] [--root <dir>] [--baseline <file>]\n\
                            [--write-baseline <file>] [--fix-safety-stubs]\n\
                            [--dump-callgraph] [--timings] [--json <file>]\n\n\
                     Reads lint.toml at the repository root; see DESIGN.md\n\
                     (\"Decode-path contract\", \"Numerics & concurrency lint\n\
                     rules\", \"Interprocedural lint\") for the rules.\n\
                     --baseline fails only on findings beyond the recorded\n\
                     per-(rule, file) counts; --write-baseline records the\n\
                     current findings and exits 0. --dump-callgraph prints the\n\
                     resolved workspace call graph and exits. --timings prints\n\
                     per-phase wall clock; --json writes the post-baseline\n\
                     findings as a JSON array."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let Some(root) = root_arg.or_else(find_root) else {
        return usage_error("no lint.toml found above the current directory");
    };

    let registry = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => text,
        Err(e) => return io_error(&format!("reading {}/lint.toml: {e}", root.display())),
    };
    let cfg = match config::parse(&registry) {
        Ok(cfg) => cfg,
        Err(e) => return io_error(&e),
    };

    let files = collect_rust_files(&root);
    let opts = AnalyzeOptions {
        roots: cfg.lockorder_roots.clone(),
    };

    // Each file is read, masked, and tokenized exactly once per run;
    // every pack shares the workspace views.
    let load_start = Instant::now();
    let ws = match load_workspace(&root, &files, &cfg) {
        Ok(ws) => ws,
        Err(e) => return io_error(&e),
    };
    let load_time = load_start.elapsed();
    let scanned = ws.files.len();

    if dump_callgraph {
        print!("{}", CallGraph::build(&ws).dump(&ws));
        return ExitCode::SUCCESS;
    }

    let (mut findings, mut timings) = analyze(&ws, &opts);
    timings.phases.insert(0, ("load", load_time));

    if fix_stubs {
        let stubbed = insert_safety_stubs(&root, &findings);
        if stubbed > 0 {
            println!("inserted {stubbed} SAFETY stub(s); re-linting\n");
            // Re-lint so the report reflects the tree on disk: the
            // stubbed sites downgrade to `safety-todo`, which still
            // fails the gate until a human writes the justification.
            let ws = match load_workspace(&root, &files, &cfg) {
                Ok(ws) => ws,
                Err(e) => return io_error(&e),
            };
            findings = analyze(&ws, &opts).0;
        }
    }

    if let Some(path) = write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(&path, text) {
            return io_error(&format!("writing {}: {e}", path.display()));
        }
        println!(
            "lrm-lint: wrote baseline for {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut suppressed = 0usize;
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => return io_error(&format!("reading baseline {}: {e}", path.display())),
        };
        let base = match baseline::Baseline::parse(&text) {
            Ok(base) => base,
            Err(e) => return io_error(&e),
        };
        let ratchet = base.apply(findings);
        findings = ratchet.new;
        suppressed = ratchet.suppressed;
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report::render_json(&findings)) {
            return io_error(&format!("writing {}: {e}", path.display()));
        }
    }

    print!("{}", report::render_table(&findings));
    print!("{}", report::render_pack_counts(&findings));
    if timings_flag {
        print!("{}", timings.render());
    }
    let note = if suppressed > 0 {
        format!(" ({suppressed} baseline finding(s) suppressed)")
    } else {
        String::new()
    };
    if findings.is_empty() {
        println!("lrm-lint: clean ({scanned} files scanned){note}");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nlrm-lint: {} finding(s) in {scanned} files{note}",
            findings.len()
        );
        ExitCode::from(1)
    }
}

/// Reads every collected file into a [`Workspace`].
fn load_workspace(
    root: &Path,
    files: &[PathBuf],
    cfg: &config::Config,
) -> Result<Workspace, String> {
    let mut ws = Workspace::default();
    for path in files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let kind = cfg.kind_of(&rel);
        ws.files.push(SourceFile::new(rel, src, kind));
    }
    Ok(ws)
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lrm-lint: {msg} (try --help)");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("lrm-lint: {msg}");
    ExitCode::from(2)
}

/// Walks up from the current directory (then from this crate's
/// manifest, for `cargo run` from a subdirectory) looking for the
/// directory that holds `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let starts = [
        std::env::current_dir().ok(),
        std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from),
    ];
    for start in starts.into_iter().flatten() {
        let mut dir = start.as_path();
        loop {
            if dir.join("lint.toml").is_file() {
                return Some(dir.to_path_buf());
            }
            match dir.parent() {
                Some(parent) => dir = parent,
                None => break,
            }
        }
    }
    None
}

/// Every `.rs` file under `root`, skipping VCS metadata and build
/// output. Sorted so runs are deterministic.
fn collect_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                // `tests/fixtures/` holds the linter's known-bad
                // snippet corpus: deliberately failing code that only
                // the fixture harness should read.
                let is_fixture_corpus =
                    name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests");
                if name != "target" && !name.starts_with('.') && !is_fixture_corpus {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Repo-root-relative path with `/` separators, as used in `lint.toml`.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Inserts a `// SAFETY: TODO` stub above every `unsafe-safety`
/// finding so the author has a template to fill in. Returns the number
/// of stubs written.
fn insert_safety_stubs(root: &Path, findings: &[Finding]) -> usize {
    use std::collections::HashMap;
    let mut by_file: HashMap<&str, Vec<usize>> = HashMap::new();
    for f in findings {
        if f.rule == "unsafe-safety" {
            by_file.entry(&f.file).or_default().push(f.line);
        }
    }
    let mut inserted = 0usize;
    let mut files: Vec<_> = by_file.into_iter().collect();
    files.sort();
    for (rel, mut lines) in files {
        let path = root.join(rel);
        let Ok(src) = std::fs::read_to_string(&path) else {
            eprintln!("lrm-lint: cannot re-read {rel} to insert stubs");
            continue;
        };
        let mut text: Vec<String> = src.split('\n').map(str::to_owned).collect();
        lines.sort_unstable();
        lines.dedup();
        // Bottom-up so earlier insertions don't shift later targets.
        for &ln in lines.iter().rev() {
            if ln == 0 || ln > text.len() {
                continue;
            }
            let indent: String = text[ln - 1]
                .chars()
                .take_while(|c| c.is_whitespace())
                .collect();
            text.insert(ln - 1, format!("{indent}{SAFETY_STUB}"));
            inserted += 1;
        }
        if std::fs::write(&path, text.join("\n")).is_err() {
            eprintln!("lrm-lint: cannot write stubs into {rel}");
        }
    }
    inserted
}
