//! `lrm-lint` — static analysis for the decode-path contract.
//!
//! Lossy-compression artifacts are read back on machines and at times
//! their writer never sees, so every decode path in this workspace must
//! treat its input as hostile: corrupt or truncated bytes map to
//! [`DecodeError`](https://docs.rs/--/lrm-compress), never to a panic,
//! an abort, or an over-allocation. The compiler cannot check that
//! contract; this crate does, with a deliberately small lexical
//! analyzer instead of a full Rust parser (the workspace has no
//! external dependencies, so `syn` is not an option — and none of the
//! rules need one).
//!
//! * [`mask`] strips comments and string literals while preserving
//!   line structure, so token scans cannot be fooled by text.
//! * [`tokens`] builds the nesting-aware [`tokens::SourceMap`] —
//!   function scopes, signatures, callback parameters, test regions —
//!   that the rule packs share.
//! * [`config`] reads `lint.toml`, the registry of decode-reachable,
//!   wire-format, numerics, and concurrency modules at the repository
//!   root.
//! * [`rules`] applies the decode/wire rule set and dispatches the
//!   [`numerics`] and [`concurrency`] packs.
//! * [`baseline`] implements the `--baseline` ratchet (fail only on
//!   findings not present in a committed baseline).
//! * [`report`] renders the findings table.
//!
//! Run it as `cargo run -p lrm-lint`; CI treats a non-zero exit as a
//! build failure. Suppress a single proven-safe site with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory.

pub mod baseline;
pub mod concurrency;
pub mod config;
pub mod mask;
pub mod numerics;
pub mod report;
pub mod rules;
pub mod tokens;

pub use config::Config;
pub use rules::{lint_source, FileKind, Finding};
