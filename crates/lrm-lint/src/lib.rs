//! `lrm-lint` — static analysis for the decode-path contract.
//!
//! Lossy-compression artifacts are read back on machines and at times
//! their writer never sees, so every decode path in this workspace must
//! treat its input as hostile: corrupt or truncated bytes map to
//! [`DecodeError`](https://docs.rs/--/lrm-compress), never to a panic,
//! an abort, or an over-allocation. The compiler cannot check that
//! contract; this crate does, with a deliberately small lexical
//! analyzer instead of a full Rust parser (the workspace has no
//! external dependencies, so `syn` is not an option — and none of the
//! rules need one).
//!
//! * [`mask`] strips comments and string literals while preserving
//!   line structure, so token scans cannot be fooled by text.
//! * [`tokens`] builds the nesting-aware [`tokens::SourceMap`] —
//!   function scopes, signatures, callback parameters, test regions —
//!   that the rule packs share.
//! * [`config`] reads `lint.toml`, the registry of decode-reachable,
//!   wire-format, numerics, concurrency, taint, and lock-order modules
//!   at the repository root.
//! * [`workspace`] loads every registered file once and drives the
//!   phase pipeline shared by all packs.
//! * [`rules`] applies the decode/wire rule set; [`numerics`] and
//!   [`concurrency`] are the per-file packs.
//! * [`callgraph`] builds the workspace call graph (and the
//!   `unregistered-decode-path` registry-drift check); [`taint`] runs
//!   wire-taint dataflow over it (`wire-alloc-unclamped`); [`lockorder`]
//!   checks lock ordering and event-loop blocking (`lock-order-cycle`,
//!   `blocking-in-event-loop`).
//! * [`baseline`] implements the `--baseline` ratchet (fail only on
//!   findings not present in a committed baseline).
//! * [`report`] renders the findings table, per-pack counts, and the
//!   `--json` findings dump.
//!
//! Run it as `cargo run -p lrm-lint`; CI treats a non-zero exit as a
//! build failure. Suppress a single proven-safe site with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory.

pub mod baseline;
pub mod callgraph;
pub mod concurrency;
pub mod config;
pub mod lockorder;
pub mod mask;
pub mod numerics;
pub mod report;
pub mod rules;
pub mod taint;
pub mod tokens;
pub mod workspace;

pub use config::Config;
pub use rules::{lint_source, FileKind, Finding};
