//! `lrm-lint` — static analysis for the decode-path contract.
//!
//! Lossy-compression artifacts are read back on machines and at times
//! their writer never sees, so every decode path in this workspace must
//! treat its input as hostile: corrupt or truncated bytes map to
//! [`DecodeError`](https://docs.rs/--/lrm-compress), never to a panic,
//! an abort, or an over-allocation. The compiler cannot check that
//! contract; this crate does, with a deliberately small lexical
//! analyzer instead of a full Rust parser (the workspace has no
//! external dependencies, so `syn` is not an option — and none of the
//! rules need one).
//!
//! * [`mask`] strips comments and string literals while preserving
//!   line structure, so token scans cannot be fooled by text.
//! * [`config`] reads `lint.toml`, the registry of decode-reachable
//!   and wire-format modules at the repository root.
//! * [`rules`] applies the rule set (see its docs for the list).
//! * [`report`] renders the findings table.
//!
//! Run it as `cargo run -p lrm-lint`; CI treats a non-zero exit as a
//! build failure. Suppress a single proven-safe site with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory.

pub mod config;
pub mod mask;
pub mod report;
pub mod rules;

pub use config::Config;
pub use rules::{lint_source, FileKind, Finding};
