//! The `--baseline` ratchet: land a new rule without fixing the world
//! first, while guaranteeing the count only goes down.
//!
//! A baseline file records, per `(rule, file)` pair, how many findings
//! were present when the rule landed. Under `--baseline <file>` the
//! gate fails only for pairs whose *current* count exceeds the recorded
//! one — new findings — while grandfathered sites merely print a
//! suppressed-count note. Re-running `--write-baseline` after fixes
//! shrinks the recorded counts, so the gate ratchets monotonically
//! toward zero.
//!
//! Format: one `rule<SP>count<SP>file` triple per line, `#` comments
//! and blank lines ignored. Written sorted so diffs are stable.

use crate::rules::Finding;
use std::collections::HashMap;

/// Recorded finding counts, keyed by `(rule, file)`.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: HashMap<(String, String), usize>,
}

/// The result of applying a baseline to a findings list.
pub struct Ratchet {
    /// Findings in `(rule, file)` groups that exceed their recorded
    /// count — the gate fails on these.
    pub new: Vec<Finding>,
    /// Number of findings absorbed by the baseline.
    pub suppressed: usize,
}

impl Baseline {
    /// Parses a baseline file. Malformed lines are hard errors: a typo
    /// must not silently widen the gate.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let ln = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(count), Some(file), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("baseline:{ln}: expected `rule count file`"));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline:{ln}: `{count}` is not a count"))?;
            if counts
                .insert((rule.to_owned(), file.to_owned()), count)
                .is_some()
            {
                return Err(format!("baseline:{ln}: duplicate entry for {rule} {file}"));
            }
        }
        Ok(Baseline { counts })
    }

    /// Splits `findings` into new (over-baseline) and suppressed.
    ///
    /// When a group exceeds its recorded count, *all* of the group's
    /// findings are reported: line numbers shift under edits, so there
    /// is no stable way to say which of them are the new ones.
    pub fn apply(&self, findings: Vec<Finding>) -> Ratchet {
        let mut current: HashMap<(String, String), usize> = HashMap::new();
        for f in &findings {
            *current
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_default() += 1;
        }
        let mut new = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let key = (f.rule.to_owned(), f.file.clone());
            let seen = current.get(&key).copied().unwrap_or(0);
            let allowed = self.counts.get(&key).copied().unwrap_or(0);
            if seen > allowed {
                new.push(f);
            } else {
                suppressed += 1;
            }
        }
        Ratchet { new, suppressed }
    }
}

/// Renders `findings` as baseline text (sorted, deduplicated counts).
pub fn render(findings: &[Finding]) -> String {
    let mut counts: HashMap<(&str, &str), usize> = HashMap::new();
    for f in findings {
        *counts.entry((f.rule, f.file.as_str())).or_default() += 1;
    }
    let mut entries: Vec<_> = counts.into_iter().collect();
    entries.sort();
    let mut out = String::from("# lrm-lint baseline: rule count file\n");
    for ((rule, file), count) in entries {
        out.push_str(&format!("{rule} {count} {file}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            snippet: String::new(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_through_render_and_parse() {
        let fs = vec![
            finding("no-unwrap", "a.rs", 3),
            finding("no-unwrap", "a.rs", 9),
            finding("div-abs", "b.rs", 1),
        ];
        let text = render(&fs);
        let base = Baseline::parse(&text).expect("parse");
        let r = base.apply(fs);
        assert!(r.new.is_empty());
        assert_eq!(r.suppressed, 3);
    }

    #[test]
    fn extra_finding_in_known_group_fails_the_gate() {
        let base = Baseline::parse("no-unwrap 1 a.rs\n").expect("parse");
        let r = base.apply(vec![
            finding("no-unwrap", "a.rs", 3),
            finding("no-unwrap", "a.rs", 9),
        ]);
        assert_eq!(r.new.len(), 2); // whole group reported
        assert_eq!(r.suppressed, 0);
    }

    #[test]
    fn unknown_group_is_entirely_new() {
        let base = Baseline::parse("# empty\n").expect("parse");
        let r = base.apply(vec![finding("div-abs", "b.rs", 1)]);
        assert_eq!(r.new.len(), 1);
    }

    #[test]
    fn fixed_findings_just_shrink() {
        let base = Baseline::parse("no-unwrap 5 a.rs\n").expect("parse");
        let r = base.apply(vec![finding("no-unwrap", "a.rs", 3)]);
        assert!(r.new.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("no-unwrap a.rs\n").is_err());
        assert!(Baseline::parse("no-unwrap x a.rs\n").is_err());
        assert!(Baseline::parse("no-unwrap 1 a.rs extra\n").is_err());
        assert!(Baseline::parse("no-unwrap 1 a.rs\nno-unwrap 2 a.rs\n").is_err());
    }
}
