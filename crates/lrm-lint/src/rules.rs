//! The decode-path rules and the engine that applies them.
//!
//! Scope model, mirroring DESIGN.md's decode-path contract:
//!
//! * **Registered decode files** (from `lint.toml [decode]`) must be
//!   panic-free outside `#[cfg(test)]` code: `no-unwrap` applies to the
//!   whole file, while `no-panic`, `no-index` and `range-add` apply
//!   inside *decode-named* functions (`decompress*`, `*decode*`,
//!   `*from_bytes*`, `*reconstruct*`, `*parse*`, `read_*`), where every
//!   byte is untrusted input.
//! * **Registered wire files** (`lint.toml [wire]`) must not write
//!   platform-width integers (`wire-usize`) or iterate unordered maps
//!   (`wire-hashmap`) in non-test code.
//! * **Every file** must precede `unsafe` with a `// SAFETY:` comment
//!   (`unsafe-safety`); a `SAFETY: TODO` stub — as inserted by
//!   `--fix-safety-stubs` — still fails the gate (`safety-todo`).
//! * **Registered numerics files** (`lint.toml [numerics]`) get the
//!   float-safety pack (see [`crate::numerics`]): `float-total-cmp`,
//!   `nan-guard`, `float-cast-bounds`, `div-abs`.
//! * **Registered concurrency files** (`lint.toml [concurrency]`) get
//!   the lock/thread pack (see [`crate::concurrency`]):
//!   `lock-across-call`, `no-unscoped-spawn`,
//!   `result-slot-discipline`.
//!
//! Suppression is per-site only: `// lint:allow(<rule>): <reason>`
//! silences `<rule>` on its own line and the next line. An allow
//! without a reason (`allow-no-reason`) or naming an unknown rule
//! (`allow-unknown`) is itself a finding and cannot be suppressed.

use crate::mask::Masked;
use crate::tokens::{self, has_word};
use std::collections::{HashMap, HashSet};

/// Every rule the engine can emit, for `lint:allow` validation.
pub const RULE_NAMES: &[&str] = &[
    "no-unwrap",
    "no-panic",
    "no-index",
    "range-add",
    "unsafe-safety",
    "safety-todo",
    "wire-usize",
    "wire-hashmap",
    "float-total-cmp",
    "nan-guard",
    "float-cast-bounds",
    "div-abs",
    "lock-across-call",
    "no-unscoped-spawn",
    "result-slot-discipline",
    "wire-alloc-unclamped",
    "lock-order-cycle",
    "blocking-in-event-loop",
    "unregistered-decode-path",
    "allow-no-reason",
    "allow-unknown",
];

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileKind {
    /// Registered in `lint.toml [decode]`.
    pub decode: bool,
    /// Registered in `lint.toml [wire]`.
    pub wire: bool,
    /// Registered in `lint.toml [numerics]`.
    pub numerics: bool,
    /// Registered in `lint.toml [concurrency]`.
    pub concurrency: bool,
    /// Registered in `lint.toml [taint]` (see [`crate::taint`]).
    pub taint: bool,
    /// Registered in `lint.toml [lockorder]` (see [`crate::lockorder`]).
    pub lockorder: bool,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    /// 1-indexed.
    pub line: usize,
    /// The offending source line, trimmed and truncated.
    pub snippet: String,
    pub message: String,
}

/// Lints one file's source text. `file` is used only for reporting.
///
/// This is the single-file entry point (used by the fixture harness and
/// unit tests): it builds a one-file [`crate::workspace::Workspace`] so
/// the interprocedural packs run with the same semantics as a full
/// repository scan. Lock-order roots default to any fn named
/// `event_loop`, the fixture convention.
pub fn lint_source(file: &str, src: &str, kind: FileKind) -> Vec<Finding> {
    crate::workspace::lint_single(file, src, kind)
}

/// The per-line decode / wire / unsafe pass over one masked file.
/// Allow-filtering and sorting happen in the workspace driver.
pub(crate) fn base_pass(
    file: &str,
    masked: &Masked,
    originals: &[&str],
    map: &tokens::SourceMap,
    kind: FileKind,
    findings: &mut Vec<Finding>,
) {
    for (idx, line) in masked.lines.iter().enumerate() {
        let ln = idx + 1;
        let in_test = map.is_test_line(ln);
        let in_decode = map.decode_lines.contains(&ln);
        let snippet = || snippet_of(originals, ln);
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                file: file.to_owned(),
                line: ln,
                snippet: snippet(),
                message,
            });
        };

        if kind.decode && !in_test {
            if line.contains(".unwrap()") || line.contains(".expect(") {
                push(
                    "no-unwrap",
                    "decode-reachable module: return DecodeError instead of unwrapping".into(),
                );
            }
            if in_decode {
                for mac in [
                    "panic!",
                    "unreachable!",
                    "todo!",
                    "unimplemented!",
                    "assert!",
                    "assert_eq!",
                    "assert_ne!",
                ] {
                    if has_macro(line, mac) {
                        push(
                            "no-panic",
                            format!("`{mac}` in a decode function: corrupt input must map to Err"),
                        );
                        break;
                    }
                }
                if has_direct_index(line) {
                    push(
                        "no-index",
                        "direct indexing in a decode function: use .get()/.get_mut()".into(),
                    );
                }
                if has_range_arith(line) {
                    push(
                        "range-add",
                        "unchecked arithmetic in a range bound: use checked_/saturating_ ops"
                            .into(),
                    );
                }
            }
        }

        if kind.wire && !in_test {
            for pat in [
                ".len().to_le_bytes(",
                ".len().to_be_bytes(",
                "usize).to_le_bytes(",
                "usize).to_be_bytes(",
            ] {
                if line.contains(pat) {
                    push(
                        "wire-usize",
                        "platform-width integer written to the wire: cast to u32/u64 first".into(),
                    );
                    break;
                }
            }
            if has_word(line, "HashMap") || has_word(line, "HashSet") {
                push(
                    "wire-hashmap",
                    "unordered container in a wire module: iteration order is not canonical".into(),
                );
            }
        }

        if has_word(line, "unsafe") {
            match safety_comment_for(masked, ln) {
                Safety::Documented => {}
                Safety::Todo => push(
                    "safety-todo",
                    "SAFETY comment is still the TODO stub: write the real justification".into(),
                ),
                Safety::Missing => push(
                    "unsafe-safety",
                    "`unsafe` without a `// SAFETY:` comment on the preceding line".into(),
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-line token checks. (Scope classification lives in `tokens`.)
// ---------------------------------------------------------------------------

/// `mac` (e.g. `"assert!"`) as a macro invocation, rejecting matches
/// glued to an identifier (`debug_assert!` must not match `assert!`).
fn has_macro(line: &str, mac: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(mac) {
        let at = from + pos;
        let prev = line[..at].bytes().next_back();
        if !prev.is_some_and(|p| p.is_ascii_alphanumeric() || p == b'_') {
            return true;
        }
        from = at + mac.len();
    }
    false
}

/// `expr[...]` indexing: a `[` whose previous non-space token ends an
/// expression (identifier, `)`, or `]`). Attribute (`#[...]`) and
/// array-literal (`= [`, `vec![`) brackets don't match, and neither do
/// slice patterns or types, where the preceding word is a keyword
/// (`let [a, b] = ...`, `&mut [f64]`).
fn has_direct_index(line: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "let", "mut", "ref", "in", "if", "else", "match", "return", "move", "as", "box", "dyn",
        "break", "continue",
    ];
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        let Some(&p) = bytes[..j].last() else {
            continue;
        };
        if p == b')' || p == b']' {
            return true;
        }
        if p.is_ascii_alphanumeric() || p == b'_' {
            let mut s = j;
            while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                s -= 1;
            }
            if !KEYWORDS.contains(&&line[s..j]) {
                return true;
            }
        }
    }
    false
}

/// `+` or `*` inside a `..` range bound — `pos..pos + n` panics or
/// overflows before the slice check can reject it.
fn has_range_arith(line: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find("..") {
        let after = &line[from + pos + 2..];
        let bound_end = after
            .find([')', ']', '}', ',', ';', '{'])
            .unwrap_or(after.len());
        let bound = &after[..bound_end];
        if bound.contains('+') || bound.contains('*') {
            return true;
        }
        from += pos + 2;
    }
    false
}

enum Safety {
    Documented,
    Todo,
    Missing,
}

/// Looks for a `// SAFETY:` comment on the `unsafe` line or up to two
/// lines above it (one line of slack for an attribute in between).
fn safety_comment_for(masked: &Masked, ln: usize) -> Safety {
    let lo = ln.saturating_sub(2);
    let mut best = Safety::Missing;
    for &(cl, ref text) in &masked.comments {
        if cl >= lo && cl <= ln && text.contains("SAFETY:") {
            if text.contains("SAFETY: TODO") {
                best = Safety::Todo;
            } else {
                return Safety::Documented;
            }
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

pub(crate) type AllowMap = HashMap<&'static str, HashSet<usize>>;

/// Parses every `lint:allow(...)` comment. Returns the suppression map
/// (rule -> lines it silences: the comment's line and the next) plus
/// findings for malformed allows.
pub(crate) fn parse_allows(
    file: &str,
    masked: &Masked,
    originals: &[&str],
) -> (AllowMap, Vec<Finding>) {
    let mut allows: AllowMap = HashMap::new();
    let mut findings = Vec::new();
    for &(ln, ref text) in &masked.comments {
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else {
                break;
            };
            let rule = rest[..close].trim();
            rest = &rest[close + 1..];
            // Documentation *about* the syntax writes placeholders like
            // `lint:allow(<rule>)` or `lint:allow(...)`; anything that
            // is not a well-formed rule slug is not an allow attempt.
            if rule.is_empty()
                || !rule
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                continue;
            }
            let reason = rest
                .strip_prefix(':')
                .map(str::trim)
                .filter(|r| !r.is_empty());
            match RULE_NAMES.iter().find(|&&r| r == rule) {
                Some(&canonical) => {
                    if reason.is_none() {
                        findings.push(Finding {
                            rule: "allow-no-reason",
                            file: file.to_owned(),
                            line: ln,
                            snippet: snippet_of(originals, ln),
                            message: format!(
                                "lint:allow({rule}) without a reason: write `): <why it is safe>`"
                            ),
                        });
                    } else {
                        let lines = allows.entry(canonical).or_default();
                        lines.insert(ln);
                        lines.insert(ln + 1);
                    }
                }
                None => findings.push(Finding {
                    rule: "allow-unknown",
                    file: file.to_owned(),
                    line: ln,
                    snippet: snippet_of(originals, ln),
                    message: format!("lint:allow names unknown rule `{rule}`"),
                }),
            }
        }
    }
    (allows, findings)
}

/// Trimmed, length-capped copy of the original source line.
pub(crate) fn snippet_of(originals: &[&str], ln: usize) -> String {
    let line = originals.get(ln - 1).copied().unwrap_or("").trim();
    if line.chars().count() > 60 {
        let cut: String = line.chars().take(57).collect();
        format!("{cut}...")
    } else {
        line.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAIN: FileKind = FileKind {
        decode: false,
        wire: false,
        numerics: false,
        concurrency: false,
        taint: false,
        lockorder: false,
    };
    const DECODE: FileKind = FileKind {
        decode: true,
        ..PLAIN
    };
    const WIRE: FileKind = FileKind {
        wire: true,
        ..PLAIN
    };

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn planted_unwrap_in_decode_file_is_found() {
        let src = "pub fn helper(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let f = lint_source("a.rs", src, DECODE);
        assert_eq!(rules_of(&f), ["no-unwrap"]);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].snippet, "x.unwrap()");
    }

    #[test]
    fn expect_counts_as_unwrap() {
        let src = "fn g(x: Option<u8>) -> u8 { x.expect(\"boom\") }\n";
        assert_eq!(rules_of(&lint_source("a.rs", src, DECODE)), ["no-unwrap"]);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn unwrap_in_non_decode_file_is_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("a.rs", src, PLAIN).is_empty());
    }

    #[test]
    fn panic_macros_only_inside_decode_fns() {
        let src = "\
fn compress(x: u8) {
    assert!(x > 0);
}
fn decompress(b: &[u8]) {
    assert!(!b.is_empty());
}
";
        let f = lint_source("a.rs", src, DECODE);
        assert_eq!(rules_of(&f), ["no-panic"]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn debug_assert_is_allowed() {
        let src = "fn decode(b: &[u8]) { debug_assert!(b.len() > 1); }\n";
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn direct_index_in_decode_fn() {
        let src = "\
fn from_bytes(b: &[u8]) -> u8 {
    b[0]
}
fn encode(v: &mut [u8]) {
    v[0] = 1;
}
";
        let f = lint_source("a.rs", src, DECODE);
        assert_eq!(rules_of(&f), ["no-index"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn array_literal_and_attribute_brackets_are_fine() {
        let src = "\
#[derive(Debug)]
struct S;
fn parse(b: &[u8]) -> [u8; 2] {
    let t = [0u8, 1];
    let v = vec![1, 2];
    drop(v);
    t
}
";
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn range_add_in_decode_fn() {
        let src = "fn read_hdr(b: &[u8], pos: usize) { let _ = b.get(pos..pos + 4); }\n";
        assert_eq!(rules_of(&lint_source("a.rs", src, DECODE)), ["range-add"]);
    }

    #[test]
    fn saturating_range_is_fine() {
        let src =
            "fn read_hdr(b: &[u8], pos: usize) { let _ = b.get(pos..pos.saturating_add(4)); }\n";
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "\
fn decode(b: &[u8]) -> u8 {
    // lint:allow(no-index): len checked by caller
    b[0]
}
";
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn allow_does_not_reach_two_lines_down() {
        let src = "\
fn decode(b: &[u8]) -> u8 {
    // lint:allow(no-index): only covers the next line
    let x = b[0];
    x + b[1]
}
";
        let f = lint_source("a.rs", src, DECODE);
        assert_eq!(rules_of(&f), ["no-index"]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "\
fn decode(b: &[u8]) -> u8 {
    // lint:allow(no-index)
    b[0]
}
";
        let f = lint_source("a.rs", src, DECODE);
        let rules = rules_of(&f);
        assert!(rules.contains(&"allow-no-reason"));
        // ...and it did not suppress anything.
        assert!(rules.contains(&"no-index"));
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let src = "fn f() {} // lint:allow(no-bugs): please\n";
        assert_eq!(
            rules_of(&lint_source("a.rs", src, PLAIN)),
            ["allow-unknown"]
        );
    }

    #[test]
    fn allow_placeholders_in_docs_are_ignored() {
        let src = "//! Suppress with `lint:allow(<rule>): <reason>`.\n\
                   // see lint:allow(...) above\nfn f() {}\n";
        assert!(lint_source("a.rs", src, PLAIN).is_empty());
    }

    #[test]
    fn slice_patterns_and_types_are_not_indexing() {
        let src = "\
fn decode(b: &[u8], dims: [usize; 3]) -> usize {
    let [nx, ny, nz] = dims;
    if let [a, ..] = b {
        return *a as usize + nx + ny + nz;
    }
    0
}
fn read_into(out: &mut [f64]) {
    out.fill(0.0);
}
";
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn allow_only_silences_its_own_rule() {
        let src = "\
fn decode(b: &[u8]) -> u8 {
    // lint:allow(no-panic): wrong rule named
    b[0]
}
";
        assert_eq!(rules_of(&lint_source("a.rs", src, DECODE)), ["no-index"]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let f = lint_source("a.rs", src, PLAIN);
        assert_eq!(rules_of(&f), ["unsafe-safety"]);
    }

    #[test]
    fn safety_comment_satisfies_the_rule() {
        let src = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
";
        assert!(lint_source("a.rs", src, PLAIN).is_empty());
    }

    #[test]
    fn safety_todo_stub_still_fails() {
        let src = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: TODO(lint): document why this unsafe block is sound.
    unsafe { *p }
}
";
        assert_eq!(rules_of(&lint_source("a.rs", src, PLAIN)), ["safety-todo"]);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "fn f() { let _ = \"unsafe\"; } // unsafe mentioned here\n";
        assert!(lint_source("a.rs", src, PLAIN).is_empty());
    }

    #[test]
    fn wire_usize_write_is_flagged() {
        let src = "\
fn to_bytes(v: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&v.len().to_le_bytes());
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
}
";
        let f = lint_source("w.rs", src, WIRE);
        assert_eq!(rules_of(&f), ["wire-usize"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn usize_cast_written_raw_is_flagged() {
        let src = "fn w(n: u64, o: &mut Vec<u8>) { o.extend(&(n as usize).to_le_bytes()); }\n";
        assert_eq!(rules_of(&lint_source("w.rs", src, WIRE)), ["wire-usize"]);
    }

    #[test]
    fn hashmap_in_wire_file_is_flagged() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint_source("w.rs", src, WIRE)), ["wire-hashmap"]);
    }

    #[test]
    fn trait_method_declaration_does_not_open_a_decode_region() {
        let src = "\
trait Codec {
    fn decompress(&self, b: &[u8]) -> Vec<u8>;
}
impl Codec for X {
    fn other(&self) {
        self.v[0];
    }
}
";
        // `other` is not decode-named, so the indexing is fine; the
        // trait declaration's `;` must not leak the decode region.
        assert!(lint_source("a.rs", src, DECODE).is_empty());
    }

    #[test]
    fn multi_line_signature_is_tracked() {
        let src = "\
fn decompress(
    b: &[u8],
    n: usize,
) -> u8 {
    b[n]
}
";
        assert_eq!(rules_of(&lint_source("a.rs", src, DECODE)), ["no-index"]);
    }

    #[test]
    fn long_snippets_are_truncated() {
        let pad = "x".repeat(80);
        let src = format!("fn decode(b: &[u8]) -> u8 {{ let {pad} = 1; b[0] }}\n");
        let f = lint_source("a.rs", &src, DECODE);
        assert_eq!(f.len(), 1);
        assert!(f[0].snippet.chars().count() <= 60);
        assert!(f[0].snippet.ends_with("..."));
    }
}
