//! The workspace view: every file parsed once, all packs share it.
//!
//! v2 linted one file at a time, masking and tokenizing inside each
//! pack's entry point. The interprocedural packs ([`crate::callgraph`],
//! [`crate::taint`], [`crate::lockorder`]) need to see every registered
//! file at once, so this module loads the whole tree into a
//! [`Workspace`] — each file masked and scope-mapped exactly once — and
//! runs the analysis as an explicit phase pipeline:
//!
//! 1. per-file passes (base decode/wire/unsafe, numerics, concurrency),
//! 2. the workspace call graph,
//! 3. wire-taint dataflow (`wire-alloc-unclamped`),
//! 4. lock order and event-loop blocking (`lock-order-cycle`,
//!    `blocking-in-event-loop`),
//! 5. registry drift (`unregistered-decode-path`),
//! 6. `lint:allow` filtering and a deterministic global sort.
//!
//! Allow-filtering runs *last* so interprocedural findings honor the
//! same per-site suppressions as the lexical rules. Each phase is timed
//! for the `--timings` flag.

use crate::mask::{mask, Masked};
use crate::rules::{self, FileKind, Finding};
use crate::tokens::{self, SourceMap};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One file of the workspace: source text plus the shared masked /
/// scope-mapped views every pack reads.
pub struct SourceFile {
    /// Repo-root-relative path with `/` separators (or a bare name for
    /// single-file runs).
    pub rel: String,
    /// The raw source text.
    pub src: String,
    /// Comment- and string-masked lines (see [`crate::mask`]).
    pub masked: Masked,
    /// Function scopes, test regions, decode regions.
    pub map: SourceMap,
    /// Which rule families `lint.toml` registers this file for.
    pub kind: FileKind,
}

impl SourceFile {
    /// Masks and tokenizes `src` once.
    pub fn new(rel: String, src: String, kind: FileKind) -> SourceFile {
        let masked = mask(&src);
        let map = tokens::build(&masked);
        SourceFile {
            rel,
            src,
            masked,
            map,
            kind,
        }
    }

    /// The unmasked source lines, for snippets.
    pub(crate) fn originals(&self) -> Vec<&str> {
        self.src.split('\n').collect()
    }
}

/// Every file the linter will look at, parsed once.
#[derive(Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

/// Knobs the CLI passes into [`analyze`].
#[derive(Default, Clone)]
pub struct AnalyzeOptions {
    /// Event-loop dispatch roots for `blocking-in-event-loop`
    /// (`path::fn` or a bare fn name).
    pub roots: Vec<String>,
}

/// Wall-clock per analysis phase, for `--timings`.
#[derive(Default)]
pub struct Timings {
    pub phases: Vec<(&'static str, Duration)>,
}

impl Timings {
    fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((name, start.elapsed()));
        out
    }

    /// Aligned `phase  time` table plus a total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .phases
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("total".len());
        let mut total = Duration::ZERO;
        for (name, d) in &self.phases {
            total += *d;
            out.push_str(&format!(
                "{name:width$}  {:>9.3}ms\n",
                d.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "{:width$}  {:>9.3}ms\n",
            "total",
            total.as_secs_f64() * 1e3
        ));
        out
    }
}

/// Runs every pack over the workspace. Returns the filtered, sorted
/// findings and the per-phase timings.
pub fn analyze(ws: &Workspace, opts: &AnalyzeOptions) -> (Vec<Finding>, Timings) {
    let mut timings = Timings::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<rules::AllowMap> = Vec::with_capacity(ws.files.len());

    timings.time("base", || {
        for sf in &ws.files {
            let originals = sf.originals();
            let (allow_map, mut malformed) = rules::parse_allows(&sf.rel, &sf.masked, &originals);
            allows.push(allow_map);
            findings.append(&mut malformed);
            rules::base_pass(
                &sf.rel,
                &sf.masked,
                &originals,
                &sf.map,
                sf.kind,
                &mut findings,
            );
        }
    });

    timings.time("numerics", || {
        for sf in ws.files.iter().filter(|sf| sf.kind.numerics) {
            let originals = sf.originals();
            crate::numerics::apply(&sf.rel, &sf.masked, &originals, &sf.map, &mut findings);
        }
    });

    timings.time("concurrency", || {
        for sf in ws.files.iter().filter(|sf| sf.kind.concurrency) {
            let originals = sf.originals();
            crate::concurrency::apply(&sf.rel, &sf.masked, &originals, &sf.map, &mut findings);
        }
    });

    let graph = timings.time("callgraph", || crate::callgraph::CallGraph::build(ws));

    timings.time("taint", || {
        crate::taint::apply(ws, &graph, &mut findings);
    });

    timings.time("lockorder", || {
        crate::lockorder::apply(ws, &graph, &opts.roots, &mut findings);
    });

    timings.time("registry", || {
        crate::callgraph::registry_drift(ws, &mut findings);
    });

    // `lint:allow` filtering happens after every pack — including the
    // interprocedural ones — so a suppression works the same wherever
    // the finding came from.
    let allow_of: HashMap<&str, &rules::AllowMap> = ws
        .files
        .iter()
        .zip(allows.iter())
        .map(|(sf, a)| (sf.rel.as_str(), a))
        .collect();
    findings.retain(|f| {
        !matches!(
            allow_of.get(f.file.as_str()).and_then(|a| a.get(f.rule)),
            Some(lines) if lines.contains(&f.line)
                && f.rule != "allow-no-reason"
                && f.rule != "allow-unknown"
        )
    });

    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    (findings, timings)
}

/// Single-file entry point backing [`rules::lint_source`]: a one-file
/// workspace with the fixture convention's implicit `event_loop` root.
pub(crate) fn lint_single(file: &str, src: &str, kind: FileKind) -> Vec<Finding> {
    let ws = Workspace {
        files: vec![SourceFile::new(file.to_owned(), src.to_owned(), kind)],
    };
    let opts = AnalyzeOptions {
        roots: vec!["event_loop".to_owned()],
    };
    analyze(&ws, &opts).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_cover_every_phase() {
        let ws = Workspace {
            files: vec![SourceFile::new(
                "a.rs".into(),
                "fn f() {}\n".into(),
                FileKind::default(),
            )],
        };
        let (findings, timings) = analyze(&ws, &AnalyzeOptions::default());
        assert!(findings.is_empty());
        let names: Vec<&str> = timings.phases.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "base",
                "numerics",
                "concurrency",
                "callgraph",
                "taint",
                "lockorder",
                "registry"
            ]
        );
        assert!(timings.render().contains("total"));
    }

    #[test]
    fn findings_sort_by_file_then_line() {
        let mk =
            |rel: &str, src: &str| SourceFile::new(rel.into(), src.into(), FileKind::default());
        let ws = Workspace {
            files: vec![
                mk("b.rs", "fn f(p: *const u8) -> u8 { unsafe { *p } }\n"),
                mk("a.rs", "fn g(p: *const u8) -> u8 { unsafe { *p } }\n"),
            ],
        };
        let (findings, _) = analyze(&ws, &AnalyzeOptions::default());
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].file, "a.rs");
        assert_eq!(findings[1].file, "b.rs");
    }
}
