//! The `[numerics]` rule pack: float comparison, NaN handling, and
//! cast/division safety in metric code.
//!
//! The paper's contract is the pointwise error bound; the code that
//! *verifies* that bound must itself be total over floats. A decoded
//! NaN flowing into a `partial_cmp(..).expect(..)` sort panics the
//! bound check at exactly the moment it matters, and a zero true value
//! turns a relative error into NaN/inf that silently poisons a maximum.
//! These rules make those failure modes un-writable:
//!
//! * `float-total-cmp` — any `partial_cmp` call (the footgun under
//!   float `sort_by` / `max_by` comparators). Use `f64::total_cmp`,
//!   which is total over NaN, or write an explained allow. Applies to
//!   test code too: a panicking comparator in a test is flaky-test
//!   fuel.
//! * `nan-guard` — a non-test metric function (name contains `error`,
//!   `mse`, `rmse`, `nrmse`, `psnr`, or `ratio`) that takes float
//!   parameters must classify non-finite inputs (`is_finite`,
//!   `is_nan`, `is_infinite`, `is_normal`, `classify`, `nonfinite`) or
//!   delegate to another metric function that does.
//! * `float-cast-bounds` — an `as <int>` cast whose source expression
//!   is visibly floating-point (a float method like `.ceil()` or an
//!   `as f64` within it) without a `.clamp(` / `.min(` / `.max(` on
//!   the chain. `f64 as usize` saturates, so an unclamped cast of an
//!   unexpectedly huge or NaN value silently becomes `usize::MAX` or 0
//!   and indexes the wrong element.
//! * `div-abs` — inside a non-test metric function, division by a bare
//!   identifier or `<ident>.abs()` that the function body never proves
//!   nonzero (no `x > ...`, `x != ...`, `.is_finite()`, `.is_normal()`
//!   or `.max(eps)` guard). This is the `lrm-stats` relative-error bug
//!   class: `err / x.abs()` is NaN when both are zero.

use crate::mask::Masked;
use crate::rules::{snippet_of, Finding};
use crate::tokens::{expr_before, has_word, FnScope, SourceMap};

const INT_TARGETS: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

const FLOAT_METHODS: &[&str] = &[
    ".ceil(", ".floor(", ".round(", ".trunc(", ".sqrt(", ".log2(", ".log10(", ".ln(", ".exp(",
    ".exp2(", ".powi(", ".powf(", ".abs(",
];

const CLAMP_METHODS: &[&str] = &[".clamp(", ".min(", ".max("];

const CLASSIFY_TOKENS: &[&str] = &[
    "is_finite",
    "is_nan",
    "is_infinite",
    "is_normal",
    "classify",
    "nonfinite",
];

/// Names that mark a function as an error/ratio metric.
fn is_metric_name(name: &str) -> bool {
    ["error", "mse", "rmse", "nrmse", "psnr", "ratio"]
        .iter()
        .any(|m| name.contains(m))
}

/// Applies the numerics rules to one masked file.
pub fn apply(
    file: &str,
    masked: &Masked,
    originals: &[&str],
    map: &SourceMap,
    findings: &mut Vec<Finding>,
) {
    let mut push = |rule: &'static str, ln: usize, message: String| {
        findings.push(Finding {
            rule,
            file: file.to_owned(),
            line: ln,
            snippet: snippet_of(originals, ln),
            message,
        });
    };

    for (idx, line) in masked.lines.iter().enumerate() {
        let ln = idx + 1;

        // float-total-cmp: file-wide, tests included.
        if has_word(line, "partial_cmp") {
            push(
                "float-total-cmp",
                ln,
                "partial_cmp on floats panics or misorders on NaN: use f64::total_cmp".into(),
            );
        }

        if map.is_test_line(ln) {
            continue;
        }

        // float-cast-bounds.
        for cast_at in as_cast_sites(line) {
            let expr = expr_before(line, cast_at);
            let floaty = FLOAT_METHODS.iter().any(|m| expr.contains(m))
                || has_word(expr, "f64")
                || has_word(expr, "f32");
            let clamped = CLAMP_METHODS.iter().any(|m| expr.contains(m));
            if floaty && !clamped {
                push(
                    "float-cast-bounds",
                    ln,
                    "float-to-int cast without .clamp()/.min()/.max(): saturates silently on \
                     NaN or out-of-range values"
                        .into(),
                );
                break;
            }
        }

        // div-abs: only inside metric-named functions.
        let Some(f) = map.enclosing_fn(ln) else {
            continue;
        };
        if f.is_test || !is_metric_name(&f.name) {
            continue;
        }
        for root in unguarded_divisors(line) {
            if !divisor_guarded(masked, f, &root) {
                push(
                    "div-abs",
                    ln,
                    format!(
                        "division by `{root}` not proven nonzero in `{}`: guard with \
                         `{root} > eps` / `.max(eps)` or classify the point",
                        f.name
                    ),
                );
            }
        }
    }

    // nan-guard: per metric function.
    for f in &map.fns {
        if f.is_test || !is_metric_name(&f.name) || !f.has_float_params() {
            continue;
        }
        if !classifies_nonfinite(masked, f) && !delegates_to_metric(masked, f) {
            push(
                "nan-guard",
                f.sig_line,
                format!(
                    "metric `{}` takes floats but never classifies non-finite inputs \
                     (is_finite/is_nan/...): NaN propagates silently",
                    f.name
                ),
            );
        }
    }
}

/// Byte offsets of `as` keywords that cast to an integer type.
fn as_cast_sites(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find("as") {
        let at = from + pos;
        from = at + 2;
        let prev = line[..at].bytes().next_back();
        let next = bytes.get(at + 2).copied();
        let bounded = |b: Option<u8>| !b.is_some_and(|x| x.is_ascii_alphanumeric() || x == b'_');
        if !bounded(prev) || !bounded(next) {
            continue;
        }
        let target: String = line[at + 2..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if INT_TARGETS.contains(&target.as_str()) {
            out.push(at);
        }
    }
    out
}

/// Divisor roots on this line in the flagged forms: a bare identifier
/// or `<ident>.abs()`. Literals, parenthesized expressions, and chains
/// that carry an inline `.max(` / `.len(` / `.clamp(` are skipped.
fn unguarded_divisors(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'/' {
            continue;
        }
        // Not part of `//`, `*/`, or `/*` (mask leaves none, but be
        // safe), and step over `/=`.
        if bytes.get(i + 1) == Some(&b'/') || (i > 0 && bytes[i - 1] == b'/') {
            continue;
        }
        let mut j = i + 1;
        if bytes.get(j) == Some(&b'=') {
            j += 1;
        }
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        let Some(&first) = bytes.get(j) else {
            continue;
        };
        if !(first.is_ascii_alphabetic() || first == b'_') {
            continue; // literal, paren group, etc.
        }
        // Consume the chain: ident ( .ident | (..) | [..] )*
        let start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        let root = line[start..j].to_owned();
        let chain_start = j;
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b'.' if depth == 0 => {}
                c if depth == 0 && !(c.is_ascii_alphanumeric() || c == b'_') => break,
                _ => {}
            }
            j += 1;
        }
        let chain = &line[chain_start..j];
        if root == "self"
            || chain.contains(".len(")
            || CLAMP_METHODS.iter().any(|m| chain.contains(m))
        {
            continue; // integer length, or inline floor/clamp.
        }
        let flagged = chain.is_empty() || chain.starts_with(".abs()");
        if flagged && !matches!(root.as_str(), "f64" | "f32") {
            out.push(root);
        }
    }
    out.dedup();
    out
}

/// Whether `root` is proven nonzero anywhere in `f`'s body: compared
/// with `>`/`>=`/`!=`, classified, floored with `.max(`, or bound from
/// an expression that is.
fn divisor_guarded(masked: &Masked, f: &FnScope, root: &str) -> bool {
    for ln in f.body_start..=f.body_end {
        let Some(line) = masked.lines.get(ln - 1) else {
            continue;
        };
        let mut from = 0;
        while let Some(pos) = find_word_at(line, root, from) {
            from = pos + root.len();
            let mut rest = line[from..].trim_start();
            rest = rest.strip_prefix(".abs()").unwrap_or(rest).trim_start();
            if rest.starts_with('>') || rest.starts_with("!=") {
                return true;
            }
            if rest.starts_with(".is_finite")
                || rest.starts_with(".is_normal")
                || rest.starts_with(".max(")
            {
                return true;
            }
            // `let root = <expr>.max(eps);` — bound pre-floored.
            if let Some(binding) = rest.strip_prefix('=') {
                if !binding.starts_with('=') && CLAMP_METHODS.iter().any(|m| binding.contains(m)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether the body mentions a non-finite classification token.
fn classifies_nonfinite(masked: &Masked, f: &FnScope) -> bool {
    (f.body_start..=f.body_end).any(|ln| {
        masked
            .lines
            .get(ln - 1)
            .is_some_and(|line| CLASSIFY_TOKENS.iter().any(|t| has_word(line, t)))
    })
}

/// Whether the body calls another metric-named function (which carries
/// its own nan-guard obligation).
fn delegates_to_metric(masked: &Masked, f: &FnScope) -> bool {
    for ln in f.body_start..=f.body_end {
        let Some(line) = masked.lines.get(ln - 1) else {
            continue;
        };
        let bytes = line.as_bytes();
        let mut j = 0usize;
        while j < bytes.len() {
            if bytes[j].is_ascii_alphabetic() || bytes[j] == b'_' {
                let start = j;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &line[start..j];
                let called = bytes.get(j) == Some(&b'(');
                if called && word != f.name && is_metric_name(word) {
                    return true;
                }
                continue;
            }
            j += 1;
        }
    }
    false
}

/// Position of `word` in `line` at or after `from`, as a standalone
/// word.
fn find_word_at(line: &str, word: &str, mut from: usize) -> Option<usize> {
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let prev = line[..at].bytes().next_back();
        let next = line[at + word.len()..].bytes().next();
        let bounded = |b: Option<u8>| !b.is_some_and(|x| x.is_ascii_alphanumeric() || x == b'_');
        if bounded(prev) && bounded(next) {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;
    use crate::tokens::build;

    fn run(src: &str) -> Vec<Finding> {
        let masked = mask(src);
        let originals: Vec<&str> = src.split('\n').collect();
        let map = build(&masked);
        let mut findings = Vec::new();
        apply("n.rs", &masked, &originals, &map, &mut findings);
        findings
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn partial_cmp_is_flagged_even_in_tests() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(v: &mut Vec<f64>) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
";
        assert_eq!(rules_of(&run(src)), ["float-total-cmp"]);
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "fn s(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unclamped_float_cast_is_flagged() {
        let src = "fn f(p: f64, n: usize) -> usize { (p * n as f64).ceil() as usize }\n";
        assert_eq!(rules_of(&run(src)), ["float-cast-bounds"]);
    }

    #[test]
    fn clamped_float_cast_is_clean() {
        let src =
            "fn f(p: f64, n: usize) -> usize { (p * n as f64).ceil().clamp(0.0, 1e9) as usize }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn integer_cast_is_clean() {
        let src = "fn f(q: u32) -> usize { q as usize }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nan_guard_fires_on_bare_metric() {
        let src = "\
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    s
}
";
        let f = run(src);
        assert_eq!(rules_of(&f), ["nan-guard"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn nan_guard_satisfied_by_classification() {
        let src = "\
pub fn mse(a: &[f64], b: &[f64]) -> u32 {
    a.iter().zip(b).filter(|(x, y)| !x.is_finite() || !y.is_finite()).count() as u32
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nan_guard_satisfied_by_delegation() {
        let src = "\
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).filter(|(x, _)| x.is_finite()).count() as f64
}
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    mse(a, b).sqrt()
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nan_guard_skips_non_float_and_test_fns() {
        let src = "\
fn ratio(&self) -> f64 { self.a }
#[test]
fn rmse_check(a: f64) { a; }
";
        // `ratio` has no float params; the test fn is exempt.
        assert!(run(src).is_empty());
    }

    #[test]
    fn div_abs_fires_without_guard() {
        let src = "\
fn rel_error(xs: &[f64], ys: &[f64]) -> f64 {
    let x = xs[0].is_finite();
    let d = ys[0];
    1.0 / d
}
";
        assert_eq!(rules_of(&run(src)), ["div-abs"]);
    }

    #[test]
    fn div_abs_guarded_by_comparison() {
        let src = "\
fn rel_error(x: f64, d: f64) -> f64 {
    if !x.is_finite() || d.abs() > 1e-12 {
        return x / d.abs();
    }
    0.0
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn div_abs_guarded_by_max_floor() {
        let src = "\
fn rel_error(x: f64, raw: f64) -> f64 {
    let d = raw.abs().max(1e-12);
    if !x.is_finite() { return 0.0; }
    x / d
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn div_by_len_or_literal_is_clean() {
        let src = "\
fn mse(a: &[f64]) -> f64 {
    let n = a.iter().filter(|x| x.is_finite()).count();
    if n > 0 { a[0] / a.len() as f64 + a[0] / 2.0 } else { 0.0 }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn div_outside_metric_fn_is_clean() {
        let src = "fn scale(x: f64, d: f64) -> f64 { x / d }\n";
        assert!(run(src).is_empty());
    }
}
