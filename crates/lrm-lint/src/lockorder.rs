//! Lock-order and event-loop blocking analysis: `lock-order-cycle` and
//! `blocking-in-event-loop`.
//!
//! **Lock order.** Within each fn of a `[lockorder]` file the pack
//! tracks held mutex guards lexically: a `.lock(` acquisition bound by
//! a strict `let [mut] name = ...` holds until its scope closes or an
//! explicit `drop(name)`; an unbound acquisition is a temporary that
//! releases at the end of its statement. Every acquisition made while
//! other guards are held records an ordered pair *(held, acquired)*.
//! Pairs are also closed over the call graph: calling `g()` while
//! holding `L` pairs `L` with everything `g` (transitively) acquires.
//! Two locks acquired in opposite orders anywhere in the workspace —
//! a cycle in the pair graph — is a deadlock waiting for the right
//! interleaving, and each acquisition site on the cycle is flagged.
//!
//! Locks are identified by the *name* of the field or binding the
//! guard came from (`state.jobs.lock()` → `jobs`). Same-named fields
//! on different types merge into one node; DESIGN.md documents that
//! limitation (the workspace keeps lock field names distinct).
//!
//! **Event loop.** `[lockorder]`'s `roots` name the event-loop
//! dispatch fns. Anything reachable from a root through the call graph
//! runs on the loop thread, so a blocking primitive there — condvar
//! waits, blocking channel `recv`, `join`, sleeps, or synchronous
//! socket I/O like `write_all` — stalls every connection, not one.
//! Intentional blocking points (e.g. a best-effort reject write) carry
//! a `lint:allow(blocking-in-event-loop): reason`.

use crate::callgraph::{calls_on_line, resolvable, CallGraph, FnRef};
use crate::rules::{snippet_of, Finding};
use crate::workspace::{SourceFile, Workspace};
use std::collections::{HashMap, HashSet};

/// Blocking primitives that must not run on the event-loop thread.
/// `.recv()` requires the closing paren so `.recv_timeout(` and
/// `try_recv()` don't alias it.
const BLOCKING: &[&str] = &[
    ".wait(",
    ".wait_timeout(",
    ".wait_while(",
    ".recv()",
    ".recv_timeout(",
    ".join()",
    "thread::sleep",
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
];

/// Runs the pack over the workspace.
pub fn apply(ws: &Workspace, graph: &CallGraph, roots: &[String], findings: &mut Vec<Finding>) {
    // Local lexical scan of every non-test fn (lock pairs and call
    // sites only matter in [lockorder] files, but `acquires` feeds the
    // cross-file closure, so scan everything).
    let mut scans: HashMap<FnRef, LocalScan> = HashMap::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        for (xi, f) in sf.map.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            scans.insert((fi, xi), scan_fn(sf, f.body_start, f.body_end));
        }
    }

    // Transitive acquire sets: star(f) = local(f) ∪ ⋃ star(callees).
    let mut star: HashMap<FnRef, HashSet<String>> = scans
        .iter()
        .map(|(&r, s)| (r, s.acquires.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (&caller, callees) in &graph.edges {
            let mut add: Vec<String> = Vec::new();
            {
                let own = star.get(&caller);
                for callee in callees {
                    for lock in star.get(callee).into_iter().flatten() {
                        if !own.is_some_and(|s| s.contains(lock)) {
                            add.push(lock.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                let own = star.entry(caller).or_default();
                let before = own.len();
                own.extend(add);
                changed |= own.len() > before;
            }
        }
        if !changed {
            break;
        }
    }

    // All ordered pairs, each with its first acquisition site.
    struct Pair {
        held: String,
        acquired: String,
        fi: usize,
        line: usize,
    }
    let mut pairs: Vec<Pair> = Vec::new();
    for (&(fi, _), scan) in &scans {
        if !ws.files[fi].kind.lockorder {
            continue;
        }
        for (held, acquired, line) in &scan.pairs {
            pairs.push(Pair {
                held: held.clone(),
                acquired: acquired.clone(),
                fi,
                line: *line,
            });
        }
        for (callee, held_locks, line) in &scan.calls {
            for target in graph.by_name.get(callee).into_iter().flatten() {
                for acquired in star.get(target).into_iter().flatten() {
                    for held in held_locks {
                        pairs.push(Pair {
                            held: held.clone(),
                            acquired: acquired.clone(),
                            fi,
                            line: *line,
                        });
                    }
                }
            }
        }
    }

    // Cycle check over the pair graph.
    pairs.sort_by_key(|a| (a.fi, a.line));
    let mut adj: HashMap<&str, HashSet<&str>> = HashMap::new();
    for p in &pairs {
        adj.entry(p.held.as_str())
            .or_default()
            .insert(p.acquired.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            for &next in adj.get(cur).into_iter().flatten() {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    };
    let mut reported: HashSet<(String, String)> = HashSet::new();
    for p in &pairs {
        if !reaches(&p.acquired, &p.held) {
            continue;
        }
        if !reported.insert((p.held.clone(), p.acquired.clone())) {
            continue;
        }
        let sf = &ws.files[p.fi];
        let originals = sf.originals();
        let message = if p.held == p.acquired {
            format!(
                "`{}` is acquired while a `{}` guard is already held — \
                 self-deadlock on a non-reentrant Mutex",
                p.acquired, p.held
            )
        } else {
            format!(
                "acquires `{}` while holding `{}`, but the opposite order also \
                 exists in the workspace — pick one global lock order",
                p.acquired, p.held
            )
        };
        findings.push(Finding {
            rule: "lock-order-cycle",
            file: sf.rel.clone(),
            line: p.line,
            snippet: snippet_of(&originals, p.line),
            message,
        });
    }

    // Event-loop blocking: everything reachable from the configured
    // roots runs on the loop thread.
    let mut root_refs: Vec<FnRef> = Vec::new();
    for root in roots {
        let (path, name) = match root.rsplit_once("::") {
            Some((p, n)) => (Some(p), n),
            None => (None, root.as_str()),
        };
        for (fi, sf) in ws.files.iter().enumerate() {
            if path.is_some_and(|p| p != sf.rel) {
                continue;
            }
            for (xi, f) in sf.map.fns.iter().enumerate() {
                if f.name == name {
                    root_refs.push((fi, xi));
                }
            }
        }
    }
    if root_refs.is_empty() {
        return;
    }
    let root_list = roots.join(", ");
    for (fi, xi) in graph.reachable(&root_refs) {
        let sf = &ws.files[fi];
        if !sf.kind.lockorder {
            continue;
        }
        let f = &sf.map.fns[xi];
        if f.is_test {
            continue;
        }
        let originals = sf.originals();
        for ln in f.body_start..=f.body_end.min(sf.masked.lines.len()) {
            let line = &sf.masked.lines[ln - 1];
            for tok in BLOCKING {
                if !line.contains(tok) {
                    continue;
                }
                findings.push(Finding {
                    rule: "blocking-in-event-loop",
                    file: sf.rel.clone(),
                    line: ln,
                    snippet: snippet_of(&originals, ln),
                    message: format!(
                        "`{}` in `{}` is reachable from event-loop root {root_list} — \
                         blocking here stalls every connection",
                        tok.trim_matches(['.', '(']),
                        f.name
                    ),
                });
            }
        }
    }
}

/// What one fn body does with locks, lexically.
struct LocalScan {
    /// Every lock name acquired anywhere in the body.
    acquires: HashSet<String>,
    /// (held, acquired, line) for acquisitions under a held guard.
    pairs: Vec<(String, String, usize)>,
    /// (callee, held lock names, line) for resolvable calls made while
    /// at least one guard is held.
    calls: Vec<(String, Vec<String>, usize)>,
}

fn scan_fn(sf: &SourceFile, body_start: usize, body_end: usize) -> LocalScan {
    let mut scan = LocalScan {
        acquires: HashSet::new(),
        pairs: Vec::new(),
        calls: Vec::new(),
    };
    // (lock name, binding name, brace depth at acquisition)
    let mut guards: Vec<(String, String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;

    for ln in body_start..=body_end.min(sf.masked.lines.len()) {
        let line = &sf.masked.lines[ln - 1];
        if let Some(name) = strict_let_name(line.trim_start()) {
            pending_let = Some(name);
        }

        let mut from = 0usize;
        while let Some(pos) = line[from..].find(".lock(") {
            let at = from + pos;
            from = at + ".lock(".len();
            let lock = last_ident_before(line, at)
                .or_else(|| prev_line_expr(sf, body_start, ln))
                .unwrap_or_else(|| "<lock>".to_owned());
            for (held, _, _) in &guards {
                scan.pairs.push((held.clone(), lock.clone(), ln));
            }
            scan.acquires.insert(lock.clone());
            if let Some(binding) = pending_let.clone() {
                guards.push((lock, binding, depth));
            }
        }

        // `drop(guard)` releases early.
        let mut from = 0usize;
        while let Some(pos) = line[from..].find("drop(") {
            let at = from + pos;
            from = at + "drop(".len();
            let inner = line[at + "drop(".len()..]
                .split(')')
                .next()
                .unwrap_or("")
                .trim();
            guards.retain(|(_, binding, _)| binding != inner);
        }

        if !guards.is_empty() {
            let held: Vec<String> = guards.iter().map(|(l, _, _)| l.clone()).collect();
            for site in calls_on_line(line) {
                if resolvable(&site) {
                    scan.calls.push((site.name, held.clone(), ln));
                }
            }
        }

        for b in line.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    guards.retain(|&(_, _, d)| d <= depth);
                }
                _ => {}
            }
        }
        if line.contains(';') {
            pending_let = None;
        }
    }
    scan
}

/// `let [mut] name =` / `let [mut] name:` at the start of a statement.
/// Patterns (`let Ok(g) = ...`) are temporaries, not held guards.
fn strict_let_name(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("let")?;
    if !rest.starts_with([' ', '\t']) {
        return None;
    }
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .bytes()
        .position(|b| !(b.is_ascii_alphanumeric() || b == b'_'))
        .unwrap_or(rest.len());
    let name = &rest[..end];
    if name.is_empty() || name.starts_with(char::is_uppercase) {
        return None;
    }
    match rest[end..].trim_start().bytes().next() {
        Some(b'=') | Some(b':') => Some(name.to_owned()),
        _ => None,
    }
}

/// The last identifier of the expression ending at byte `end`, after
/// stripping trailing `(..)` / `[..]` groups: `state.queues[i]` →
/// `queues`, `get_map()` → `get_map`.
fn last_ident_before(line: &str, end: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut end = end;
    loop {
        while end > 0 && bytes[end - 1] == b' ' {
            end -= 1;
        }
        match end.checked_sub(1).map(|i| bytes[i]) {
            Some(b')') | Some(b']') => {
                let close = bytes[end - 1];
                let open = if close == b')' { b'(' } else { b'[' };
                let mut depth = 0i32;
                let mut i = end;
                while i > 0 {
                    i -= 1;
                    if bytes[i] == close {
                        depth += 1;
                    } else if bytes[i] == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                if depth != 0 {
                    return None; // unbalanced: expression starts off-line
                }
                end = i;
            }
            _ => break,
        }
    }
    let stop = end;
    let mut start = stop;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == stop {
        return None;
    }
    Some(line[start..stop].to_owned())
}

/// Fallback for a line starting with `.lock(`: the trailing expression
/// of the previous non-empty line in the same body.
fn prev_line_expr(sf: &SourceFile, body_start: usize, ln: usize) -> Option<String> {
    for prev in (body_start..ln).rev() {
        let line = sf.masked.lines[prev - 1].trim_end();
        if line.is_empty() {
            continue;
        }
        return last_ident_before(line, line.len());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;

    fn lock_kind() -> FileKind {
        FileKind {
            lockorder: true,
            ..FileKind::default()
        }
    }

    fn run(src: &str, roots: &[&str]) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::new("l.rs".into(), src.into(), lock_kind())],
        };
        let graph = CallGraph::build(&ws);
        let mut findings = Vec::new();
        let roots: Vec<String> = roots.iter().map(|s| (*s).to_owned()).collect();
        apply(&ws, &graph, &roots, &mut findings);
        findings
    }

    #[test]
    fn opposite_order_acquisitions_cycle() {
        let f = run(
            "fn forward(s: &S) {\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   drop(b); drop(a);\n\
             }\n\
             fn backward(s: &S) {\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   drop(a); drop(b);\n\
             }\n",
            &[],
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "lock-order-cycle"));
        let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [3, 8]);
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = run(
            "fn one(s: &S) {\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   drop(b); drop(a);\n\
             }\n\
             fn two(s: &S) {\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   drop(b); drop(a);\n\
             }\n",
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cycle_through_a_callee_is_found() {
        let f = run(
            "fn outer(s: &S) {\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   helper(s);\n\
             \x20   drop(a);\n\
             }\n\
             fn helper(s: &S) {\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   drop(b);\n\
             }\n\
             fn backward(s: &S) {\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   drop(a); drop(b);\n\
             }\n",
            &[],
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn scope_exit_releases_guards() {
        let f = run(
            "fn one(s: &S) {\n\
             \x20   {\n\
             \x20       let a = s.jobs.lock().unwrap();\n\
             \x20       let _ = *a;\n\
             \x20   }\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   drop(b);\n\
             }\n\
             fn two(s: &S) {\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   let a = s.jobs.lock().unwrap();\n\
             \x20   drop(a); drop(b);\n\
             }\n",
            &[],
        );
        // `one` holds nothing when it takes `results`, so the only pair
        // is (results, jobs) in `two` — no cycle.
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn blocking_reachable_from_root_flags() {
        let f = run(
            "fn event_loop(s: &S) {\n\
             \x20   dispatch(s);\n\
             }\n\
             fn dispatch(s: &S) {\n\
             \x20   s.cond.wait_timeout(guard, t);\n\
             }\n\
             fn offline(s: &S) {\n\
             \x20   s.chan.recv();\n\
             }\n",
            &["event_loop"],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "blocking-in-event-loop");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn try_recv_is_not_blocking() {
        let f = run(
            "fn event_loop(s: &S) {\n\
             \x20   while let Ok(x) = s.chan.try_recv() {\n\
             \x20       handle(x);\n\
             \x20   }\n\
             }\n",
            &["event_loop"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_lock_is_not_held() {
        let f = run(
            "fn one(s: &S) {\n\
             \x20   s.jobs.lock().unwrap().push(1);\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   drop(b);\n\
             }\n\
             fn two(s: &S) {\n\
             \x20   let b = s.results.lock().unwrap();\n\
             \x20   s.jobs.lock().unwrap().push(1);\n\
             \x20   drop(b);\n\
             }\n",
            &[],
        );
        // `one` records no (jobs, results) pair, so `two`'s
        // (results, jobs) has no opposite edge.
        assert!(f.is_empty(), "{f:?}");
    }
}
