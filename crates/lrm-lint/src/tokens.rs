//! Nesting-aware tokenization: the token-tree layer under the rules.
//!
//! The v1 linter classified lines with a flat brace stack that only knew
//! "test region" and "decode-named fn". The numerics and concurrency
//! packs need more: *which* function encloses a line, what that
//! function's signature says (float parameters? closure-typed callback
//! parameters?), and where its body begins and ends. [`SourceMap`]
//! computes all of that in one walk over the masked source, so every
//! rule shares a single structural view instead of re-lexing.
//!
//! The walk is still deliberately not a Rust parser: it tracks brace /
//! paren / bracket nesting over the comment- and string-masked text
//! (see [`crate::mask`]), which is exactly enough structure for rules
//! that ask "does this token appear inside that scope".

use crate::mask::Masked;
use std::collections::HashSet;

/// One function item found in the source.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub sig_line: usize,
    /// Line of the opening `{` of the body (equals `sig_line` for
    /// single-line functions).
    pub body_start: usize,
    /// Line of the closing `}` of the body.
    pub body_end: usize,
    /// Inside `#[cfg(test)]` code or carrying `#[test]`.
    pub is_test: bool,
    /// Signature text from `fn` to the opening `{`, masked, with line
    /// breaks collapsed to spaces.
    pub signature: String,
    /// Parameter names whose type is closure-shaped (`impl Fn…`, or a
    /// generic with an `Fn`/`FnMut`/`FnOnce` bound in the generics or
    /// where-clause).
    pub callback_params: Vec<String>,
    /// Brace depth of the body interior (depth of the `{` + 1).
    pub body_depth: usize,
}

impl FnScope {
    /// Whether any *parameter* mentions a float type (`f64` / `f32`) —
    /// the function can receive floating-point inputs. The return type
    /// deliberately does not count: `fn ratio(&self) -> f64` cannot be
    /// handed a NaN.
    pub fn has_float_params(&self) -> bool {
        let params = param_list(&self.signature);
        has_word(params, "f64") || has_word(params, "f32")
    }

    /// Whether `ln` falls in the body (inclusive of the brace lines).
    pub fn contains(&self, ln: usize) -> bool {
        ln >= self.body_start && ln <= self.body_end
    }
}

/// Structural view of one masked file.
#[derive(Debug, Default)]
pub struct SourceMap {
    /// Every `fn` item, in source order (nested fns appear after their
    /// parent).
    pub fns: Vec<FnScope>,
    /// Lines inside `#[cfg(test)]` items or `#[test]` functions.
    pub test_lines: HashSet<usize>,
    /// Lines inside decode-named function bodies (non-test).
    pub decode_lines: HashSet<usize>,
}

impl SourceMap {
    /// The innermost function whose body contains `ln`, if any.
    pub fn enclosing_fn(&self, ln: usize) -> Option<&FnScope> {
        // Later entries open later; the innermost enclosing scope is the
        // last one started at or before `ln` that still contains it.
        self.fns.iter().rfind(|f| f.contains(ln))
    }

    /// True when `ln` is test code.
    pub fn is_test_line(&self, ln: usize) -> bool {
        self.test_lines.contains(&ln)
    }
}

/// Functions whose bodies handle untrusted bytes, by naming convention.
pub fn is_decode_fn(name: &str) -> bool {
    ["decompress", "decode", "from_bytes", "reconstruct", "parse"]
        .iter()
        .any(|p| name.contains(p))
        || name.starts_with("read_")
}

#[derive(Clone, Copy, PartialEq)]
enum RegionKind {
    Anonymous,
    Test,
    /// A function scope; index into the in-progress `fns` vec.
    Fn(usize),
}

/// Builds the [`SourceMap`] for one masked file.
pub fn build(masked: &Masked) -> SourceMap {
    let mut map = SourceMap::default();
    let mut stack: Vec<RegionKind> = Vec::new();
    // Region kind waiting for its opening `{` (set at `fn` / `mod`).
    let mut pending: Option<RegionKind> = None;
    // Paren/bracket depth since `pending` was set, so the `;` ending a
    // trait-method *declaration* is not confused with `[u8; 4]`.
    let mut pending_nest = 0usize;
    // `#[cfg(test)]` / `#[test]` attribute waiting for its item.
    let mut pending_test_attr = false;
    let mut awaiting_fn_name = false;
    // Signature text accumulating between `fn` and its `{`.
    let mut sig: Option<String> = None;

    let mark = |map: &mut SourceMap, stack: &[RegionKind], ln: usize| {
        let in_test = stack.contains(&RegionKind::Test)
            || stack.iter().any(
                |r| matches!(r, RegionKind::Fn(i) if map.fns.get(*i).is_some_and(|f| f.is_test)),
            );
        if in_test {
            map.test_lines.insert(ln);
        }
        let in_decode = stack.iter().any(|r| {
            matches!(r, RegionKind::Fn(i)
                if map.fns.get(*i).is_some_and(|f| is_decode_fn(&f.name) && !f.is_test))
        });
        if in_decode && !in_test {
            map.decode_lines.insert(ln);
        }
    };

    for (idx, line) in masked.lines.iter().enumerate() {
        let ln = idx + 1;
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test") || trimmed.starts_with("#[test]") {
            pending_test_attr = true;
        }
        mark(&mut map, &stack, ln);

        let bytes = line.as_bytes();
        let mut j = 0usize;
        while j < bytes.len() {
            let c = bytes[j];
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = j;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &line[start..j];
                if let Some(s) = sig.as_mut() {
                    s.push(' ');
                    s.push_str(word);
                }
                if awaiting_fn_name {
                    awaiting_fn_name = false;
                    let is_test = pending_test_attr
                        || stack.contains(&RegionKind::Test)
                        || stack.iter().any(|r| {
                            matches!(r, RegionKind::Fn(i)
                                if map.fns.get(*i).is_some_and(|f| f.is_test))
                        });
                    pending_test_attr = false;
                    map.fns.push(FnScope {
                        name: word.to_owned(),
                        sig_line: ln,
                        body_start: 0,
                        body_end: 0,
                        is_test,
                        signature: String::new(),
                        callback_params: Vec::new(),
                        body_depth: 0,
                    });
                    pending = Some(RegionKind::Fn(map.fns.len() - 1));
                    pending_nest = 0;
                    sig = Some(format!("fn {word}"));
                } else if word == "fn" {
                    awaiting_fn_name = true;
                } else if word == "mod" && pending_test_attr {
                    pending_test_attr = false;
                    pending = Some(RegionKind::Test);
                    pending_nest = 0;
                }
                continue;
            }
            if let Some(s) = sig.as_mut() {
                if c != b'{' {
                    s.push(c as char);
                }
            }
            match c {
                b'{' => {
                    let kind = pending.take().unwrap_or(RegionKind::Anonymous);
                    if let RegionKind::Fn(i) = kind {
                        let depth = stack.len() + 1;
                        if let Some(f) = map.fns.get_mut(i) {
                            f.body_start = ln;
                            f.body_depth = depth;
                            f.signature = sig.take().unwrap_or_default();
                            f.callback_params = callback_params(&f.signature);
                        }
                    }
                    stack.push(kind);
                    mark(&mut map, &stack, ln);
                }
                b'}' => {
                    if let Some(RegionKind::Fn(i)) = stack.pop() {
                        if let Some(f) = map.fns.get_mut(i) {
                            f.body_end = ln;
                        }
                    }
                }
                b'(' | b'[' if pending.is_some() => pending_nest += 1,
                b')' | b']' if pending.is_some() => {
                    pending_nest = pending_nest.saturating_sub(1);
                }
                b';' if pending_nest == 0 => {
                    // End of a declaration: a pending fn had no body
                    // (trait method); drop its half-built scope so it
                    // never claims the following lines.
                    if let Some(RegionKind::Fn(i)) = pending.take() {
                        if i + 1 == map.fns.len() {
                            map.fns.pop();
                        }
                    }
                    pending_test_attr = false;
                    sig = None;
                }
                _ => {}
            }
            j += 1;
        }
    }
    // A truncated file can leave a body open; close it at EOF so range
    // queries stay sane.
    let last = masked.lines.len();
    for f in &mut map.fns {
        if f.body_start > 0 && f.body_end == 0 {
            f.body_end = last;
        }
    }
    map.fns.retain(|f| f.body_start > 0);
    map
}

/// Extracts the names of closure-typed parameters from a masked
/// signature (`fn name<...>(params) -> ret where ...`).
fn callback_params(sig: &str) -> Vec<String> {
    // 1. Generic type names carrying an Fn bound, from `<...>` generics
    //    or the where-clause: `F: Fn(..)`, `F: FnMut(..) + Sync`, ...
    let mut fn_generics: Vec<String> = Vec::new();
    let mut rest = sig;
    while let Some(pos) = rest.find(':') {
        let before = rest[..pos].trim_end();
        let name: String = before
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let after = rest[pos + 1..].trim_start();
        if !name.is_empty()
            && (after.starts_with("Fn(")
                || after.starts_with("FnMut")
                || after.starts_with("FnOnce")
                || after.starts_with("Fn "))
        {
            fn_generics.push(name);
        }
        rest = &rest[pos + 1..];
    }

    // 2. The parameter list: the first top-level paren group.
    let params = param_list(sig);

    let mut out = Vec::new();
    for part in split_top_level(params) {
        let Some(colon) = part.find(':') else {
            continue; // `self` and friends
        };
        let name = part[..colon].trim().trim_start_matches("mut ").trim();
        let ty = part[colon + 1..].trim();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        let is_callback = has_word(ty, "Fn")
            || has_word(ty, "FnMut")
            || has_word(ty, "FnOnce")
            || fn_generics.iter().any(|g| has_word(ty, g));
        if is_callback {
            out.push(name.to_owned());
        }
    }
    out
}

/// The parameter list of a masked signature: the first paren group at
/// angle-bracket depth 0, so `Fn(..)` bounds inside `<...>` generics
/// are not mistaken for it.
pub(crate) fn param_list(sig: &str) -> &str {
    let bytes = sig.as_bytes();
    let mut angle = 0i32;
    let mut open = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => angle += 1,
            b'-' if bytes.get(i + 1) == Some(&b'>') => i += 1, // skip `->`
            b'>' => angle -= 1,
            b'(' if angle <= 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(open) = open else {
        return "";
    };
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &sig[open + 1..i];
                }
            }
            _ => {}
        }
    }
    &sig[open + 1..]
}

/// Splits a parameter list on commas at paren/bracket/angle depth 0.
pub(crate) fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'-' if bytes.get(i + 1) == Some(&b'>') => i += 1, // skip `->`
            b'>' => depth -= 1,
            b',' if depth <= 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

/// Standalone word match, not a substring of a longer identifier.
pub fn has_word(line: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let prev = line[..at].bytes().next_back();
        let next = line[at + word.len()..].bytes().next();
        let bounded = |b: Option<u8>| !b.is_some_and(|x| x.is_ascii_alphanumeric() || x == b'_');
        if bounded(prev) && bounded(next) {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// The chained expression ending immediately before byte offset `at` on
/// `line`: walks backwards over identifiers, float literals, `.` method
/// chains, and balanced `(..)` / `[..]` groups. Used to inspect the
/// source operand of an `as` cast.
pub fn expr_before(line: &str, at: usize) -> &str {
    let bytes = line.as_bytes();
    let mut end = at;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    loop {
        if start == 0 {
            break;
        }
        let c = bytes[start - 1];
        if c == b')' || c == b']' {
            // Match backwards to the opener.
            let (open, close) = if c == b')' {
                (b'(', b')')
            } else {
                (b'[', b']')
            };
            let mut depth = 0usize;
            let mut k = start;
            let mut matched = false;
            while k > 0 {
                let b = bytes[k - 1];
                if b == close {
                    depth += 1;
                } else if b == open {
                    depth -= 1;
                    if depth == 0 {
                        start = k - 1;
                        matched = true;
                        break;
                    }
                }
                k -= 1;
            }
            if !matched {
                break;
            }
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            while start > 0
                && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
            {
                start -= 1;
            }
            continue;
        }
        if c == b'.' {
            // Part of a method chain or a float literal.
            start -= 1;
            continue;
        }
        break;
    }
    &line[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;

    fn map_of(src: &str) -> SourceMap {
        build(&mask(src))
    }

    #[test]
    fn fn_scopes_record_name_and_body_range() {
        let m = map_of("fn alpha() {\n    work();\n}\nfn beta() { x() }\n");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "alpha");
        assert_eq!((m.fns[0].body_start, m.fns[0].body_end), (1, 3));
        assert_eq!(m.fns[1].name, "beta");
        assert_eq!((m.fns[1].body_start, m.fns[1].body_end), (4, 4));
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "\
fn outer() {
    fn inner() {
        deep();
    }
    shallow();
}
";
        let m = map_of(src);
        assert_eq!(m.enclosing_fn(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(m.enclosing_fn(5).map(|f| f.name.as_str()), Some("outer"));
        assert!(m.enclosing_fn(7).is_none());
    }

    #[test]
    fn test_attribute_and_cfg_test_mark_scopes() {
        let src = "\
#[test]
fn t() {
    boom();
}
#[cfg(test)]
mod tests {
    fn helper() {
        x();
    }
}
fn real() {
    y();
}
";
        let m = map_of(src);
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(8));
        assert!(!m.is_test_line(12));
        let t = m.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
        let h = m.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert!(h.is_test);
        let r = m.fns.iter().find(|f| f.name == "real").expect("real");
        assert!(!r.is_test);
    }

    #[test]
    fn decode_lines_cover_decode_named_fns_only() {
        let src = "\
fn decompress(b: &[u8]) {
    inner();
}
fn compress(b: &[u8]) {
    other();
}
";
        let m = map_of(src);
        assert!(m.decode_lines.contains(&2));
        assert!(!m.decode_lines.contains(&5));
    }

    #[test]
    fn trait_method_declaration_leaves_no_scope() {
        let src = "\
trait T {
    fn decompress(&self, b: &[u8]) -> Vec<u8>;
}
fn after() {
    x();
}
";
        let m = map_of(src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "after");
        assert!(!m.decode_lines.contains(&5));
    }

    #[test]
    fn signature_captures_multi_line_and_floats() {
        let src = "\
fn metric(
    a: &[f64],
    floor: f64,
) -> f64 {
    body()
}
";
        let m = map_of(src);
        let f = &m.fns[0];
        assert!(f.has_float_params());
        assert_eq!(f.body_start, 4);
        assert_eq!(f.body_end, 6);
    }

    #[test]
    fn float_return_type_alone_is_not_float_params() {
        let m = map_of("fn ratio(&self) -> f64 {\n    self.x\n}\n");
        assert!(!m.fns[0].has_float_params());
    }

    #[test]
    fn callback_params_via_generic_bound() {
        let src = "\
fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    F: Fn(usize, T) -> R + Sync,
{
    f(0, items.into_iter().next().unwrap())
}
";
        let m = map_of(src);
        assert_eq!(m.fns[0].callback_params, vec!["f"]);
    }

    #[test]
    fn callback_params_via_impl_fn_and_inline_bound() {
        let src = "\
fn a(process: impl Fn(&str) -> usize, n: usize) { process; n; }
fn b<F: FnMut() -> u8>(cb: F, data: Vec<u8>) { cb; data; }
";
        let m = map_of(src);
        assert_eq!(m.fns[0].callback_params, vec!["process"]);
        assert_eq!(m.fns[1].callback_params, vec!["cb"]);
    }

    #[test]
    fn non_callback_params_are_not_confused() {
        let src = "fn f(map: HashMap<String, usize>, v: Vec<f64>) { map; v; }\n";
        let m = map_of(src);
        assert!(m.fns[0].callback_params.is_empty());
    }

    #[test]
    fn expr_before_walks_method_chains() {
        let line = "let idx = (p * n as f64).ceil() as usize;";
        let at = line.rfind("as").expect("as");
        assert_eq!(expr_before(line, at), "(p * n as f64).ceil()");
    }

    #[test]
    fn expr_before_stops_at_operators() {
        let line = "let x = 1 + q as i64;";
        let at = line.rfind("as").expect("as");
        assert_eq!(expr_before(line, at), "q");
    }

    #[test]
    fn unterminated_body_is_closed_at_eof() {
        let m = map_of("fn broken() {\n    x();\n");
        assert_eq!(m.fns.len(), 1);
        // Closed at the last (empty trailing) line rather than left at 0.
        assert_eq!(m.fns[0].body_end, 3);
    }
}
