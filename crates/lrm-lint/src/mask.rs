//! A lightweight, comment- and string-aware scan of Rust source.
//!
//! The linter deliberately avoids a full parser: every rule it enforces
//! is a *lexical* property (a token that must not appear, or a comment
//! that must appear next to a token). All it needs is a view of the
//! source in which comment and string-literal *contents* can no longer
//! produce false matches. [`mask`] produces exactly that: a copy of the
//! source where every comment and literal body is replaced by spaces —
//! preserving line and column structure so findings point at the real
//! location — plus the list of comments with their start lines, for the
//! `// SAFETY:` and `// lint:allow(...)` rules.

/// Result of masking one source file.
pub struct Masked {
    /// Source lines with comment and string/char-literal contents
    /// replaced by spaces. Line N of the input is `lines[N - 1]`.
    pub lines: Vec<String>,
    /// Every comment in the file as `(start_line, text)`, 1-indexed.
    /// The text includes the `//` / `/*` marker and, for block
    /// comments, the full (possibly multi-line) body.
    pub comments: Vec<(usize, String)>,
}

/// Masks comments and literals out of `src`. See the module docs.
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `c` to the masked output, tracking line numbers.
    macro_rules! emit {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
            }
            out.push(c);
        }};
    }
    // Pushes a blank in place of a literal/comment char, keeping
    // newlines so line numbers stay aligned.
    macro_rules! blank {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && next == Some('/') {
            let start = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            comments.push((start, text));
            continue;
        }

        // Block comment, with nesting as in Rust.
        if c == '/' && next == Some('*') {
            let start = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                let c = chars[i];
                let n = chars.get(i + 1).copied();
                if c == '/' && n == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    blank!('/');
                    blank!('*');
                    i += 2;
                } else if c == '*' && n == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    blank!('*');
                    blank!('/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    blank!(c);
                    i += 1;
                }
            }
            comments.push((start, text));
            continue;
        }

        // Raw string: r"..." / r#"..."# (optionally with a `b` prefix).
        // Only treated as such when not glued onto a preceding
        // identifier, so `for r in ...` followed by `"x"` stays sane.
        let prev_is_ident = out
            .as_bytes()
            .last()
            .is_some_and(|&p| p.is_ascii_alphanumeric() || p == b'_');
        let raw_at = if c == 'r' && !prev_is_ident {
            Some(i)
        } else if c == 'b' && next == Some('r') && !prev_is_ident {
            Some(i + 1)
        } else {
            None
        };
        if let Some(r) = raw_at {
            let mut j = r + 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Emit the prefix (`r`, optional `b`, hashes, quote).
                while i <= j {
                    emit!(chars[i]);
                    i += 1;
                }
                // Blank the body until `"` followed by `hashes` hashes.
                'body: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                emit!(chars[i]);
                                i += 1;
                            }
                            break 'body;
                        }
                    }
                    blank!(chars[i]);
                    i += 1;
                }
                continue;
            }
        }

        // Ordinary string literal (covers `b"..."` once the `b` has
        // been emitted as a plain char).
        if c == '"' {
            emit!(c);
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '\\' {
                    blank!(c);
                    if let Some(&e) = chars.get(i + 1) {
                        blank!(e);
                    }
                    i += 2;
                } else if c == '"' {
                    emit!(c);
                    i += 1;
                    break;
                } else {
                    blank!(c);
                    i += 1;
                }
            }
            continue;
        }

        // Char literal vs. lifetime. `'\...'` and `'x'` are literals;
        // anything else (`'a` in `&'a str`) is a lifetime and passes
        // through untouched.
        if c == '\'' {
            let is_char = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                emit!(c);
                i += 1;
                while i < chars.len() {
                    let c = chars[i];
                    if c == '\\' {
                        blank!(c);
                        if let Some(&e) = chars.get(i + 1) {
                            blank!(e);
                        }
                        i += 2;
                    } else if c == '\'' {
                        emit!(c);
                        i += 1;
                        break;
                    } else {
                        blank!(c);
                        i += 1;
                    }
                }
                continue;
            }
        }

        emit!(c);
        i += 1;
    }

    Masked {
        lines: out.split('\n').map(str::to_owned).collect(),
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let m = mask("let x = 1; // has .unwrap() inside\nlet y = 2;\n");
        assert!(!m.lines[0].contains("unwrap"));
        assert!(m.lines[0].starts_with("let x = 1; "));
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].0, 1);
        assert!(m.comments[0].1.contains("unwrap"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let m = mask("let s = \"call .unwrap() now\"; s.len();");
        assert!(!m.lines[0].contains("unwrap"));
        assert!(m.lines[0].contains("s.len()"));
        // Quotes survive so column structure is intact.
        assert_eq!(m.lines[0].matches('"').count(), 2);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask(r#"let s = "a\"b.unwrap()"; x();"#);
        assert!(!m.lines[0].contains("unwrap"));
        assert!(m.lines[0].contains("x()"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("a /* outer /* inner.unwrap() */ still */ b");
        assert!(!m.lines[0].contains("unwrap"));
        assert!(m.lines[0].contains('a'));
        assert!(m.lines[0].contains('b'));
    }

    #[test]
    fn block_comment_preserves_line_numbers() {
        let m = mask("a\n/* one\ntwo.unwrap()\n*/\nb.unwrap()\n");
        assert_eq!(m.lines.len(), 6); // trailing newline -> empty last
        assert!(m.lines[4].contains("b.unwrap()"));
        assert!(!m.lines[2].contains("unwrap"));
        assert_eq!(m.comments[0].0, 2);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = mask(r##"let s = r#"has "quotes" and .unwrap()"#; y();"##);
        assert!(!m.lines[0].contains("unwrap"));
        assert!(m.lines[0].contains("y()"));
    }

    #[test]
    fn lifetimes_survive_char_literal_handling() {
        let m = mask("fn f<'a>(x: &'a str, c: char) { if c == 'x' { x.g() } }");
        assert!(m.lines[0].contains("&'a str"));
        assert!(m.lines[0].contains("x.g()"));
        // 'x' is a char literal: quotes survive, content blanked.
        assert!(m.lines[0].contains("' '"));
    }

    #[test]
    fn char_literal_with_bracket_is_blanked() {
        // A '[' inside a char literal must not look like indexing.
        let m = mask("let c = '['; v.push(c);");
        assert!(!m.lines[0].contains('['));
        assert!(m.lines[0].contains("v.push(c)"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let m = mask("let for_var = var; let s = \"x.unwrap()\";");
        assert!(m.lines[0].contains("let for_var = var"));
        assert!(!m.lines[0].contains("unwrap"));
    }
}
