//! The `[concurrency]` rule pack: lock discipline and thread hygiene in
//! the parallel runtime.
//!
//! The chunk-parallel engine hands user callbacks to a worker pool; the
//! three failure modes worth machine-checking are deadlock-by-design
//! (holding a pool lock while running user code), threads that outlive
//! their data (unscoped spawns), and result slots written twice or not
//! at all (lost or duplicated chunk outputs):
//!
//! * `lock-across-call` — a `MutexGuard` bound by `let g = ….lock()…`
//!   is still live when a closure-typed parameter of the enclosing
//!   function is invoked (or a fresh guard is passed straight into the
//!   call). User code must never run under a runtime lock: it can
//!   block indefinitely or re-enter the pool and deadlock.
//! * `no-unscoped-spawn` — `thread::spawn` outside tests. The runtime
//!   uses `std::thread::scope`, whose joins are enforced by the
//!   borrow checker; a free-running thread needs an explained allow
//!   naming its shutdown path.
//! * `result-slot-discipline` — an indexed assignment into a
//!   result-carrying container (identifier contains `result`, `out`,
//!   or `slot`) must write `Some(..)`: slots are `Option<R>` written
//!   exactly once, and the `take()`-based collection relies on it.
//!
//! All three are heuristic token scans over the [`SourceMap`]; the
//! fixture corpus under `tests/fixtures/` pins their behavior.

use crate::mask::Masked;
use crate::rules::{snippet_of, Finding};
use crate::tokens::{FnScope, SourceMap};

/// Applies the concurrency rules to one masked file.
pub fn apply(
    file: &str,
    masked: &Masked,
    originals: &[&str],
    map: &SourceMap,
    findings: &mut Vec<Finding>,
) {
    let mut push = |rule: &'static str, ln: usize, message: String| {
        findings.push(Finding {
            rule,
            file: file.to_owned(),
            line: ln,
            snippet: snippet_of(originals, ln),
            message,
        });
    };

    for (idx, line) in masked.lines.iter().enumerate() {
        let ln = idx + 1;
        if map.is_test_line(ln) {
            continue;
        }

        if has_thread_spawn(line) {
            push(
                "no-unscoped-spawn",
                ln,
                "unscoped thread::spawn: use std::thread::scope, or document the \
                 join/shutdown path in an allow"
                    .into(),
            );
        }

        for root in bad_slot_writes(line) {
            push(
                "result-slot-discipline",
                ln,
                format!(
                    "result slot `{root}[..]` assigned a non-`Some(..)` value: slots are \
                     Option<R> written exactly once"
                ),
            );
        }
    }

    for f in &map.fns {
        if f.is_test || f.callback_params.is_empty() {
            continue;
        }
        lock_across_call(masked, f, &mut push);
    }
}

/// `thread::spawn` as a token sequence (`std::thread::spawn` included;
/// `scope.spawn` and `s.spawn` are not).
fn has_thread_spawn(line: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find("thread") {
        let at = from + pos;
        from = at + "thread".len();
        let prev = line[..at].bytes().next_back();
        if prev.is_some_and(|p| p.is_ascii_alphanumeric() || p == b'_') {
            continue;
        }
        let rest = line[at + "thread".len()..].trim_start();
        if let Some(rest) = rest.strip_prefix("::") {
            if rest.trim_start().starts_with("spawn") {
                return true;
            }
        }
    }
    false
}

/// Roots of indexed assignments `root…[..] = RHS` where the root
/// identifier looks result-carrying and the RHS is not `Some(..)`.
fn bad_slot_writes(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b']' {
            continue;
        }
        // `] =` with a single `=`: an indexed assignment.
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        if bytes.get(j) != Some(&b'=') || bytes.get(j + 1) == Some(&b'=') {
            continue;
        }
        // Walk back over the `[..]` group to the indexed chain.
        let mut depth = 0usize;
        let mut k = i + 1;
        let mut open = None;
        while k > 0 {
            match bytes[k - 1] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(k - 1);
                        break;
                    }
                }
                _ => {}
            }
            k -= 1;
        }
        let Some(open) = open else {
            continue;
        };
        let chain = crate::tokens::expr_before(line, open);
        let root: String = chain
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let lower = root.to_ascii_lowercase();
        let resulty = ["result", "out", "slot"].iter().any(|w| lower.contains(w));
        if !resulty {
            continue;
        }
        let rhs = line[j + 1..].trim_start();
        if !rhs.starts_with("Some(") {
            out.push(root);
        }
    }
    out
}

/// Flags callback invocations made while a `let`-bound lock guard is
/// live, and guards passed directly into a callback's argument list.
fn lock_across_call(
    masked: &Masked,
    f: &FnScope,
    push: &mut impl FnMut(&'static str, usize, String),
) {
    // (guard name, brace depth at binding)
    let mut guards: Vec<(String, usize)> = Vec::new();
    let mut depth = f.body_depth;

    for ln in f.body_start..=f.body_end {
        let Some(line) = masked.lines.get(ln - 1) else {
            continue;
        };
        let call = callback_call(line, &f.callback_params);

        // A guard temporary inside the callback's own argument list:
        // `f(store.lock().unwrap())`.
        if let Some((cb, open)) = call {
            let span = paren_span(line, open);
            if line[open..span].contains(".lock(") {
                push(
                    "lock-across-call",
                    ln,
                    format!(
                        "MutexGuard passed into callback `{cb}`: user code runs under the lock"
                    ),
                );
            }
        }

        // Positional event walk: braces, drops, bindings, and the call.
        let bytes = line.as_bytes();
        let bind = lock_binding(line);
        let mut j = 0usize;
        while j < bytes.len() {
            if let Some((cb, open)) = call {
                if j == open && !guards.is_empty() {
                    push(
                        "lock-across-call",
                        ln,
                        format!(
                            "callback `{cb}` invoked while guard `{}` is live: drop the \
                             guard before running user code",
                            guards[guards.len() - 1].0
                        ),
                    );
                }
            }
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.1 <= depth);
                }
                b'd' if line[j..].starts_with("drop(") => {
                    let inner: String = line[j + 5..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    guards.retain(|g| g.0 != inner);
                }
                _ => {}
            }
            if let Some((name, pos)) = &bind {
                if j == *pos {
                    guards.push((name.clone(), depth));
                }
            }
            j += 1;
        }
    }
}

/// First invocation of a callback parameter on this line: `(name,
/// offset of its opening paren)`.
fn callback_call<'a>(line: &str, params: &'a [String]) -> Option<(&'a str, usize)> {
    let mut best: Option<(&str, usize)> = None;
    for cb in params {
        let mut from = 0;
        while let Some(pos) = line[from..].find(cb.as_str()) {
            let at = from + pos;
            from = at + cb.len();
            let prev = line[..at].bytes().next_back();
            if prev.is_some_and(|p| p.is_ascii_alphanumeric() || p == b'_' || p == b'.') {
                continue;
            }
            let after = &line[at + cb.len()..];
            let trimmed = after.trim_start();
            if !trimmed.starts_with('(') {
                continue;
            }
            let open = at + cb.len() + (after.len() - trimmed.len());
            if best.is_none_or(|(_, b)| open < b) {
                best = Some((cb, open));
            }
            break;
        }
    }
    best
}

/// End offset (exclusive) of the paren group opening at `open`, or the
/// line end if unbalanced.
fn paren_span(line: &str, open: usize) -> usize {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    line.len()
}

/// `let [mut] <name> = … .lock( …` on one line: `(name, offset of the
/// binding)`.
fn lock_binding(line: &str) -> Option<(String, usize)> {
    let let_pos = find_keyword(line, "let")?;
    let rest = &line[let_pos + 3..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let after_let = &line[let_pos..];
    if after_let.contains(".lock(") {
        Some((name, let_pos))
    } else {
        None
    }
}

/// Offset of keyword `kw` as a standalone word.
fn find_keyword(line: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find(kw) {
        let at = from + pos;
        let prev = line[..at].bytes().next_back();
        let next = line[at + kw.len()..].bytes().next();
        let bounded = |b: Option<u8>| !b.is_some_and(|x| x.is_ascii_alphanumeric() || x == b'_');
        if bounded(prev) && bounded(next) {
            return Some(at);
        }
        from = at + kw.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;
    use crate::tokens::build;

    fn run(src: &str) -> Vec<Finding> {
        let masked = mask(src);
        let originals: Vec<&str> = src.split('\n').collect();
        let map = build(&masked);
        let mut findings = Vec::new();
        apply("c.rs", &masked, &originals, &map, &mut findings);
        findings
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unscoped_spawn_is_flagged() {
        let src = "fn s() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&run(src)), ["no-unscoped-spawn"]);
    }

    #[test]
    fn scoped_spawn_is_clean() {
        let src = "fn s() { std::thread::scope(|sc| { sc.spawn(|| {}); }); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn spawn_in_test_is_exempt() {
        let src = "#[test]\nfn t() { std::thread::spawn(|| {}); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_some_result_write_is_flagged() {
        let src = "fn w(results: &mut Vec<Option<u8>>, i: usize, r: u8) { results[i] = r; }\n";
        let f = run(src);
        assert_eq!(rules_of(&f), ["result-slot-discipline"]);
    }

    #[test]
    fn some_result_write_is_clean() {
        let src = "fn w(out: &mut Vec<Option<u8>>, i: usize, r: u8) { out[i] = Some(r); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn locked_slot_write_with_some_is_clean() {
        let src = "fn w(i: usize, r: u8) { results.lock().expect(\"p\")[i] = Some(r); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_result_container_is_not_a_slot() {
        let src = "fn w(plane: &mut [f64], i: usize, v: f64) { plane[i] = v; }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn comparison_is_not_an_assignment() {
        let src = "fn w(out: &[u8], i: usize) -> bool { out[i] == 3 }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_held_across_callback_is_flagged() {
        let src = "\
fn run<F: Fn(usize) -> u8>(f: F, m: &std::sync::Mutex<u8>) {
    let g = m.lock().unwrap();
    f(*g as usize);
}
";
        let fs = run(src);
        assert_eq!(rules_of(&fs), ["lock-across-call"]);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_callback_is_clean() {
        let src = "\
fn run<F: Fn(usize) -> u8>(f: F, m: &std::sync::Mutex<u8>) {
    let g = m.lock().unwrap();
    let v = *g as usize;
    drop(g);
    f(v);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_scope_closed_before_callback_is_clean() {
        let src = "\
fn run<F: Fn(usize) -> u8>(f: F, m: &std::sync::Mutex<u8>) {
    let v = {
        let g = m.lock().unwrap();
        *g as usize
    };
    f(v);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_temporary_then_callback_is_clean() {
        let src = "\
fn run<F: Fn(usize) -> u8>(f: F, m: &std::sync::Mutex<u8>) {
    *m.lock().unwrap() += 1;
    f(3);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_passed_into_callback_args_is_flagged() {
        let src = "\
fn run<F: Fn(u8) -> u8>(f: F, m: &std::sync::Mutex<u8>) {
    f(*m.lock().unwrap());
}
";
        assert_eq!(rules_of(&run(src)), ["lock-across-call"]);
    }

    #[test]
    fn callback_passed_along_without_call_is_clean() {
        let src = "\
fn outer<F: Fn(usize) -> u8>(f: F, m: &std::sync::Mutex<u8>) {
    let _g = m.lock().unwrap();
    helper(f);
}
";
        // `helper(f)` passes the callback, it does not invoke it.
        assert!(run(src).is_empty());
    }
}
