//! The workspace call graph and the registry-drift check.
//!
//! Nodes are every `fn` item in every scanned file (as found by
//! [`crate::tokens`]); edges come from a lexical scan for
//! `identifier(` call sites, resolved *by name* against the workspace
//! index. That heuristic is deliberately coarse — it cannot tell
//! `self.run()` from `Job::run()` — so two blocklists keep the graph
//! honest:
//!
//! * [`METHOD_BLOCKLIST`] drops method calls (`.name(`) whose names are
//!   ubiquitous std/container vocabulary (`lock`, `push`, `read`, …):
//!   resolving those to same-named workspace fns would wire unrelated
//!   code together.
//! * [`PATH_BLOCKLIST`] drops names that are overwhelmingly
//!   constructors or std free functions in any position (`new`, `from`,
//!   `take`, …).
//!
//! Free-function and `Path::assoc(` calls otherwise resolve to *every*
//! workspace fn with that name (an over-approximation: reachability
//! consumers stay sound for the rules built on top, at the cost of
//! possible false edges between same-named fns).
//!
//! The drift check closes the registry loop: a fn named `decode*` /
//! `read_*` / `parse*` that takes `&[u8]` is a decode surface by this
//! repo's conventions, and must be registered under `[decode]` in
//! `lint.toml` so the decode-path rules actually reach it.

use crate::rules::{snippet_of, Finding};
use crate::tokens::param_list;
use crate::workspace::{SourceFile, Workspace};
use std::collections::{HashMap, HashSet};

/// A fn node: (index into `ws.files`, index into that file's
/// `map.fns`).
pub type FnRef = (usize, usize);

/// Method names (`.name(`) never resolved against the workspace index.
const METHOD_BLOCKLIST: &[&str] = &[
    // std / container vocabulary that would alias workspace fns
    "abs", "ceil", "clone", "collect", "drain", "extend", "expect", "find", "flush", "get",
    "insert", "iter", "join", "len", "lock", "map", "max", "min", "next", "pop", "push", "read",
    "recv", "round", "send", "set_len", "split", "sqrt", "floor", "take", "trim", "unwrap", "wait",
    "write",
    // workspace-specific aliases that must not become edges:
    // `stream.shutdown()` is not `Client::shutdown`, `job.run()` /
    // `loop.run()` is not `EventLoop::run`, `header.parse()` is
    // generic, `reader.finish()` is not `Stager::finish`
    "shutdown", "run", "parse", "finish",
];

/// Names never resolved in any call position (constructors and std
/// free functions).
const PATH_BLOCKLIST: &[&str] = &[
    "new",
    "now",
    "default",
    "from",
    "with_capacity",
    "take",
    "min",
    "max",
    "swap",
    "replace",
    "drop",
];

/// One lexical call site on a line.
pub(crate) struct CallSite {
    /// The called identifier.
    pub name: String,
    /// Byte offset of the identifier on the line.
    pub col: usize,
    /// Preceded by `.` (a method call).
    pub is_method: bool,
}

/// Extracts `identifier(` call sites from one masked line, skipping fn
/// definitions (`fn name(`) and macro invocations (`name!(`).
pub(crate) fn calls_on_line(line: &str) -> Vec<CallSite> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut j = 0usize;
    let mut prev_word_fn = false;
    while j < bytes.len() {
        let c = bytes[j];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = j;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let word = &line[start..j];
            if prev_word_fn {
                // `fn name(` is a definition, not a call.
                prev_word_fn = false;
                continue;
            }
            prev_word_fn = word == "fn";
            if bytes.get(j) != Some(&b'(') {
                continue;
            }
            let is_method = start > 0 && bytes[start - 1] == b'.';
            out.push(CallSite {
                name: word.to_owned(),
                col: start,
                is_method,
            });
            continue;
        }
        if !c.is_ascii_whitespace() {
            prev_word_fn = false;
        }
        j += 1;
    }
    out
}

/// Whether a call site's name may resolve against the workspace index.
pub(crate) fn resolvable(site: &CallSite) -> bool {
    if PATH_BLOCKLIST.contains(&site.name.as_str()) {
        return false;
    }
    !(site.is_method && METHOD_BLOCKLIST.contains(&site.name.as_str()))
}

/// The workspace call graph.
pub struct CallGraph {
    /// Caller -> resolved callees, deduped, in call-site order.
    pub edges: HashMap<FnRef, Vec<FnRef>>,
    /// fn name -> every workspace fn with that name.
    pub by_name: HashMap<String, Vec<FnRef>>,
}

impl CallGraph {
    /// Indexes every fn and resolves every call site by name. Edges
    /// out of test fns are dropped: tests may legally call anything.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut by_name: HashMap<String, Vec<FnRef>> = HashMap::new();
        for (fi, sf) in ws.files.iter().enumerate() {
            for (xi, f) in sf.map.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, xi));
            }
        }

        let mut edges: HashMap<FnRef, Vec<FnRef>> = HashMap::new();
        for (fi, sf) in ws.files.iter().enumerate() {
            for (ln, line) in sf.masked.lines.iter().enumerate().map(|(i, l)| (i + 1, l)) {
                let Some(xi) = enclosing_fn_index(sf, ln) else {
                    continue;
                };
                if sf.map.fns[xi].is_test {
                    continue;
                }
                for site in calls_on_line(line) {
                    if !resolvable(&site) {
                        continue;
                    }
                    let Some(targets) = by_name.get(&site.name) else {
                        continue;
                    };
                    let callees = edges.entry((fi, xi)).or_default();
                    for &t in targets {
                        if !callees.contains(&t) {
                            callees.push(t);
                        }
                    }
                }
            }
        }
        CallGraph { edges, by_name }
    }

    /// Every fn reachable from `roots` (inclusive) along call edges.
    pub fn reachable(&self, roots: &[FnRef]) -> HashSet<FnRef> {
        let mut seen: HashSet<FnRef> = roots.iter().copied().collect();
        let mut queue: Vec<FnRef> = roots.to_vec();
        while let Some(cur) = queue.pop() {
            for &next in self.edges.get(&cur).into_iter().flatten() {
                if seen.insert(next) {
                    queue.push(next);
                }
            }
        }
        seen
    }

    /// Human-readable dump for `--dump-callgraph`: one block per fn
    /// with at least one resolved callee.
    pub fn dump(&self, ws: &Workspace) -> String {
        let total_fns: usize = ws.files.iter().map(|sf| sf.map.fns.len()).sum();
        let total_edges: usize = self.edges.values().map(Vec::len).sum();
        let mut out = format!("callgraph: {total_fns} fns, {total_edges} resolved edges\n");
        let name_of = |(fi, xi): FnRef| {
            let sf = &ws.files[fi];
            format!("{}::{}", sf.rel, sf.map.fns[xi].name)
        };
        let mut callers: Vec<&FnRef> = self.edges.keys().collect();
        callers.sort();
        for &caller in callers {
            let sf = &ws.files[caller.0];
            out.push_str(&format!(
                "{} (line {})\n",
                name_of(caller),
                sf.map.fns[caller.1].sig_line
            ));
            for &callee in &self.edges[&caller] {
                out.push_str(&format!("  -> {}\n", name_of(callee)));
            }
        }
        out
    }
}

/// Index of the innermost fn whose body contains `ln`.
pub(crate) fn enclosing_fn_index(sf: &SourceFile, ln: usize) -> Option<usize> {
    sf.map
        .fns
        .iter()
        .enumerate()
        .rev()
        .find(|(_, f)| f.contains(ln))
        .map(|(i, _)| i)
}

/// Path components under which decode-named helpers are exempt from
/// registry drift (test/bench scaffolding is not a decode surface).
const EXEMPT_COMPONENTS: &[&str] = &["tests", "benches", "examples", "fixtures"];

/// `unregistered-decode-path`: a non-test fn named `decode*` / `read_*`
/// / `parse*` that takes `&[u8]` in a file not registered `[decode]`.
pub(crate) fn registry_drift(ws: &Workspace, findings: &mut Vec<Finding>) {
    for sf in &ws.files {
        if sf.kind.decode {
            continue;
        }
        if sf.rel.split('/').any(|c| EXEMPT_COMPONENTS.contains(&c)) {
            continue;
        }
        let originals = sf.originals();
        for f in &sf.map.fns {
            if f.is_test {
                continue;
            }
            let name = f.name.as_str();
            let named_decode = name.starts_with("decode")
                || name.starts_with("read_")
                || name.starts_with("parse");
            if !named_decode {
                continue;
            }
            // The masked signature inserts spaces before identifiers;
            // squash them so `&[ u8]` matches.
            let params: String = param_list(&f.signature)
                .chars()
                .filter(|c| *c != ' ')
                .collect();
            if !params.contains("&[u8]") {
                continue;
            }
            findings.push(Finding {
                rule: "unregistered-decode-path",
                file: sf.rel.clone(),
                line: f.sig_line,
                snippet: snippet_of(&originals, f.sig_line),
                message: format!(
                    "`{name}` takes &[u8] but {} is not registered under [decode] in lint.toml",
                    sf.rel
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(rel, src)| {
                    SourceFile::new((*rel).to_owned(), (*src).to_owned(), FileKind::default())
                })
                .collect(),
        }
    }

    fn names(ws: &Workspace, refs: &[FnRef]) -> Vec<String> {
        refs.iter()
            .map(|&(fi, xi)| ws.files[fi].map.fns[xi].name.clone())
            .collect()
    }

    #[test]
    fn free_calls_resolve_across_files() {
        let ws = ws_of(&[
            ("a.rs", "fn alpha() {\n    beta();\n}\n"),
            (
                "b.rs",
                "pub fn beta() {\n    gamma(1);\n}\nfn gamma(x: u8) { let _ = x; }\n",
            ),
        ]);
        let g = CallGraph::build(&ws);
        let alpha = (0usize, 0usize);
        assert_eq!(names(&ws, &g.edges[&alpha]), ["beta"]);
        let reach = g.reachable(&[alpha]);
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn method_blocklist_drops_ambiguous_methods() {
        let ws = ws_of(&[(
            "a.rs",
            "fn run() {\n    helper();\n}\nfn caller(j: &Job) {\n    j.run();\n}\nfn helper() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        // `j.run()` must not become an edge to fn `run`.
        let caller = (0usize, 1usize);
        assert!(!g.edges.contains_key(&caller));
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let sites = calls_on_line("fn decode(b: u8) { vec![b]; panic!(\"x\"); other(b); }");
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["other"]);
    }

    #[test]
    fn test_fns_contribute_no_edges() {
        let ws = ws_of(&[(
            "a.rs",
            "#[test]\nfn t() {\n    helper();\n}\nfn helper() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn drift_flags_unregistered_decode_named_slice_fns() {
        let mut ws = ws_of(&[(
            "crates/x/src/lib.rs",
            "pub fn decode_meta(b: &[u8]) -> u8 {\n    b.len() as u8\n}\n\
             pub fn read_settings(s: &str) -> u8 { s.len() as u8 }\n",
        )]);
        let mut findings = Vec::new();
        registry_drift(&ws, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unregistered-decode-path");
        assert_eq!(findings[0].line, 1);

        // Registering the file clears it.
        ws.files[0].kind.decode = true;
        findings.clear();
        registry_drift(&ws, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn drift_exempts_test_scaffolding_paths() {
        let ws = ws_of(&[(
            "crates/x/tests/helpers.rs",
            "pub fn decode_sample(b: &[u8]) -> u8 { b.len() as u8 }\n",
        )]);
        let mut findings = Vec::new();
        registry_drift(&ws, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn dump_lists_resolved_edges() {
        let ws = ws_of(&[("a.rs", "fn alpha() {\n    beta();\n}\nfn beta() {}\n")]);
        let g = CallGraph::build(&ws);
        let dump = g.dump(&ws);
        assert!(dump.contains("a.rs::alpha"));
        assert!(dump.contains("-> a.rs::beta"));
    }
}
