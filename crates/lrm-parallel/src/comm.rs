//! Thread-based rank communicator with MPI-style collectives.
//!
//! The paper's *one-base* scheme needs exactly the communication pattern
//! of Algorithm 1: the rank owning the mid-plane **broadcasts** it, every
//! rank computes its local deltas, and the deltas are **gathered**. This
//! module runs N "ranks" as threads connected by std mpsc channels and
//! provides `broadcast` / `gather` / `allreduce` / point-to-point with
//! the same semantics, so the algorithm can be exercised and tested
//! in-process without an MPI launcher.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// A message: sender rank, user tag, payload.
type Message = (usize, u64, Vec<f64>);

/// Per-rank endpoint of the communicator.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Message>>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages parked until a matching receive.
    parked: Vec<Message>,
}

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to `to` with `tag`.
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        self.senders[to]
            .send((self.rank, tag, data))
            .expect("rank channel closed");
    }

    /// Blocking receive of the next message from `from` with `tag`
    /// (messages with other signatures are parked, preserving order).
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(i) = self
            .parked
            .iter()
            .position(|(f, t, _)| *f == from && *t == tag)
        {
            return self.parked.remove(i).2;
        }
        loop {
            let msg = self.receiver.recv().expect("rank channel closed");
            if msg.0 == from && msg.1 == tag {
                return msg.2;
            }
            self.parked.push(msg);
        }
    }

    /// Broadcast from `root`: the root's `data` is returned on every rank.
    pub fn broadcast(&mut self, root: usize, data: Vec<f64>) -> Vec<f64> {
        const TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send(r, TAG, data.clone());
                }
            }
            data
        } else {
            self.recv(root, TAG)
        }
    }

    /// Gather: every rank contributes `data`; the root receives all
    /// contributions ordered by rank and returns `Some`, others `None`.
    pub fn gather(&mut self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        const TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(self.size);
            for r in 0..self.size {
                if r == root {
                    out.push(data.clone());
                } else {
                    out.push(self.recv(r, TAG));
                }
            }
            Some(out)
        } else {
            self.send(root, TAG, data);
            None
        }
    }

    /// Sum-allreduce of equal-length vectors across all ranks.
    pub fn allreduce_sum(&mut self, data: Vec<f64>) -> Vec<f64> {
        // Gather at 0 then broadcast — O(P) but fine for a simulator.
        let gathered = self.gather(0, data);
        let summed = gathered.map(|parts| {
            let mut acc = vec![0.0; parts[0].len()];
            for p in &parts {
                for (a, v) in acc.iter_mut().zip(p) {
                    *a += v;
                }
            }
            acc
        });
        self.broadcast(0, summed.unwrap_or_default())
    }

    /// Barrier: every rank blocks until all ranks arrive.
    pub fn barrier(&mut self) {
        let _ = self.allreduce_sum(vec![0.0]);
    }
}

/// Runs `f` on `size` ranks (one thread each) and returns their results
/// ordered by rank.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated).
pub fn run_ranks<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    assert!(size >= 1, "run_ranks: need at least one rank");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = channel::<Message>();
        senders.push(s);
        receivers.push(r);
    }
    let senders = Arc::new(senders);

    let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    size,
                    senders,
                    receiver,
                    parked: Vec::new(),
                };
                f(&mut ctx)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => out[rank] = Some(v),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    out.into_iter().map(|v| v.expect("joined")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_every_rank() {
        let results = run_ranks(8, |ctx| {
            let data = if ctx.rank() == 3 {
                vec![1.0, 2.0, 3.0]
            } else {
                Vec::new()
            };
            ctx.broadcast(3, data)
        });
        for r in results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run_ranks(6, |ctx| {
            let mine = vec![ctx.rank() as f64];
            ctx.gather(0, mine)
        });
        let at_root = results[0].as_ref().expect("root gathers");
        for (i, part) in at_root.iter().enumerate() {
            assert_eq!(part, &vec![i as f64]);
        }
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = run_ranks(5, |ctx| ctx.allreduce_sum(vec![1.0, ctx.rank() as f64]));
        for r in results {
            assert_eq!(r, vec![5.0, 10.0]); // 0+1+2+3+4 = 10
        }
    }

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_ranks(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![42.0]);
                ctx.recv(1, 8)
            } else {
                let got = ctx.recv(0, 7);
                ctx.send(0, 8, vec![got[0] * 2.0]);
                got
            }
        });
        assert_eq!(results[0], vec![84.0]);
        assert_eq!(results[1], vec![42.0]);
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let results = run_ranks(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0]);
                ctx.send(1, 2, vec![2.0]);
                Vec::new()
            } else {
                // Receive in the opposite order they were sent.
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn barrier_completes() {
        let results = run_ranks(4, |ctx| {
            ctx.barrier();
            ctx.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let results = run_ranks(1, |ctx| {
            let b = ctx.broadcast(0, vec![9.0]);
            let g = ctx.gather(0, vec![1.0]).expect("root");
            (b, g.len())
        });
        assert_eq!(results[0].0, vec![9.0]);
        assert_eq!(results[0].1, 1);
    }
}
