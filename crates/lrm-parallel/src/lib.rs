//! Thread-based MPI-rank simulation.
//!
//! The paper runs Heat3d on 512 Titan ranks and its *one-base* reduced
//! model requires a mid-plane broadcast plus a delta gather (Algorithm 1).
//! This crate substitutes threads for MPI ranks — same communication
//! pattern, same decomposition arithmetic — so the distributed algorithms
//! can be executed and verified on one machine:
//!
//! * [`comm`] — rank communicator over std mpsc channels with
//!   `broadcast` / `gather` / `allreduce_sum` / point-to-point.
//! * [`domain`] — 3-D block decomposition, plane ownership, sub-domain
//!   extraction.
//! * [`pool`] — a work-stealing worker pool used by the chunk-parallel
//!   compression engine and the numeric kernels.

// Index-symmetric loops read more clearly than iterator chains in
// numerical kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod comm;
pub mod domain;
pub mod pool;

pub use comm::{run_ranks, RankCtx};
pub use domain::{Decomposition, SubDomain};
pub use pool::{available_threads, WorkerPool};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_base_communication_pattern_end_to_end() {
        // Algorithm 1 of the paper over a real decomposition: the owner
        // ranks of the global mid-plane contribute their piece; rank 0
        // assembles and broadcasts it; every rank subtracts the plane from
        // each of its local planes; the deltas are gathered at rank 0 and
        // must equal the directly-computed global delta.
        let global = [8usize, 8, 8];
        let d = Decomposition::new(global, [2, 2, 2]);
        let field: Vec<f64> = (0..512).map(|i| (i as f64 * 0.1).sin()).collect();
        let mid_z = global[2] / 2;

        let results = run_ranks(d.num_ranks(), |ctx| {
            let local = d.extract(ctx.rank(), &field);
            let sd = d.subdomain(ctx.rank());
            let [lx, ly, _lz] = sd.dims();
            let patch: Vec<f64> = if sd.contains_z(mid_z) {
                let zl = mid_z - sd.z.0;
                local[zl * lx * ly..(zl + 1) * lx * ly].to_vec()
            } else {
                Vec::new()
            };
            let gathered = ctx.gather(0, patch);
            let plane = if ctx.rank() == 0 {
                let mut plane = vec![0.0; global[0] * global[1]];
                let parts = gathered.expect("root");
                for (r, part) in parts.iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let psd = d.subdomain(r);
                    let mut i = 0;
                    for y in psd.y.0..psd.y.1 {
                        for x in psd.x.0..psd.x.1 {
                            plane[y * global[0] + x] = part[i];
                            i += 1;
                        }
                    }
                }
                plane
            } else {
                Vec::new()
            };
            let plane = ctx.broadcast(0, plane);
            // Local delta: subtract the broadcast plane per z level.
            let mut delta = Vec::with_capacity(local.len());
            let mut i = 0;
            for _z in sd.z.0..sd.z.1 {
                for y in sd.y.0..sd.y.1 {
                    for x in sd.x.0..sd.x.1 {
                        delta.push(local[i] - plane[y * global[0] + x]);
                        i += 1;
                    }
                }
            }
            ctx.gather(0, delta)
        });

        // Rank 0's gathered deltas reassemble into the global delta.
        let parts = results[0].as_ref().expect("root gathered");
        let mut rebuilt = vec![0.0; 512];
        for (r, part) in parts.iter().enumerate() {
            d.insert(r, part, &mut rebuilt);
        }
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    let i = (z * 8 + y) * 8 + x;
                    let want = field[i] - field[(mid_z * 8 + y) * 8 + x];
                    assert!((rebuilt[i] - want).abs() < 1e-12);
                }
            }
        }
    }
}
