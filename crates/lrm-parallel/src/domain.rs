//! 3-D block domain decomposition.
//!
//! Maps a global grid onto a `px × py × pz` rank grid, giving each rank a
//! contiguous subdomain (the layout Heat3d uses on 8×8×8 processors in
//! the paper's Table II). Used by the *one-base* scheme to find which
//! rank owns the global mid-plane and by *multi-base* to extract each
//! rank's local mid-plane.

/// A rank's axis-aligned subdomain: half-open index ranges per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubDomain {
    /// `[start, end)` along x.
    pub x: (usize, usize),
    /// `[start, end)` along y.
    pub y: (usize, usize),
    /// `[start, end)` along z.
    pub z: (usize, usize),
}

impl SubDomain {
    /// Extents of the subdomain.
    pub fn dims(&self) -> [usize; 3] {
        [
            self.x.1 - self.x.0,
            self.y.1 - self.y.0,
            self.z.1 - self.z.0,
        ]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        let d = self.dims();
        d[0] * d[1] * d[2]
    }

    /// True when the subdomain is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the global plane `z = k` intersects this subdomain.
    pub fn contains_z(&self, k: usize) -> bool {
        self.z.0 <= k && k < self.z.1
    }
}

/// Block decomposition of `global` cells over a `grid` of ranks.
#[derive(Debug, Clone, Copy)]
pub struct Decomposition {
    /// Global grid extents.
    pub global: [usize; 3],
    /// Rank-grid extents.
    pub grid: [usize; 3],
}

impl Decomposition {
    /// Creates a decomposition; every rank-grid extent must divide into
    /// the corresponding global extent sensibly (remainders spread over
    /// the leading ranks).
    pub fn new(global: [usize; 3], grid: [usize; 3]) -> Self {
        for d in 0..3 {
            assert!(grid[d] >= 1, "decomposition: empty rank grid");
            assert!(
                grid[d] <= global[d].max(1),
                "decomposition: more ranks than cells along dim {d}"
            );
        }
        Self { global, grid }
    }

    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.grid[0] * self.grid[1] * self.grid[2]
    }

    /// The rank's coordinates in the rank grid (x fastest).
    pub fn rank_coords(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.num_ranks(), "decomposition: rank out of range");
        [
            rank % self.grid[0],
            (rank / self.grid[0]) % self.grid[1],
            rank / (self.grid[0] * self.grid[1]),
        ]
    }

    /// Inverse of [`Decomposition::rank_coords`].
    pub fn coords_rank(&self, c: [usize; 3]) -> usize {
        (c[2] * self.grid[1] + c[1]) * self.grid[0] + c[0]
    }

    /// 1-D split of `n` cells over `p` ranks: rank `i` gets
    /// `[i*n/p, (i+1)*n/p)` (balanced to within one cell).
    fn split(n: usize, p: usize, i: usize) -> (usize, usize) {
        (i * n / p, (i + 1) * n / p)
    }

    /// The subdomain of `rank`.
    pub fn subdomain(&self, rank: usize) -> SubDomain {
        let c = self.rank_coords(rank);
        SubDomain {
            x: Self::split(self.global[0], self.grid[0], c[0]),
            y: Self::split(self.global[1], self.grid[1], c[1]),
            z: Self::split(self.global[2], self.grid[2], c[2]),
        }
    }

    /// Ranks whose subdomain contains the global plane `z = k` (the
    /// owners that broadcast the mid-plane in *one-base*).
    pub fn ranks_owning_z(&self, k: usize) -> Vec<usize> {
        (0..self.num_ranks())
            .filter(|&r| self.subdomain(r).contains_z(k))
            .collect()
    }

    /// Extracts `rank`'s subdomain from a global row-major field.
    pub fn extract(&self, rank: usize, global_field: &[f64]) -> Vec<f64> {
        let sd = self.subdomain(rank);
        let [gx, gy, _] = self.global;
        let mut out = Vec::with_capacity(sd.len());
        for z in sd.z.0..sd.z.1 {
            for y in sd.y.0..sd.y.1 {
                for x in sd.x.0..sd.x.1 {
                    out.push(global_field[(z * gy + y) * gx + x]);
                }
            }
        }
        out
    }

    /// Writes `rank`'s subdomain data back into a global field.
    pub fn insert(&self, rank: usize, local: &[f64], global_field: &mut [f64]) {
        let sd = self.subdomain(rank);
        assert_eq!(local.len(), sd.len(), "insert: local size mismatch");
        let [gx, gy, _] = self.global;
        let mut i = 0;
        for z in sd.z.0..sd.z.1 {
            for y in sd.y.0..sd.y.1 {
                for x in sd.x.0..sd.x.1 {
                    global_field[(z * gy + y) * gx + x] = local[i];
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subdomains_tile_the_global_grid() {
        let d = Decomposition::new([12, 8, 6], [3, 2, 2]);
        assert_eq!(d.num_ranks(), 12);
        let total: usize = (0..12).map(|r| d.subdomain(r).len()).sum();
        assert_eq!(total, 12 * 8 * 6);
    }

    #[test]
    fn uneven_splits_stay_balanced() {
        let d = Decomposition::new([10, 1, 1], [3, 1, 1]);
        let sizes: Vec<usize> = (0..3).map(|r| d.subdomain(r).dims()[0]).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition::new([8, 8, 8], [2, 2, 2]);
        for r in 0..8 {
            assert_eq!(d.coords_rank(d.rank_coords(r)), r);
        }
    }

    #[test]
    fn mid_plane_owners() {
        let d = Decomposition::new([8, 8, 8], [2, 2, 2]);
        let owners = d.ranks_owning_z(4);
        // Plane z=4 lives in the upper half: ranks with cz = 1.
        assert_eq!(owners, vec![4, 5, 6, 7]);
        assert_eq!(d.ranks_owning_z(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let d = Decomposition::new([6, 4, 2], [2, 2, 1]);
        let global: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let mut rebuilt = vec![0.0; 48];
        for r in 0..d.num_ranks() {
            let local = d.extract(r, &global);
            d.insert(r, &local, &mut rebuilt);
        }
        assert_eq!(rebuilt, global);
    }

    #[test]
    #[should_panic(expected = "more ranks than cells")]
    fn rejects_overdecomposition() {
        Decomposition::new([2, 2, 2], [4, 1, 1]);
    }
}
