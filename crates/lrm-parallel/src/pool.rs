//! Work-stealing worker pool for chunk-parallel compression.
//!
//! The chunk engine in `lrm-core` decomposes a field into z-slabs and
//! compresses each slab independently; slabs compress at very different
//! speeds (PCA on a near-constant slab converges in one sweep, a
//! turbulent slab needs many), so a static round-robin split wastes
//! cores. This pool pre-distributes tasks round-robin into per-worker
//! deques; a worker drains its own deque from the front and, when empty,
//! steals from the back of its siblings' deques. Results are returned in
//! submission order, so callers get deterministic output regardless of
//! how the work was scheduled.
//!
//! Implemented on `std` primitives only (scoped threads + mutex-guarded
//! deques) — task granularity here is a whole z-slab or matrix block, so
//! queue synchronization cost is noise.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-size pool of worker threads with work-stealing scheduling.
///
/// The pool is a lightweight handle: threads are scoped to each
/// [`WorkerPool::run`] call, so a pool can be stored in a config struct
/// and reused without keeping idle threads alive between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::auto()
    }
}

impl WorkerPool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn auto() -> Self {
        Self::new(available_threads())
    }

    /// Number of worker threads this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, scheduling items across the pool's
    /// workers with work stealing, and returns the results **in the
    /// order the items were given** (index-stable, so output is
    /// deterministic for any thread count).
    ///
    /// `f` receives the item's index and the item. With one worker (or
    /// one item) everything runs inline on the calling thread — no
    /// threads are spawned, which keeps the single-threaded path
    /// bitwise identical to plain serial execution.
    ///
    /// # Panics
    /// Propagates a panic from any worker.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }

        // Round-robin pre-distribution seeds locality; stealing fixes
        // whatever imbalance the costs introduce.
        let mut seeded: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            seeded[i % workers].push_back((i, item));
        }
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> = seeded.into_iter().map(Mutex::new).collect();

        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let results = &results;
                    let f = &f;
                    scope.spawn(move || {
                        while let Some((i, item)) = find_task(w, queues) {
                            let r = f(i, item);
                            let mut slots = results.lock().expect("pool: result store poisoned");
                            debug_assert!(
                                slots[i].is_none(),
                                "pool: result slot {i} written twice"
                            );
                            slots[i] = Some(r);
                        }
                    })
                })
                .collect();
            for h in handles {
                // Join explicitly so a worker panic surfaces with its
                // original payload instead of scope's generic message.
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        results
            .into_inner()
            .expect("pool: result store poisoned")
            .into_iter()
            .map(|r| r.expect("pool: missing result"))
            .collect()
    }
}

/// Next task for worker `w`: own deque front first, then steal from the
/// back of the other workers' deques. Returns `None` when every deque is
/// empty (remaining tasks are already executing elsewhere).
fn find_task<T>(w: usize, queues: &[Mutex<VecDeque<(usize, T)>>]) -> Option<(usize, T)> {
    if let Some(task) = queues[w].lock().expect("pool: queue poisoned").pop_front() {
        return Some(task);
    }
    let len = queues.len();
    for offset in 1..len {
        let victim = (w + offset) % len;
        if let Some(task) = queues[victim]
            .lock()
            .expect("pool: queue poisoned")
            .pop_back()
        {
            return Some(task);
        }
    }
    None
}

/// Number of hardware threads, with a safe fallback of 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_submission_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let out = pool.run((0..100).collect(), |i, v: usize| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        let out = pool.run(vec![(); 1000], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn uneven_task_costs_are_balanced() {
        // Tasks with wildly different costs still all complete and stay
        // ordered; this exercises the stealing path.
        let pool = WorkerPool::new(4);
        let out = pool.run((0..32).collect(), |_, v: u64| {
            let spins = if v.is_multiple_of(7) { 200_000 } else { 10 };
            let mut acc = v;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            v
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn mutable_slices_can_be_dispatched() {
        // The pattern the numeric kernels use: split a buffer into
        // chunks, process each chunk on the pool.
        let mut data = vec![0.0f64; 64];
        let chunks: Vec<&mut [f64]> = data.chunks_mut(16).collect();
        WorkerPool::new(4).run(chunks, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 16) as f64);
        }
    }

    #[test]
    fn empty_input_and_zero_threads_are_fine() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out: Vec<i32> = pool.run(Vec::<i32>::new(), |_, v| v);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        WorkerPool::new(2).run(vec![0, 1, 2, 3], |_, v: i32| {
            if v == 2 {
                panic!("worker boom");
            }
            v
        });
    }

    #[test]
    fn auto_pool_has_at_least_one_thread() {
        assert!(WorkerPool::auto().threads() >= 1);
        assert!(available_threads() >= 1);
    }
}
