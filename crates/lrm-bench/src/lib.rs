//! Zero-dependency benchmark harness for the lrm codecs.
//!
//! `crates/bench` (a separate, excluded workspace) carries the Criterion
//! harness for online environments; this crate is what offline builds
//! and CI run. It times the three paper codecs — SZ (block-relative
//! 1e-5), ZFP (fixed-precision 16), FPC (level 20) — over the dataset
//! registry with warmup and median-of-k, and serializes the results as
//! a small JSON document (`BENCH_*.json`) so the perf trajectory is
//! recorded in-repo, not asserted in prose.
//!
//! Everything here is std-only: timing via `std::time::Instant`, JSON
//! via the hand-rolled writer/parser in [`json`].

pub mod json;

use lrm_compress::{Codec, Fpc, Sz, Zfp};
use lrm_datasets::{generate, DatasetKind, SizeClass};

use json::Json;

/// One (codec, dataset) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Codec display name (`SZ`, `ZFP`, `FPC`).
    pub codec: String,
    /// Dataset registry name.
    pub dataset: String,
    /// Compression throughput over the uncompressed size, MB/s.
    pub encode_mbps: f64,
    /// Decompression throughput over the uncompressed size, MB/s.
    pub decode_mbps: f64,
    /// Uncompressed bytes / compressed bytes.
    pub ratio: f64,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Dataset size class the fields are generated at.
    pub size: SizeClass,
    /// Median-of-k repetitions per measurement.
    pub reps: usize,
    /// Quick mode: one dataset per codec (the CI smoke configuration).
    pub quick: bool,
    /// Optional `codec[:dataset]` filter (case-insensitive substring
    /// match on each part), e.g. `FPC` or `sz:heat`.
    pub only: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            size: SizeClass::Small,
            reps: 5,
            quick: false,
            only: None,
        }
    }
}

impl BenchConfig {
    fn selected(&self, codec: &str, dataset: &str) -> bool {
        let Some(filter) = &self.only else {
            return true;
        };
        let mut parts = filter.splitn(2, ':');
        let cpart = parts.next().unwrap_or("");
        let dpart = parts.next().unwrap_or("");
        codec
            .to_ascii_lowercase()
            .contains(&cpart.to_ascii_lowercase())
            && dataset
                .to_ascii_lowercase()
                .contains(&dpart.to_ascii_lowercase())
    }
}

/// The paper's codec configurations (SZ rel 1e-5, ZFP 16 bit planes,
/// FPC level 20).
pub fn paper_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Sz::block_rel(1e-5)),
        Box::new(Zfp::fixed_precision(16)),
        Box::new(Fpc::new(20)),
    ]
}

/// Median seconds per call: one warmup/calibration ramp (batch size
/// doubles until a batch spans >= 5 ms, so short calls are timed in
/// aggregate), then `reps` timed batches reduced by median.
pub fn time_per_call(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut iters = 1usize;
    loop {
        let t = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_secs_f64() >= 0.005 || iters >= (1 << 20) {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN)
}

/// Times one codec over one generated field.
pub fn measure_one(codec: &dyn Codec, kind: DatasetKind, config: &BenchConfig) -> BenchResult {
    let field = generate(kind, config.size).full;
    let bytes = (field.data.len() * 8) as f64;
    let encoded = codec.compress(&field.data, field.shape);
    let ratio = bytes / encoded.len().max(1) as f64;

    let enc_t = time_per_call(config.reps, || {
        let out = codec.compress(&field.data, field.shape);
        std::hint::black_box(&out);
    });
    let dec_t = time_per_call(config.reps, || {
        let out = codec.decompress(&encoded, field.shape);
        std::hint::black_box(&out);
    });

    BenchResult {
        codec: codec.name().to_string(),
        dataset: kind.name().to_string(),
        encode_mbps: bytes / enc_t.max(1e-12) / 1e6,
        decode_mbps: bytes / dec_t.max(1e-12) / 1e6,
        ratio,
    }
}

/// Times the serving layer end to end: an in-process `lrm-server` on an
/// ephemeral loopback port, one blocking client, Heat3d at the
/// configured size. For this row the two throughput columns carry
/// **requests per second** (a request is a full frame round trip:
/// connect, send, compute, receive), not MB/s, and `ratio` is the
/// artifact's compression ratio. The committed baselines carry no
/// (`serve`, `loopback`) pair, so [`regressions`] never gates on it —
/// the row records the trajectory.
pub fn measure_serve(config: &BenchConfig) -> BenchResult {
    use lrm_server::{Connection, Server};

    let field = generate(DatasetKind::Heat3d, config.size).full;
    let server = Server::builder().threads(2).bind().expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve());

    let request = serve_compress_request(&field);
    let (report, artifact) = Connection::open(addr)
        .expect("connect")
        .compress(request.clone())
        .expect("compress");
    let ratio = report.ratio();

    // Connect-per-request on purpose: this row is the historical
    // baseline the sweep rows are judged against.
    let enc_t = time_per_call(config.reps, || {
        let mut session = Connection::open(addr).expect("connect");
        let out = session.compress(request.clone()).expect("compress");
        std::hint::black_box(&out);
    });
    let dec_t = time_per_call(config.reps, || {
        let mut session = Connection::open(addr).expect("connect");
        let out = session.decompress(&artifact).expect("decompress");
        std::hint::black_box(&out);
    });

    Connection::open(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let _ = handle.join();

    BenchResult {
        codec: "serve".to_string(),
        dataset: "loopback".to_string(),
        encode_mbps: 1.0 / enc_t.max(1e-12),
        decode_mbps: 1.0 / dec_t.max(1e-12),
        ratio,
    }
}

fn serve_compress_request(field: &lrm_datasets::Field) -> lrm_server::CompressRequest {
    use lrm_core::{LossyCodec, ReducedModelKind};
    lrm_server::CompressRequest {
        model: ReducedModelKind::OneBase,
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: true,
        chunks: 0,
        shape: field.shape,
        data: field.data.clone(),
    }
}

/// Connection counts for the persistent-connection sweep rows.
pub const SWEEP_CONNS: [usize; 3] = [1, 64, 1024];

/// One row of the concurrency sweep: `conns` persistent sessions stay
/// open while pipelined requests are pushed through all of them at
/// once. `decode_mbps` carries ping requests per second (protocol +
/// event-loop overhead), `encode_mbps` carries compress requests per
/// second (compute through the worker pool), and `ratio` is the
/// artifact's compression ratio from one untimed round trip. Every
/// request is answered on the connection that sent it and matched by
/// request id, so the row also doubles as a large-scale pipelining
/// check.
pub fn measure_serve_conns(config: &BenchConfig, conns: usize) -> BenchResult {
    use lrm_server::{Connection, Request, Server};

    let field = generate(DatasetKind::Heat3d, config.size).full;
    let server = Server::builder()
        .threads(2)
        .max_inflight(4096)
        .max_connections(conns + 8)
        .max_pipeline_depth(64)
        .deadline(std::time::Duration::from_secs(120))
        .bind()
        .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve());

    let compress = Request::Compress(serve_compress_request(&field));
    let ratio = match Connection::open(addr).expect("connect").call(&compress) {
        Ok(lrm_server::Response::Compressed { report, .. }) => report.ratio(),
        other => panic!("probe compress failed: {other:?}"),
    };

    let ping = Request::Ping {
        echo: vec![0x5A; 16],
    };
    let (ping_total, compress_total) = if config.quick { (512, 32) } else { (2048, 96) };
    let ping_rps = sweep_round(addr, conns, ping_total, &ping);
    let compress_rps = sweep_round(addr, conns, compress_total, &compress);

    Connection::open(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let _ = handle.join();

    BenchResult {
        codec: "serve".to_string(),
        dataset: format!("sweep-c{conns}"),
        encode_mbps: compress_rps,
        decode_mbps: ping_rps,
        ratio,
    }
}

/// Drives at least `total` copies of `request` through `conns`
/// persistent sessions and returns requests per second. Sessions are
/// opened untimed; the clock covers only the request traffic. Each
/// driver thread owns a share of the sessions and pipelines batches of
/// up to 16 requests per session (send all, then wait all), so many
/// requests ride each socket round trip without exceeding the server's
/// per-connection depth.
fn sweep_round(
    addr: std::net::SocketAddr,
    conns: usize,
    total: usize,
    request: &lrm_server::Request,
) -> f64 {
    use lrm_server::Connection;
    use std::sync::Barrier;

    let conns = conns.max(1);
    let threads = conns.min(8);
    let mut share = vec![conns / threads; threads];
    for slot in share.iter_mut().take(conns % threads) {
        *slot += 1;
    }
    let per_conn = total.div_ceil(conns).max(1);
    let barrier = Barrier::new(threads + 1);

    let elapsed = std::thread::scope(|scope| {
        let barrier = &barrier;
        let drivers: Vec<_> = share
            .iter()
            .map(|&count| {
                scope.spawn(move || {
                    let mut sessions: Vec<Connection> = (0..count)
                        .map(|_| Connection::open(addr).expect("connect"))
                        .collect();
                    barrier.wait();
                    for session in &mut sessions {
                        let mut remaining = per_conn;
                        while remaining > 0 {
                            let batch = remaining.min(16);
                            let handles: Vec<_> = (0..batch)
                                .map(|_| session.send(request).expect("send"))
                                .collect();
                            for h in handles {
                                session.wait(h).expect("wait");
                            }
                            remaining -= batch;
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let clock = std::time::Instant::now();
        for driver in drivers {
            driver.join().expect("driver thread");
        }
        clock.elapsed()
    });

    (per_conn * conns) as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Runs the full grid (or the quick diagonal) and returns one result per
/// (codec, dataset) pair, plus the [`measure_serve`] loopback row and
/// the [`measure_serve_conns`] persistent-connection sweep. `progress`
/// is called before each measurement with a human-readable label.
pub fn run(config: &BenchConfig, mut progress: impl FnMut(&str)) -> Vec<BenchResult> {
    let codecs = paper_codecs();
    let mut results = Vec::new();
    if config.quick {
        // One dataset per codec: a distinct field each so the smoke run
        // still touches different data shapes.
        for (i, codec) in codecs.iter().enumerate() {
            let kind = DatasetKind::ALL[i % DatasetKind::ALL.len()];
            if !config.selected(codec.name(), kind.name()) {
                continue;
            }
            progress(&format!("{} / {}", codec.name(), kind.name()));
            results.push(measure_one(codec.as_ref(), kind, config));
        }
    } else {
        for kind in DatasetKind::ALL {
            for codec in &codecs {
                if !config.selected(codec.name(), kind.name()) {
                    continue;
                }
                progress(&format!("{} / {}", codec.name(), kind.name()));
                results.push(measure_one(codec.as_ref(), kind, config));
            }
        }
    }
    if config.selected("serve", "loopback") {
        progress("serve / loopback (req/s)");
        results.push(measure_serve(config));
    }
    // The persistent-connection sweep; quick mode stops at 64
    // connections so the smoke run stays short, the full run also
    // covers the c1024 row.
    let sweep: &[usize] = if config.quick {
        &SWEEP_CONNS[..2]
    } else {
        &SWEEP_CONNS
    };
    for &conns in sweep {
        let dataset = format!("sweep-c{conns}");
        if !config.selected("serve", &dataset) {
            continue;
        }
        progress(&format!("serve / {dataset} (req/s)"));
        results.push(measure_serve_conns(config, conns));
    }
    results
}

/// Serializes results to the committed `BENCH_*.json` layout
/// (`schema: lrm-bench/v1`).
pub fn to_json(results: &[BenchResult], size: SizeClass, reps: usize) -> String {
    let size_name = match size {
        SizeClass::Tiny => "tiny",
        SizeClass::Small => "small",
        SizeClass::Paper => "paper",
    };
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("codec".into(), Json::Str(r.codec.clone())),
                ("dataset".into(), Json::Str(r.dataset.clone())),
                ("encode_mbps".into(), Json::Num(r.encode_mbps)),
                ("decode_mbps".into(), Json::Num(r.decode_mbps)),
                ("ratio".into(), Json::Num(r.ratio)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("lrm-bench/v1".into())),
        ("size".into(), Json::Str(size_name.into())),
        ("reps".into(), Json::Num(reps as f64)),
        ("results".into(), Json::Arr(rows)),
    ]);
    doc.pretty()
}

/// Parses a `BENCH_*.json` document back into results. Tolerant of
/// unknown extra keys; strict about the schema tag.
pub fn from_json(text: &str) -> Result<Vec<BenchResult>, String> {
    let doc = json::parse_json(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("lrm-bench/v1") => {}
        other => return Err(format!("unsupported bench schema: {other:?}")),
    }
    let rows = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let field = |k: &str| -> Result<f64, String> {
            row.get(k)
                .and_then(Json::as_num)
                .ok_or(format!("result missing numeric {k:?}"))
        };
        let name = |k: &str| -> Result<String, String> {
            Ok(row
                .get(k)
                .and_then(Json::as_str)
                .ok_or(format!("result missing string {k:?}"))?
                .to_string())
        };
        out.push(BenchResult {
            codec: name("codec")?,
            dataset: name("dataset")?,
            encode_mbps: field("encode_mbps")?,
            decode_mbps: field("decode_mbps")?,
            ratio: field("ratio")?,
        });
    }
    Ok(out)
}

/// Compares `current` against a `baseline`, returning one message per
/// (codec, dataset) pair whose encode or decode throughput dropped more
/// than `tolerance` (fractional, e.g. 0.30). Pairs absent from either
/// side are ignored, so the quick smoke can be gated against a full run.
pub fn regressions(
    current: &[BenchResult],
    baseline: &[BenchResult],
    tolerance: f64,
) -> Vec<String> {
    let mut msgs = Vec::new();
    for base in baseline {
        let Some(cur) = current
            .iter()
            .find(|c| c.codec == base.codec && c.dataset == base.dataset)
        else {
            continue;
        };
        let floor = 1.0 - tolerance;
        for (what, now, then) in [
            ("encode", cur.encode_mbps, base.encode_mbps),
            ("decode", cur.decode_mbps, base.decode_mbps),
        ] {
            if then > 0.0 && now < then * floor {
                msgs.push(format!(
                    "{}/{} {} throughput regressed: {:.1} MB/s vs baseline {:.1} MB/s (floor {:.1})",
                    cur.codec,
                    cur.dataset,
                    what,
                    now,
                    then,
                    then * floor,
                ));
            }
        }
    }
    msgs
}

/// Renders results as an aligned text table (via lrm-cli's renderer, so
/// bench output matches the experiment tables).
pub fn render_table(results: &[BenchResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.codec.clone(),
                r.dataset.clone(),
                lrm_cli::table::f(r.encode_mbps),
                lrm_cli::table::f(r.decode_mbps),
                lrm_cli::table::f(r.ratio),
            ]
        })
        .collect();
    lrm_cli::table::render(
        &["codec", "dataset", "enc MB/s", "dec MB/s", "ratio"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchResult> {
        vec![
            BenchResult {
                codec: "SZ".into(),
                dataset: "heat3d".into(),
                encode_mbps: 123.456,
                decode_mbps: 456.789,
                ratio: 7.5,
            },
            BenchResult {
                codec: "ZFP".into(),
                dataset: "wave".into(),
                encode_mbps: 88.0,
                decode_mbps: 99.0,
                ratio: 4.25,
            },
        ]
    }

    #[test]
    fn json_roundtrip() {
        let text = to_json(&sample(), SizeClass::Tiny, 5);
        let back = from_json(&text).expect("parse");
        for (a, b) in sample().iter().zip(&back) {
            assert_eq!(a.codec, b.codec);
            assert_eq!(a.dataset, b.dataset);
            assert!((a.encode_mbps - b.encode_mbps).abs() < 1e-6);
            assert!((a.decode_mbps - b.decode_mbps).abs() < 1e-6);
            assert!((a.ratio - b.ratio).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(from_json(r#"{"schema":"other/v9","results":[]}"#).is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn regression_gate_fires_only_past_tolerance() {
        let base = sample();
        let mut cur = sample();
        assert!(regressions(&cur, &base, 0.30).is_empty());
        cur[0].decode_mbps = base[0].decode_mbps * 0.75; // within 30%
        assert!(regressions(&cur, &base, 0.30).is_empty());
        cur[0].decode_mbps = base[0].decode_mbps * 0.5; // past it
        let msgs = regressions(&cur, &base, 0.30);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("SZ/heat3d decode"));
    }

    #[test]
    fn regression_gate_ignores_missing_pairs() {
        let base = sample();
        let cur = vec![base[0].clone()];
        assert!(regressions(&cur, &base, 0.30).is_empty());
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table(&sample());
        assert!(t.contains("SZ") && t.contains("wave") && t.contains("ratio"));
    }

    #[test]
    fn only_filter_selects_by_codec_and_dataset() {
        let mut c = BenchConfig::default();
        assert!(c.selected("SZ", "Heat3d"));
        c.only = Some("sz".into());
        assert!(c.selected("SZ", "Heat3d"));
        assert!(!c.selected("FPC", "Heat3d"));
        c.only = Some("fpc:astro".into());
        assert!(c.selected("FPC", "Astro"));
        assert!(!c.selected("FPC", "Heat3d"));
        assert!(!c.selected("SZ", "Astro"));
    }

    #[test]
    fn time_per_call_is_positive_and_finite() {
        let mut acc = 0u64;
        let t = time_per_call(3, || {
            acc = acc.wrapping_add(1);
            std::hint::black_box(acc);
        });
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn quick_run_measures_one_dataset_per_codec() {
        let config = BenchConfig {
            size: SizeClass::Tiny,
            reps: 1,
            quick: true,
            only: None,
        };
        let results = run(&config, |_| {});
        assert_eq!(results.len(), 6);
        let codecs: Vec<&str> = results.iter().map(|r| r.codec.as_str()).collect();
        assert_eq!(codecs, vec!["SZ", "ZFP", "FPC", "serve", "serve", "serve"]);
        let serve_sets: Vec<&str> = results[3..].iter().map(|r| r.dataset.as_str()).collect();
        assert_eq!(serve_sets, vec!["loopback", "sweep-c1", "sweep-c64"]);
        for r in &results {
            assert!(r.encode_mbps > 0.0 && r.decode_mbps > 0.0 && r.ratio > 0.0);
        }
    }

    #[test]
    fn serve_row_measures_loopback_requests() {
        let config = BenchConfig {
            size: SizeClass::Tiny,
            reps: 1,
            quick: true,
            only: None,
        };
        let row = measure_serve(&config);
        assert_eq!(
            (row.codec.as_str(), row.dataset.as_str()),
            ("serve", "loopback")
        );
        // req/s in the throughput columns; a loopback round trip on a
        // tiny field comfortably clears one request per second.
        assert!(row.encode_mbps > 1.0 && row.decode_mbps > 1.0);
        assert!(row.ratio > 1.0);
    }

    #[test]
    fn sweep_row_pipelines_over_persistent_connections() {
        let config = BenchConfig {
            size: SizeClass::Tiny,
            reps: 1,
            quick: true,
            only: None,
        };
        // An off-grid connection count proves the row is parameterized,
        // not hard-coded to the committed sweep points.
        let row = measure_serve_conns(&config, 3);
        assert_eq!(
            (row.codec.as_str(), row.dataset.as_str()),
            ("serve", "sweep-c3")
        );
        assert!(row.encode_mbps > 1.0 && row.decode_mbps > 1.0);
        assert!(row.ratio > 1.0);
    }
}
