//! Minimal JSON writer + recursive-descent parser, std-only.
//!
//! Exists so `BENCH_*.json` can be both written and re-read (for the CI
//! regression gate) without external crates. Supports exactly the JSON
//! the harness emits: objects, arrays, strings (with `\uXXXX` escapes),
//! finite numbers, booleans, null. Parsing is defensive — it is fed
//! files from the repo and CI artifacts, so it must error, not panic,
//! on malformed input.

/// A parsed JSON value. Object keys keep insertion order (a `Vec` of
/// pairs, not a map) so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (the committed `BENCH_*.json` format).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null round-trips as a parse error on the
        // numeric field, which is the right failure mode for a gate.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_obj(),
            Some(b'[') => self.parse_arr(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_num(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos.saturating_add(1);
                            let end = start.saturating_add(4);
                            let hex = self
                                .bytes
                                .get(start..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    if let Ok(chunk) =
                        std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
                    {
                        s.push_str(chunk);
                    }
                }
            }
        }
    }

    fn parse_num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| "non-utf8 number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::Obj(vec![
            ("s".into(), Json::Str("a \"b\"\n\t\\".into())),
            ("n".into(), Json::Num(-12.5)),
            ("i".into(), Json::Num(42.0)),
            (
                "a".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Obj(vec![])]),
            ),
            ("e".into(), Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(parse_json(&text), Ok(doc));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert!(Json::Num(5.0).pretty().starts_with('5'));
        assert!(Json::Num(5.25).pretty().starts_with("5.25"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "[1 2]",
            "{\"a\":1}extra",
            "nul",
            "\"\\q\"",
            "\"\\u12\"",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse_json("\"caf\\u00e9 \\u2014 ü\"").expect("parse");
        assert_eq!(v.as_str(), Some("café — ü"));
    }

    #[test]
    fn get_walks_objects() {
        let v = parse_json(r#"{"a": {"b": [1, 2]}}"#).expect("parse");
        let inner = v.get("a").and_then(|a| a.get("b")).and_then(Json::as_arr);
        assert_eq!(inner.map(<[Json]>::len), Some(2));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("a").is_none());
    }
}
