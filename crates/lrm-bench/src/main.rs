//! `lrm-bench` — offline benchmark harness binary.
//!
//! ```text
//! lrm-bench [--quick] [--size tiny|small|paper] [--reps N]
//!           [--out PATH] [--check PATH] [--tolerance F]
//! ```
//!
//! Runs the codec grid, prints a throughput table, optionally writes the
//! results as JSON (`--out`), and optionally gates against a committed
//! baseline (`--check`), exiting nonzero if any matching (codec,
//! dataset) pair regressed by more than `--tolerance` (default 0.30).

use lrm_bench::{from_json, regressions, render_table, run, to_json, BenchConfig};
use lrm_datasets::SizeClass;

struct Args {
    config: BenchConfig,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: BenchConfig::default(),
        out: None,
        check: None,
        tolerance: 0.30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => {
                args.config.quick = true;
                // Quick mode is the CI smoke: smallest fields, fewest reps.
                args.config.size = SizeClass::Tiny;
                args.config.reps = 3;
            }
            "--size" => {
                args.config.size = match value("--size")?.as_str() {
                    "tiny" => SizeClass::Tiny,
                    "small" => SizeClass::Small,
                    "paper" => SizeClass::Paper,
                    other => return Err(format!("unknown size {other:?}")),
                }
            }
            "--reps" => {
                args.config.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--only" => args.config.only = Some(value("--only")?),
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: lrm-bench [--quick] [--size tiny|small|paper] [--reps N]\n\
                     \x20                [--only codec[:dataset]] [--out PATH]\n\
                     \x20                [--check PATH] [--tolerance F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !args.tolerance.is_finite() || !(0.0..1.0).contains(&args.tolerance) {
        return Err("--tolerance must be in [0, 1)".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lrm-bench: {e}");
            std::process::exit(2);
        }
    };

    let results = run(&args.config, |label| {
        eprintln!("bench: {label}");
    });
    print!("{}", render_table(&results));

    if let Some(path) = &args.out {
        let text = to_json(&results, args.config.size, args.config.reps);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("lrm-bench: writing {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }

    if let Some(path) = &args.check {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| from_json(&text));
        let baseline = match baseline {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lrm-bench: reading baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let msgs = regressions(&results, &baseline, args.tolerance);
        if msgs.is_empty() {
            println!(
                "check vs {path}: ok ({} pairs within {:.0}% tolerance)",
                baseline.len(),
                args.tolerance * 100.0
            );
        } else {
            for m in &msgs {
                eprintln!("REGRESSION: {m}");
            }
            std::process::exit(1);
        }
    }
}
