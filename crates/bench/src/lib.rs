//! Benchmark harness crate: all content lives in `benches/`, one file
//! per paper table/figure plus codec microbenches and the Table III
//! scaling ablation. Run `cargo bench --workspace`.
