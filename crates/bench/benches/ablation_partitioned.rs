//! Ablation for the paper's future work #1: partitioned-matrix PCA/SVD.
//!
//! Measures how the block count trades compression overhead (wall time)
//! against compression ratio. The paper hypothesizes partitioning
//! "further reduce[s] the compression overhead"; this bench quantifies
//! it: the SVD's O(m²n) term shrinks by the block count and the blocks
//! run in parallel, while the ratio degrades only mildly because each
//! block keeps its own basis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use std::time::Instant;

fn print_reproduction() {
    println!("\n=== Partitioned dimension reduction ablation (size = Small) ===");
    println!(
        "{:<14} {:<14} {:>7} {:>10} {:>10}",
        "dataset", "method", "blocks", "ratio", "time (s)"
    );
    for kind in [DatasetKind::Heat3d, DatasetKind::Yf17Temp] {
        let field = generate(kind, SizeClass::Small).full;
        type MakeModel = fn(usize) -> ReducedModelKind;
        let methods: [(&str, MakeModel); 2] = [
            ("PCA-blocked", ReducedModelKind::PcaBlocked),
            ("SVD-blocked", ReducedModelKind::SvdBlocked),
        ];
        for (label, mk) in methods {
            for blocks in [1usize, 2, 4, 8, 16] {
                let cfg = PipelineConfig::sz(mk(blocks)).with_scan_1d(true);
                let t0 = Instant::now();
                let art = Pipeline::from_config(cfg).compress(&field);
                let dt = t0.elapsed().as_secs_f64();
                println!(
                    "{:<14} {:<14} {:>7} {:>10.2} {:>10.4}",
                    kind.name(),
                    label,
                    blocks,
                    art.report.ratio(),
                    dt
                );
            }
        }
        // The sketch-based fast path for comparison.
        let cfg = PipelineConfig::sz(ReducedModelKind::SvdRandomized).with_scan_1d(true);
        let t0 = Instant::now();
        let art = Pipeline::from_config(cfg).compress(&field);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{:<14} {:<14} {:>7} {:>10.2} {:>10.4}",
            kind.name(),
            "SVD-randomized",
            "-",
            art.report.ratio(),
            dt
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Yf17Temp, SizeClass::Small).full;
    let mut g = c.benchmark_group("partitioned");
    g.sample_size(10);
    for blocks in [1usize, 4, 16] {
        let cfg = PipelineConfig::sz(ReducedModelKind::SvdBlocked(blocks)).with_scan_1d(true);
        g.bench_with_input(BenchmarkId::new("svd_blocked", blocks), &cfg, |b, cfg| {
            b.iter(|| Pipeline::from_config(*cfg).compress(std::hint::black_box(&field)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
