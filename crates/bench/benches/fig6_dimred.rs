//! Fig. 6 / 7 / 8 / 9 / 10 bench: regenerates the dimension-reduction
//! grid (ratios, representation sizes, RMSE, spectra) and times PCA and
//! SVD preconditioning.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_cli::experiments::dimred::{dimred_grid, fig7, fig8};
use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};

fn print_reproduction() {
    println!("\n=== Fig. 6 / 9 / 10 reproduction (size = Small) ===");
    println!(
        "{:<14} {:<9} {:<5} {:>8} {:>11} {:>12} {:>4}",
        "dataset", "method", "codec", "ratio", "rep bytes", "RMSE", "k"
    );
    for r in dimred_grid(SizeClass::Small) {
        println!(
            "{:<14} {:<9} {:<5} {:>8.2} {:>11} {:>12.3e} {:>4}",
            r.dataset, r.method, r.codec, r.ratio, r.rep_bytes, r.rmse, r.k
        );
    }
    println!("\n=== Fig. 7 (PCA variance proportions) ===");
    for r in fig7(SizeClass::Small) {
        let p: Vec<String> = r.proportions.iter().map(|v| format!("{v:.3}")).collect();
        println!("{:<14} [{}] k95={}", r.dataset, p.join(", "), r.k95);
    }
    println!("\n=== Fig. 8 (SVD singular-value proportions) ===");
    for r in fig8(SizeClass::Small) {
        let p: Vec<String> = r.proportions.iter().map(|v| format!("{v:.3}")).collect();
        println!("{:<14} [{}] k95={}", r.dataset, p.join(", "), r.k95);
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Laplace, SizeClass::Small).full;
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Bytes(field.nbytes() as u64));
    for (name, model) in [
        ("pca_sz", ReducedModelKind::Pca),
        ("svd_sz", ReducedModelKind::Svd),
        ("wavelet_sz", ReducedModelKind::Wavelet),
    ] {
        let cfg = PipelineConfig::sz(model).with_scan_1d(true);
        g.bench_function(name, |b| {
            b.iter(|| Pipeline::from_config(cfg).compress(std::hint::black_box(&field)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
