//! Fig. 1 + Table II bench: regenerates the full/reduced data
//! characteristics and times the statistics pipeline.
//!
//! The printed block is the reproduction record for Fig. 1 (see
//! EXPERIMENTS.md); the timed section measures the characteristics
//! computation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_cli::experiments::characteristics::{fig1, table2};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use lrm_stats::DataCharacteristics;

fn print_reproduction() {
    println!("\n=== Fig. 1 reproduction (size = Small) ===");
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "dataset", "ent(full)", "ent(red)", "mean(full)", "mean(red)", "corr(full)", "corr(red)", "KS"
    );
    for r in fig1(SizeClass::Small) {
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>10.2} {:>10.2} {:>10.3} {:>10.3} {:>6.3}",
            r.dataset,
            r.full.byte_entropy,
            r.reduced.byte_entropy,
            r.full.byte_mean,
            r.reduced.byte_mean,
            r.full.serial_correlation,
            r.reduced.serial_correlation,
            r.ks
        );
    }
    let t = table2(SizeClass::Small);
    println!("\n=== Table II reproduction (size = Small) ===");
    println!(
        "full:    n={}³ steps={} dt={:.3e} ent={:.4} mean={:.2} corr={:.4}",
        t.full_n, t.full_steps, t.full_dt, t.full_stats.byte_entropy, t.full_stats.byte_mean,
        t.full_stats.serial_correlation
    );
    println!(
        "reduced: n={}² steps={} dt={:.3e} ent={:.4} mean={:.2} corr={:.4}",
        t.reduced_n, t.reduced_steps, t.reduced_dt, t.reduced_stats.byte_entropy,
        t.reduced_stats.byte_mean, t.reduced_stats.serial_correlation
    );
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Astro, SizeClass::Small).full;
    let mut g = c.benchmark_group("fig1");
    g.sample_size(20);
    g.bench_function("data_characteristics_astro_small", |b| {
        b.iter(|| DataCharacteristics::of(std::hint::black_box(&field.data)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
