//! Codec microbenchmarks: raw compress/decompress throughput of the
//! SZ-like, ZFP-like, and FPC substrates on a realistic field. These are
//! not paper figures; they document the substrate's absolute speeds,
//! which Table IV(b)'s calibration consumes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lrm_compress::{Codec, Fpc, Sz, Zfp};
use lrm_datasets::{generate, DatasetKind, SizeClass};

fn bench(c: &mut Criterion) {
    let field = generate(DatasetKind::Astro, SizeClass::Small).full;
    let shape = field.shape;
    let data = &field.data;

    let mut g = c.benchmark_group("codec_compress");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(field.nbytes() as u64));
    let sz = Sz::block_rel(1e-5);
    let zfp = Zfp::fixed_precision(16);
    let fpc = Fpc::new(20);
    g.bench_function("sz_blockrel_1e5", |b| {
        b.iter(|| sz.compress(std::hint::black_box(data), shape))
    });
    g.bench_function("zfp_fp16", |b| {
        b.iter(|| zfp.compress(std::hint::black_box(data), shape))
    });
    g.bench_function("fpc_l20", |b| {
        b.iter(|| fpc.compress(std::hint::black_box(data), shape))
    });
    g.finish();

    let mut g = c.benchmark_group("codec_decompress");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(field.nbytes() as u64));
    let cs = sz.compress(data, shape);
    let cz = zfp.compress(data, shape);
    let cf = fpc.compress(data, shape);
    g.bench_function("sz_blockrel_1e5", |b| {
        b.iter(|| sz.decompress(std::hint::black_box(&cs), shape))
    });
    g.bench_function("zfp_fp16", |b| {
        b.iter(|| zfp.decompress(std::hint::black_box(&cz), shape))
    });
    g.bench_function("fpc_l20", |b| {
        b.iter(|| fpc.decompress(std::hint::black_box(&cf), shape))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
