//! Fig. 11 bench: regenerates the ratio-vs-RMSE sweep (ZFP precision 8
//! to 32) and times one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_cli::experiments::rate_distortion::fig11_datasets;
use lrm_core::{Pipeline, LossyCodec, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};

fn print_reproduction() {
    println!("\n=== Fig. 11 reproduction (size = Small) ===");
    println!(
        "{:<14} {:<9} {:>5} {:>12} {:>8}",
        "dataset", "method", "prec", "RMSE", "ratio"
    );
    // The paper shows all nine; print the four panels with the clearest
    // crossovers plus Fish (the counter-example) to keep output readable.
    for kind in [
        DatasetKind::Heat3d,
        DatasetKind::Laplace,
        DatasetKind::Astro,
        DatasetKind::SedovPres,
        DatasetKind::Fish,
    ] {
        for p in fig11_datasets(SizeClass::Small, &[kind]) {
            println!(
                "{:<14} {:<9} {:>5} {:>12.3e} {:>8.2}",
                p.dataset, p.method, p.precision, p.rmse, p.ratio
            );
        }
        println!();
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Laplace, SizeClass::Small).full;
    let cfg = PipelineConfig {
        model: ReducedModelKind::Pca,
        orig: LossyCodec::ZfpPrecision(16),
        delta: LossyCodec::ZfpPrecision(8),
        variance_fraction: 0.95,
        theta_fraction: 0.05,
        scan_1d: true,
    };
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("pca_zfp16_laplace_small", |b| {
        b.iter(|| Pipeline::from_config(cfg).compress(std::hint::black_box(&field)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
