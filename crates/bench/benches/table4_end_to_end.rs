//! Table IV bench: the end-to-end compression + I/O accounting (modeled
//! and measured variants) plus a live run of the staging pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_cli::experiments::end_to_end::{staging_demo, table4_measured, table4_modeled};
use lrm_datasets::SizeClass;

fn print_reproduction() {
    println!("\n=== Table IV (a): paper inputs through the storage model ===");
    println!("{:<28} {:>12} {:>10} {:>10}", "Method", "Compr (s)", "I/O (s)", "Total (s)");
    for r in table4_modeled() {
        println!(
            "{:<28} {:>12} {:>10.2} {:>10.2}",
            r.label,
            r.compression_time
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "N/A".into()),
            r.io_time,
            r.total()
        );
    }
    println!("\n=== Table IV (b): measured codecs, Titan-ratio-calibrated I/O model ===");
    println!("{:<28} {:>12} {:>10} {:>10}", "Method", "Compr (s)", "I/O (s)", "Total (s)");
    for r in table4_measured(SizeClass::Small, 64) {
        println!(
            "{:<28} {:>12} {:>10.4} {:>10.4}",
            r.label,
            r.compression_time
                .map(|t| format!("{t:.4}"))
                .unwrap_or_else(|| "N/A".into()),
            r.io_time,
            r.total()
        );
    }
    let demo = staging_demo(SizeClass::Small, 4);
    println!(
        "\nlive staging: {} snapshots, app blocked {:.4}s of {:.4}s, {} -> {} bytes",
        demo.snapshots, demo.app_blocked_s, demo.staging_total_s, demo.raw_bytes, demo.stored_bytes
    );
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("staging_pipeline_tiny_x4", |b| {
        b.iter(|| staging_demo(SizeClass::Tiny, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
