//! Ablation: 2-D (matrix-view) vs 3-D Haar wavelet reduced models on the
//! volumetric datasets. An extension beyond the paper: the paper flattens
//! every field into a matrix before the wavelet transform, discarding
//! z-correlation that the separable 3-D transform keeps.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use lrm_stats::rmse;
use lrm_wavelet::{WaveletModel, WaveletModel3d};

fn print_reproduction() {
    println!("\n=== Wavelet 2-D (paper) vs 3-D (extension) on volumetric data ===");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "nnz(2D)", "nnz(3D)", "bytes(2D)", "bytes(3D)", "rmse(2D)", "rmse(3D)"
    );
    for kind in [DatasetKind::Heat3d, DatasetKind::Astro, DatasetKind::SedovPres, DatasetKind::Yf17Temp] {
        let field = generate(kind, SizeClass::Small).full;
        let [nx, ny, nz] = field.shape.dims;
        let (m, n) = field.matrix_dims();
        let m2 = WaveletModel::fit(&field.data, m, n, 0.05);
        let m3 = WaveletModel3d::fit(&field.data, nx, ny, nz, 0.05);
        let r2 = rmse(&field.data, &m2.reconstruct());
        let r3 = rmse(&field.data, &m3.reconstruct());
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12.3e} {:>12.3e}",
            kind.name(),
            m2.coeffs.nnz(),
            m3.coeffs.nnz(),
            m2.representation_bytes(),
            m3.representation_bytes(),
            r2,
            r3
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Astro, SizeClass::Small).full;
    let [nx, ny, nz] = field.shape.dims;
    let (m, n) = field.matrix_dims();
    let mut g = c.benchmark_group("wavelet_dims");
    g.sample_size(10);
    g.bench_function("fit_2d", |b| {
        b.iter(|| WaveletModel::fit(std::hint::black_box(&field.data), m, n, 0.05))
    });
    g.bench_function("fit_3d", |b| {
        b.iter(|| WaveletModel3d::fit(std::hint::black_box(&field.data), nx, ny, nz, 0.05))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
