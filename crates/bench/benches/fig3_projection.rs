//! Fig. 3 + Fig. 4 bench: regenerates the projection-method compression
//! ratios and times the one-base pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_cli::experiments::projection::{fig3, fig4};
use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};

fn print_reproduction() {
    println!("\n=== Fig. 3 reproduction (size = Small, 10 outputs) ===");
    println!("{:<8} {:<10} {:<11} {:>8}", "dataset", "compressor", "method", "ratio");
    for r in fig3(SizeClass::Small, 10) {
        println!(
            "{:<8} {:<10} {:<11} {:>8.2}",
            r.dataset, r.compressor, r.method, r.ratio
        );
    }
    println!("\n=== Fig. 4 reproduction (improvement vs compressibility) ===");
    println!("{:<8} {:>16} {:>14}", "dataset", "ZFP ratio (orig)", "improvement");
    for p in fig4(SizeClass::Small, 10) {
        println!("{:<8} {:>16.2} {:>14.2}", p.dataset, p.zfp_ratio, p.improvement);
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Heat3d, SizeClass::Small).full;
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Bytes(field.nbytes() as u64));
    for (name, model) in [
        ("direct_sz", ReducedModelKind::Direct),
        ("one_base_sz", ReducedModelKind::OneBase),
        ("multi_base_sz", ReducedModelKind::MultiBase(4)),
    ] {
        let cfg = PipelineConfig::sz(model).with_scan_1d(true);
        g.bench_function(name, |b| {
            b.iter(|| Pipeline::from_config(cfg).compress(std::hint::black_box(&field)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
