//! Fig. 12 bench: compression/decompression overhead of the
//! preconditioners, measured with Criterion (the statistically careful
//! version of the Fig. 12 bars).

use criterion::{criterion_group, criterion_main, Criterion};
use lrm_cli::experiments::overhead::fig12;
use lrm_core::{Pipeline, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};

fn print_reproduction() {
    println!("\n=== Fig. 12 reproduction (size = Small, avg over 9 datasets) ===");
    println!(
        "{:<10} {:>13} {:>9} {:>15} {:>9}",
        "method", "compress (s)", "x vs ZFP", "decompress (s)", "x vs ZFP"
    );
    for r in fig12(SizeClass::Small) {
        println!(
            "{:<10} {:>13.4} {:>9.2} {:>15.4} {:>9.2}",
            r.method, r.compress_s, r.compress_rel, r.decompress_s, r.decompress_rel
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let field = generate(DatasetKind::Yf17Temp, SizeClass::Small).full;
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Bytes(field.nbytes() as u64));
    for (name, model) in [
        ("compress_direct_zfp", ReducedModelKind::Direct),
        ("compress_pca_zfp", ReducedModelKind::Pca),
        ("compress_svd_zfp", ReducedModelKind::Svd),
        ("compress_wavelet_zfp", ReducedModelKind::Wavelet),
    ] {
        let cfg = PipelineConfig::zfp(model);
        g.bench_function(name, |b| {
            b.iter(|| Pipeline::from_config(cfg).compress(std::hint::black_box(&field)))
        });
    }
    // Decompression side.
    for (name, model) in [
        ("decompress_direct_zfp", ReducedModelKind::Direct),
        ("decompress_pca_zfp", ReducedModelKind::Pca),
    ] {
        let pipeline = Pipeline::from_config(PipelineConfig::zfp(model));
        let art = pipeline.compress(&field);
        g.bench_function(name, |b| {
            b.iter(|| pipeline.reconstruct(std::hint::black_box(&art.bytes)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
