//! Table III ablation: measured scaling of the three dimension-reduction
//! transforms against their analytic complexities.
//!
//! | method  | complexity (paper)     |
//! |---------|------------------------|
//! | PCA     | O(mn² + n³)            |
//! | SVD     | O(m²n + mn² + n³)      |
//! | Wavelet | O(4 m n² log n)        |
//!
//! The bench sweeps the column count `n` at fixed `m` and prints measured
//! times; PCA/SVD should grow superlinearly in `n`, Wavelet roughly
//! n·log n per element — confirming the table's ordering empirically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrm_linalg::{svd, Matrix, Pca};
use lrm_wavelet::WaveletModel;

fn test_matrix(m: usize, n: usize) -> Matrix {
    Matrix::from_fn(m, n, |r, c| {
        ((r as f64) * 0.11).sin() * ((c as f64) * 0.07).cos()
            + 0.1 * (((r * 31 + c * 17) % 97) as f64 / 97.0)
    })
}

fn bench(c: &mut Criterion) {
    let m = 512;
    let mut g = c.benchmark_group("table3_scaling");
    g.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let mat = test_matrix(m, n);
        g.bench_with_input(BenchmarkId::new("pca_fit", n), &mat, |b, mat| {
            b.iter(|| Pca::fit(std::hint::black_box(mat)))
        });
        g.bench_with_input(BenchmarkId::new("svd", n), &mat, |b, mat| {
            b.iter(|| svd(std::hint::black_box(mat)))
        });
        let flat = mat.as_slice().to_vec();
        g.bench_with_input(BenchmarkId::new("wavelet_fit", n), &flat, |b, flat| {
            b.iter(|| WaveletModel::fit(std::hint::black_box(flat), m, n, 0.05))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
