//! Bounded TCP service: accept loop, backpressure, worker dispatch.
//!
//! ```text
//!             accept loop (serve thread)
//!   TcpListener ──► inflight < max? ──► queue ──► WorkerPool workers
//!        │               │ no                        │
//!        │               └──► Busy frame, close      └──► handle one
//!        │                                                request,
//!        └── closes after Shutdown, workers drain the     reply, close
//!            queue before serve() returns
//! ```
//!
//! Backpressure is explicit and typed: a connection beyond
//! [`ServerConfig::max_inflight`] receives a `Busy` error frame (never a
//! hang or a silent drop), a payload beyond
//! [`ServerConfig::max_payload`] receives `TooLarge` before the payload
//! is read, and a request that cannot be read or served within
//! [`ServerConfig::deadline`] receives `Timeout`. A `Shutdown` request
//! flips the shutdown flag: the accept loop stops taking connections,
//! workers drain everything already accepted, and [`Server::serve`]
//! returns.
//!
//! Each connection carries exactly one request and one response frame
//! (connect-per-request, like HTTP/1.0); the protocol needs no request
//! IDs or reordering logic, and "in-flight" is simply the number of
//! accepted-but-unanswered connections.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use lrm_core::{
    default_candidates, selection::SelectionOptions, Pipeline, PipelineConfig, ReducedModelKind,
};
use lrm_datasets::Field;
use lrm_parallel::WorkerPool;
use lrm_stats::{byte_entropy, bytes_of, Summary};

use crate::protocol::{
    FieldStatsReply, Frame, Request, Response, SelectReply, ServerErrorKind, TrialReport,
    WireReport, HEADER_LEN,
};

/// Tunable limits for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads serving requests (`0` = one per available core).
    pub threads: usize,
    /// Maximum accepted-but-unanswered connections; beyond this the
    /// acceptor replies with a typed `Busy` frame and closes.
    pub max_inflight: usize,
    /// Maximum request payload in bytes; larger frames receive
    /// `TooLarge` before the payload is read.
    pub max_payload: usize,
    /// Per-request deadline covering socket reads and execution; an
    /// overrun receives a `Timeout` frame.
    pub deadline: Duration,
    /// Chunk count used when a compress request leaves it at `0`.
    pub default_chunks: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_inflight: 32,
            max_payload: 256 << 20,
            deadline: Duration::from_secs(30),
            default_chunks: 1,
        }
    }
}

/// Counters reported by [`Server::serve`] after shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests pulled off the queue and answered (any response kind).
    pub served: u64,
    /// Connections refused with a `Busy` frame.
    pub rejected_busy: u64,
}

/// Whether a handled connection asked the server to stop.
enum Handled {
    Normal,
    ShutdownRequested,
}

/// Queue + flags shared between the acceptor and the workers.
struct Shared {
    queue: Mutex<std::collections::VecDeque<TcpStream>>,
    available: Condvar,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-serving compression service.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port `0` for an ephemeral test port).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, config })
    }

    /// The bound address (the real port when bound to port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop and worker pool until a `Shutdown` request
    /// arrives, then drains in-flight requests and returns counters.
    ///
    /// The acceptor runs on the calling thread; workers run on the
    /// `lrm-parallel` [`WorkerPool`] inside a [`std::thread::scope`], so
    /// every thread is joined before this returns.
    pub fn serve(self) -> std::io::Result<ServerStats> {
        let threads = if self.config.threads == 0 {
            lrm_parallel::available_threads()
        } else {
            self.config.threads
        };
        let pool = WorkerPool::new(threads);
        let shared = Shared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            available: Condvar::new(),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        };
        self.listener.set_nonblocking(true)?;

        let mut rejected_busy = 0u64;
        let served = std::thread::scope(|s| {
            let workers = s.spawn(|| {
                pool.run((0..threads).collect::<Vec<_>>(), |_, _| {
                    worker_loop(&shared, &self.config)
                })
            });

            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if shared.inflight.load(Ordering::SeqCst) >= self.config.max_inflight {
                            rejected_busy += 1;
                            reject_busy(stream, &self.config);
                            continue;
                        }
                        shared.inflight.fetch_add(1, Ordering::SeqCst);
                        let mut q = shared.queue.lock().expect("connection queue poisoned");
                        q.push_back(stream);
                        drop(q);
                        shared.available.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted
                        // handshake); keep serving.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }

            // Listener closes when `self` drops; workers drain whatever
            // was accepted before the flag flipped.
            let per_worker = workers.join().unwrap_or_default();
            per_worker.into_iter().sum::<u64>()
        });

        Ok(ServerStats {
            served,
            rejected_busy,
        })
    }
}

/// Sends a `Busy` frame on a connection the acceptor refuses to queue.
fn reject_busy(mut stream: TcpStream, config: &ServerConfig) {
    // Some platforms hand accepted sockets the listener's non-blocking
    // flag; request plain blocking I/O with timeouts.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(config.deadline));
    send(
        &mut stream,
        &Response::Error {
            kind: ServerErrorKind::Busy,
            message: format!("server at max in-flight ({})", config.max_inflight),
        },
    );
    close_gracefully(stream);
}

/// Consumes whatever the peer still has in flight so the close sends
/// FIN rather than RST — an RST can destroy a response the client has
/// not read yet (the error paths reply without reading the payload).
/// Bounded by a byte budget and a short timeout.
fn close_gracefully(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut budget: usize = 256 * 1024;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    break;
                }
            }
        }
    }
}

/// One worker: pop connections until shutdown, handle each fully.
/// Returns the number of requests this worker answered.
fn worker_loop(shared: &Shared, config: &ServerConfig) -> u64 {
    let mut served = 0u64;
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("connection queue poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(20))
                    .expect("connection queue poisoned");
                q = guard;
            }
            // Guard drops here: requests never execute under the queue
            // lock.
        };
        let Some(stream) = conn else {
            return served;
        };
        let handled = handle_connection(stream, config);
        served += 1;
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        if matches!(handled, Handled::ShutdownRequested) {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.available.notify_all();
        }
    }
}

/// True for the error kinds a socket read/write timeout surfaces as.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Writes one response frame; a vanished peer is not an error worth
/// tracking (the client already gave up).
fn send(stream: &mut TcpStream, resp: &Response) {
    let _ = stream.write_all(&resp.to_frame());
}

fn timeout_response(context: &str) -> Response {
    Response::Error {
        kind: ServerErrorKind::Timeout,
        message: context.to_owned(),
    }
}

fn malformed_response(context: String) -> Response {
    Response::Error {
        kind: ServerErrorKind::Malformed,
        message: context,
    }
}

/// Serves one connection, then closes it without risking an RST.
fn handle_connection(mut stream: TcpStream, config: &ServerConfig) -> Handled {
    let handled = serve_one(&mut stream, config);
    close_gracefully(stream);
    handled
}

/// Serves one connection end to end: read a frame within the deadline,
/// enforce the payload cap, execute, reply. Every failure mode is a
/// typed error frame; a panic inside execution becomes `Internal`.
fn serve_one(stream: &mut TcpStream, config: &ServerConfig) -> Handled {
    let start = Instant::now();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.deadline));
    let _ = stream.set_write_timeout(Some(config.deadline));
    let _ = stream.set_nodelay(true);

    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = stream.read_exact(&mut header) {
        if is_timeout(&e) {
            send(
                stream,
                &timeout_response("deadline elapsed while reading the frame header"),
            );
        }
        return Handled::Normal;
    }
    let (kind, payload_len) = match Frame::parse_header(&header) {
        Ok(v) => v,
        Err(e) => {
            send(stream, &malformed_response(e.to_string()));
            return Handled::Normal;
        }
    };
    let payload_len = match usize::try_from(payload_len) {
        Ok(n) if n <= config.max_payload => n,
        _ => {
            send(
                stream,
                &Response::Error {
                    kind: ServerErrorKind::TooLarge,
                    message: format!(
                        "payload of {payload_len} bytes exceeds the {} byte limit",
                        config.max_payload
                    ),
                },
            );
            return Handled::Normal;
        }
    };
    let mut payload = vec![0u8; payload_len];
    if let Err(e) = stream.read_exact(&mut payload) {
        if is_timeout(&e) {
            send(
                stream,
                &timeout_response("deadline elapsed while reading the request payload"),
            );
        }
        return Handled::Normal;
    }
    let request = match Request::decode(kind, &payload) {
        Ok(r) => r,
        Err(e) => {
            send(stream, &malformed_response(e.to_string()));
            return Handled::Normal;
        }
    };
    drop(payload);

    if matches!(request, Request::Shutdown) {
        send(stream, &Response::ShutdownAck);
        return Handled::ShutdownRequested;
    }

    // Model/codec execution walks real numerical kernels; a panic there
    // must kill one request, not a worker thread.
    let response = match std::panic::catch_unwind(AssertUnwindSafe(|| execute(&request, config))) {
        Ok(r) => r,
        Err(_) => Response::Error {
            kind: ServerErrorKind::Internal,
            message: "request execution panicked".to_owned(),
        },
    };
    let response = if start.elapsed() > config.deadline {
        timeout_response("deadline elapsed during execution")
    } else {
        response
    };
    send(stream, &response);
    Handled::Normal
}

/// Executes one decoded request against the engine.
fn execute(request: &Request, config: &ServerConfig) -> Response {
    match request {
        Request::Ping { echo } => Response::Pong { echo: echo.clone() },
        Request::Compress(c) => {
            if c.shape.is_empty() {
                return malformed_response("compress request carries an empty field".to_owned());
            }
            let chunks = if c.chunks == 0 {
                config.default_chunks
            } else {
                c.chunks as usize
            };
            // Parallelism lives across requests (the worker pool), so
            // each pipeline runs single-threaded.
            let pipeline = Pipeline::builder()
                .model(c.model)
                .codec(c.orig)
                .delta_codec(c.delta)
                .scan_1d(c.scan_1d)
                .threads(1)
                .chunks(chunks)
                .build();
            let field = Field::new("wire", c.data.clone(), c.shape);
            let artifact = pipeline.compress(&field);
            Response::Compressed {
                report: WireReport::from_report(&artifact.report),
                artifact: artifact.bytes,
            }
        }
        Request::Decompress { artifact } => {
            match Pipeline::builder().threads(1).build().reconstruct(artifact) {
                Ok((data, shape)) => Response::Decompressed { shape, data },
                Err(e) => malformed_response(format!("artifact rejected: {e}")),
            }
        }
        Request::FieldStats { shape: _, data } => {
            let s = Summary::of(data);
            Response::Stats(FieldStatsReply {
                count: s.count(),
                min: s.min(),
                max: s.max(),
                mean: s.mean(),
                variance: s.variance(),
                byte_entropy: byte_entropy(&bytes_of(data)),
            })
        }
        Request::SelectModel(sel) => {
            if sel.shape.is_empty() {
                return malformed_response("select request carries an empty field".to_owned());
            }
            let base = PipelineConfig {
                orig: sel.orig,
                delta: sel.delta,
                ..PipelineConfig::sz(ReducedModelKind::Direct)
            };
            let options = SelectionOptions {
                exhaustive: sel.exhaustive,
                ..SelectionOptions::default()
            };
            let field = Field::new("wire", sel.data.clone(), sel.shape);
            match lrm_core::selection::select_best_model_with(
                &field,
                &default_candidates(),
                &base,
                &options,
            ) {
                Some(outcome) => Response::Selected(SelectReply {
                    winner: outcome.winner,
                    sampled: outcome.sampled,
                    trials: outcome
                        .results
                        .iter()
                        .map(|r| TrialReport {
                            model: r.model,
                            raw_bytes: r.report.raw_bytes as u64,
                            total_bytes: r.report.total_bytes() as u64,
                        })
                        .collect(),
                }),
                None => Response::Error {
                    kind: ServerErrorKind::Internal,
                    message: "no applicable candidate model".to_owned(),
                },
            }
        }
        // Handled before execute(); answered again defensively.
        Request::Shutdown => Response::ShutdownAck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.max_inflight > 0);
        assert!(c.max_payload >= 1 << 20);
        assert!(c.deadline >= Duration::from_secs(1));
        assert!(c.default_chunks >= 1);
    }

    #[test]
    fn bind_reports_ephemeral_port() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        assert_ne!(addr.port(), 0);
    }
}
