//! Event-driven TCP service: readiness loop, pipelining, worker dispatch.
//!
//! ```text
//!        event loop (serve thread)                 WorkerPool
//!   poll(listener, wake, conns…)                  ┌──────────┐
//!        │ readable                               │ worker 0 │
//!        ├── accept → Conn (persistent)    jobs ─►│ worker 1 │
//!        ├── read → frames → admit/dispatch ──────│   …      │
//!        │            │ over limits               └────┬─────┘
//!        │            └──► typed Busy/TooLarge          │ done +
//!        │ writable                                     ▼ wake byte
//!        └── flush out-buffer  ◄── responses ── completion queue
//! ```
//!
//! The loop owns every socket; workers own every piece of codec work;
//! the completion queue (plus a loopback wake byte) marries them. A
//! connection stays alive across requests: v2 frames carry a request id,
//! many requests may be in flight per connection, and responses are
//! written in completion order — out of order relative to submission. A
//! v1 frame keeps its one-request-per-connection contract: the response
//! is v1-framed and the connection closes after it flushes.
//!
//! Backpressure is explicit, typed, and **per-request**: a
//! request-starting frame beyond [`ServerConfig::max_inflight`] (global)
//! or [`ServerConfig::max_pipeline_depth`] (per connection) receives a
//! `Busy` error frame under its own request id (never a hang or a silent
//! drop), a payload beyond [`ServerConfig::max_payload`] receives
//! `TooLarge` before the payload is read, and a request that cannot be
//! read or served within [`ServerConfig::deadline`] receives `Timeout`.
//! Whole connections are only refused (with a v1 `Busy` frame) beyond
//! [`ServerConfig::max_connections`].
//!
//! Chunk-streamed requests (`Begin`/`Chunk`/`End`) overlap compute with
//! the upload: each completed z-slab of a streamed compress is
//! dispatched to the pool while later chunks are still arriving, and
//! the slab artifacts are assembled into the same chunked container the
//! unary path produces — byte-identical output.
//!
//! A `Shutdown` request flips the loop into draining: the listener
//! closes, new request-starting frames are refused with `Busy`, but
//! in-flight work — including open streams, whose remaining `Chunk`/
//! `End` frames are still accepted — completes and flushes before
//! [`Server::serve`] returns.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown as NetShutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use lrm_core::{
    default_candidates, selection::SelectionOptions, Pipeline, PipelineConfig, ReducedModelKind,
};
use lrm_datasets::Field;
use lrm_io::{ChunkEntry, ChunkedArtifact};
use lrm_parallel::{Decomposition, WorkerPool};
use lrm_stats::{byte_entropy, bytes_of, Summary};

use crate::poll::{fd_of, poll, PollFd};
use crate::protocol::{
    model_to_tag, CompressStreamMeta, FieldStatsReply, Frame, FrameHeader, Request, Response,
    SelectReply, ServerErrorKind, TrialReport, WireReport, PROTOCOL_V1, REQ_STREAM_CHUNK,
    REQ_STREAM_END,
};

/// Tunable limits for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads serving requests (`0` = one per available core).
    pub threads: usize,
    /// Maximum request-starting frames awaiting a response across all
    /// connections; beyond this a request receives a typed `Busy`
    /// frame.
    pub max_inflight: usize,
    /// Maximum request payload in bytes; larger frames receive
    /// `TooLarge` before the payload is read.
    pub max_payload: usize,
    /// Per-request deadline covering socket reads and execution; an
    /// overrun receives a `Timeout` frame.
    pub deadline: Duration,
    /// Chunk count used when a compress request leaves it at `0`.
    pub default_chunks: usize,
    /// Maximum simultaneously open connections; beyond this a new
    /// connection is answered with a v1 `Busy` frame and closed.
    pub max_connections: usize,
    /// Maximum in-flight requests a single connection may pipeline;
    /// beyond this a request receives `Busy` while the connection
    /// stays open.
    pub max_pipeline_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_inflight: 32,
            max_payload: 256 << 20,
            deadline: Duration::from_secs(30),
            default_chunks: 1,
            max_connections: 1024,
            max_pipeline_depth: 64,
        }
    }
}

/// Fluent constructor for a bound [`Server`]: address plus every
/// [`ServerConfig`] knob, replacing the growing positional argument
/// list. `lrm-cli serve` mirrors these as flags.
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    addr: String,
    config: ServerConfig,
}

impl ServerBuilder {
    /// The address to bind (default `127.0.0.1:0`, an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Worker threads (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Global in-flight request limit.
    pub fn max_inflight(mut self, max_inflight: usize) -> Self {
        self.config.max_inflight = max_inflight;
        self
    }

    /// Request payload byte cap.
    pub fn max_payload(mut self, max_payload: usize) -> Self {
        self.config.max_payload = max_payload;
        self
    }

    /// Per-request deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Default z-slab chunk count for compress requests that leave it
    /// at `0`.
    pub fn default_chunks(mut self, default_chunks: usize) -> Self {
        self.config.default_chunks = default_chunks;
        self
    }

    /// Simultaneous connection cap.
    pub fn max_connections(mut self, max_connections: usize) -> Self {
        self.config.max_connections = max_connections;
        self
    }

    /// Per-connection pipelining depth cap.
    pub fn max_pipeline_depth(mut self, max_pipeline_depth: usize) -> Self {
        self.config.max_pipeline_depth = max_pipeline_depth;
        self
    }

    /// The accumulated configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Binds the listener and returns the server.
    pub fn bind(self) -> std::io::Result<Server> {
        Server::bind(self.addr.as_str(), self.config)
    }
}

/// Counters reported by [`Server::serve`] after shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Responses written for accepted requests (any kind except `Busy`).
    pub served: u64,
    /// Requests (or whole connections) refused with a `Busy` frame.
    pub rejected_busy: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// A bound-but-not-yet-serving compression service.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port `0` for an ephemeral test port).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, config })
    }

    /// Starts a builder with the default config on an ephemeral
    /// loopback port.
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            addr: "127.0.0.1:0".to_owned(),
            config: ServerConfig::default(),
        }
    }

    /// The bound address (the real port when bound to port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the event loop and worker pool until a `Shutdown` request
    /// arrives, then drains in-flight requests and returns counters.
    ///
    /// The event loop runs on the calling thread; workers run on the
    /// `lrm-parallel` [`WorkerPool`] inside a [`std::thread::scope`], so
    /// every thread is joined before this returns.
    pub fn serve(self) -> std::io::Result<ServerStats> {
        let threads = if self.config.threads == 0 {
            lrm_parallel::available_threads()
        } else {
            self.config.threads
        };
        let pool = WorkerPool::new(threads);
        let config = self.config;
        self.listener.set_nonblocking(true)?;

        // Self-connected loopback pair: workers write one byte to nudge
        // the poll loop when a completion lands.
        let (wake_tx, wake_rx) = wake_pair()?;
        let shared = Shared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            done: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            wake_tx,
        };

        std::thread::scope(|s| {
            let workers = s.spawn(|| {
                pool.run((0..threads).collect::<Vec<_>>(), |_, _| {
                    worker_loop(&shared, &config)
                })
            });
            let mut ev = EventLoop {
                config,
                shared: &shared,
                listener: Some(self.listener),
                wake_rx,
                conns: HashMap::new(),
                next_conn: 0,
                global_pending: 0,
                draining: false,
                served: 0,
                rejected_busy: 0,
                connections: 0,
                processing_id: 0,
            };
            let result = ev.run();
            shared.stop.store(true, Ordering::SeqCst);
            shared.available.notify_all();
            let _ = workers.join();
            result
        })
    }
}

/// Builds the loopback socket pair the workers use to wake the poll
/// loop. Both ends are nonblocking: a full wake buffer just means a
/// wake is already pending.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((tx, rx))
}

// ---------------------------------------------------------------------------
// Worker side: jobs, completions
// ---------------------------------------------------------------------------

/// One unit of codec work dispatched to the pool.
struct Job {
    conn: u64,
    request_id: u64,
    v1: bool,
    accepted: Instant,
    work: Work,
}

enum Work {
    /// A whole decoded request (ping, compress, …).
    Unary(Request),
    /// One z-slab of a chunk-streamed compress.
    Slab {
        index: usize,
        z0: usize,
        dims: [usize; 3],
        data: Vec<f64>,
        meta: CompressStreamMeta,
    },
}

/// A finished unit of work, headed back to the event loop.
struct Done {
    conn: u64,
    request_id: u64,
    v1: bool,
    accepted: Instant,
    result: DoneResult,
}

enum DoneResult {
    Response(Response),
    Slab {
        index: usize,
        z0: u32,
        dims: [u32; 3],
        report: WireReport,
        bytes: Vec<u8>,
    },
}

/// Queues + flags shared between the event loop and the workers.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    done: Mutex<Vec<Done>>,
    stop: AtomicBool,
    wake_tx: TcpStream,
}

impl Shared {
    /// Enqueues a job and wakes one worker.
    fn dispatch(&self, job: Job) {
        let mut q = self.jobs.lock().expect("job queue poisoned");
        q.push_back(job);
        drop(q);
        self.available.notify_one();
    }
}

/// One worker: pop jobs until the stop flag, execute each, push the
/// completion, nudge the poll loop.
fn worker_loop(shared: &Shared, config: &ServerConfig) {
    loop {
        let job = {
            let mut q = shared.jobs.lock().expect("job queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(20))
                    .expect("job queue poisoned");
                q = guard;
            }
            // Guard drops here: jobs never execute under the queue lock.
        };
        let Some(job) = job else {
            return;
        };
        // Model/codec execution walks real numerical kernels; a panic
        // there must kill one request, not a worker thread.
        let result = match std::panic::catch_unwind(AssertUnwindSafe(|| run_work(job.work, config)))
        {
            Ok(r) => r,
            Err(_) => DoneResult::Response(Response::Error {
                kind: ServerErrorKind::Internal,
                message: "request execution panicked".to_owned(),
            }),
        };
        let done = Done {
            conn: job.conn,
            request_id: job.request_id,
            v1: job.v1,
            accepted: job.accepted,
            result,
        };
        {
            let mut d = shared.done.lock().expect("completion queue poisoned");
            d.push(done);
        }
        // Nonblocking: a full pipe means a wake is already pending.
        let _ = (&shared.wake_tx).write(&[1]);
    }
}

fn run_work(work: Work, config: &ServerConfig) -> DoneResult {
    match work {
        Work::Unary(request) => DoneResult::Response(execute(&request, config)),
        Work::Slab {
            index,
            z0,
            dims,
            data,
            meta,
        } => {
            // Per-slab compression identical to the unary chunked path:
            // a single-chunk pipeline over the slab field (names are not
            // serialized, so the artifact bytes match exactly).
            let pipeline = Pipeline::builder()
                .model(meta.model)
                .codec(meta.orig)
                .delta_codec(meta.delta)
                .scan_1d(meta.scan_1d)
                .threads(1)
                .chunks(1)
                .build();
            let field = Field::new("stream", data, lrm_compress::Shape { dims });
            let artifact = pipeline.compress(&field);
            DoneResult::Slab {
                index,
                z0: z0 as u32,
                dims: [dims[0] as u32, dims[1] as u32, dims[2] as u32],
                report: WireReport::from_report(&artifact.report),
                bytes: artifact.bytes,
            }
        }
    }
}

/// Executes one decoded unary request against the engine.
fn execute(request: &Request, config: &ServerConfig) -> Response {
    match request {
        Request::Ping { echo } => Response::Pong { echo: echo.clone() },
        Request::Compress(c) => {
            if c.shape.is_empty() {
                return malformed_response("compress request carries an empty field".to_owned());
            }
            let chunks = if c.chunks == 0 {
                config.default_chunks
            } else {
                c.chunks as usize
            };
            // Parallelism lives across requests (the worker pool), so
            // each pipeline runs single-threaded.
            let pipeline = Pipeline::builder()
                .model(c.model)
                .codec(c.orig)
                .delta_codec(c.delta)
                .scan_1d(c.scan_1d)
                .threads(1)
                .chunks(chunks)
                .build();
            let field = Field::new("wire", c.data.clone(), c.shape);
            let artifact = pipeline.compress(&field);
            Response::Compressed {
                report: WireReport::from_report(&artifact.report),
                artifact: artifact.bytes,
            }
        }
        Request::Decompress { artifact } => {
            match Pipeline::builder().threads(1).build().reconstruct(artifact) {
                Ok((data, shape)) => Response::Decompressed { shape, data },
                Err(e) => malformed_response(format!("artifact rejected: {e}")),
            }
        }
        Request::FieldStats { shape: _, data } => {
            let s = Summary::of(data);
            Response::Stats(FieldStatsReply {
                count: s.count(),
                min: s.min(),
                max: s.max(),
                mean: s.mean(),
                variance: s.variance(),
                byte_entropy: byte_entropy(&bytes_of(data)),
            })
        }
        Request::SelectModel(sel) => {
            if sel.shape.is_empty() {
                return malformed_response("select request carries an empty field".to_owned());
            }
            let base = PipelineConfig {
                orig: sel.orig,
                delta: sel.delta,
                ..PipelineConfig::sz(ReducedModelKind::Direct)
            };
            let options = SelectionOptions {
                exhaustive: sel.exhaustive,
                ..SelectionOptions::default()
            };
            let field = Field::new("wire", sel.data.clone(), sel.shape);
            match lrm_core::selection::select_best_model_with(
                &field,
                &default_candidates(),
                &base,
                &options,
            ) {
                Some(outcome) => Response::Selected(SelectReply {
                    winner: outcome.winner,
                    sampled: outcome.sampled,
                    trials: outcome
                        .results
                        .iter()
                        .map(|r| TrialReport {
                            model: r.model,
                            raw_bytes: r.report.raw_bytes as u64,
                            total_bytes: r.report.total_bytes() as u64,
                        })
                        .collect(),
                }),
                None => Response::Error {
                    kind: ServerErrorKind::Internal,
                    message: "no applicable candidate model".to_owned(),
                },
            }
        }
        // Shutdown and stream framing are handled in the event loop
        // before dispatch; answered defensively here.
        Request::Shutdown => Response::ShutdownAck,
        Request::CompressStreamBegin(_)
        | Request::StreamChunk { .. }
        | Request::StreamEnd
        | Request::DecompressStreamBegin => {
            malformed_response("stream frames are not unary requests".to_owned())
        }
    }
}

fn timeout_response(context: &str) -> Response {
    Response::Error {
        kind: ServerErrorKind::Timeout,
        message: context.to_owned(),
    }
}

fn malformed_response(context: String) -> Response {
    Response::Error {
        kind: ServerErrorKind::Malformed,
        message: context,
    }
}

// ---------------------------------------------------------------------------
// Event loop side: connections, admission, framing
// ---------------------------------------------------------------------------

/// How long an answered connection lingers to drain peer bytes so the
/// close sends FIN rather than RST — an RST can destroy a response the
/// client has not read yet.
const CLOSE_GRACE: Duration = Duration::from_secs(1);

/// Byte budget for the lingering drain.
const CLOSE_BUDGET: usize = 256 * 1024;

/// Fallback poll timeout when no deadline is imminent.
const IDLE_POLL: Duration = Duration::from_millis(500);

/// A frame whose header has been accepted but whose payload is still
/// arriving. Admission (busy/too-large) already happened at header
/// time, so the payload only needs to be buffered and dispatched.
struct Accepted {
    header: FrameHeader,
    at: Instant,
    /// Whether this frame incremented the pending counters (request-
    /// starting kinds do; stream chunk/end frames ride on an already
    /// counted request).
    counted: bool,
}

/// An open chunk stream (compress or decompress) on one connection.
struct StreamState {
    /// Compress metadata; `None` marks a decompress stream.
    meta: Option<CompressStreamMeta>,
    started: Instant,
    buf: Vec<u8>,
    /// z-slab ranges for a chunked compress; empty = single dispatch at
    /// `End`.
    bounds: Vec<(usize, usize)>,
    next_slab: usize,
    done: Vec<Option<SlabOut>>,
    ended: bool,
}

struct SlabOut {
    z0: u32,
    dims: [u32; 3],
    report: WireReport,
    bytes: Vec<u8>,
}

/// Post-flush lingering state: write side already shut down.
struct Closing {
    deadline: Instant,
    budget: usize,
}

/// One live connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    written: usize,
    cur: Option<Accepted>,
    /// When the first byte of a partial header arrived.
    header_started: Option<Instant>,
    /// Payload bytes still to swallow for an already-answered frame.
    discard: u64,
    /// Request-starting frames awaiting a response.
    pending: usize,
    /// Request ids currently live on this connection (in-flight unary
    /// requests and open streams).
    live: HashSet<u64>,
    streams: HashMap<u64, StreamState>,
    /// Stream ids already answered with an error; their remaining
    /// chunk/end frames are swallowed silently.
    aborted: HashSet<u64>,
    close_after_flush: bool,
    closing: Option<Closing>,
    /// Set at shutdown for connections with a request already arriving:
    /// admission lets their in-progress frames through the drain.
    drain_grace: bool,
    eof: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            cur: None,
            header_started: None,
            discard: 0,
            pending: 0,
            live: HashSet::new(),
            streams: HashMap::new(),
            aborted: HashSet::new(),
            close_after_flush: false,
            closing: None,
            drain_grace: false,
            eof: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.written == self.out.len()
    }
}

enum Token {
    Wake,
    Listener,
    Conn(u64),
}

struct EventLoop<'a> {
    config: ServerConfig,
    shared: &'a Shared,
    listener: Option<TcpListener>,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    global_pending: usize,
    draining: bool,
    served: u64,
    rejected_busy: u64,
    connections: u64,
    /// Id of the connection currently being processed (it is removed
    /// from `conns` while its frames are parsed, so dispatched jobs
    /// carry this instead of a map lookup).
    processing_id: u64,
}

impl EventLoop<'_> {
    fn run(&mut self) -> std::io::Result<ServerStats> {
        loop {
            self.process_completions();
            self.sweep_deadlines();
            self.flush_all();
            self.cleanup();
            if self.draining && self.global_pending == 0 && self.quiescent() {
                break;
            }

            let (mut fds, tokens) = self.build_poll_set();
            poll(&mut fds, Some(self.poll_timeout()))?;

            let mut accept_ready = false;
            let mut ready: Vec<(u64, bool, bool)> = Vec::new();
            for (fd, token) in fds.iter().zip(&tokens) {
                match token {
                    Token::Wake => {
                        if fd.readable() {
                            drain_wake(&self.wake_rx);
                        }
                    }
                    Token::Listener => accept_ready = fd.readable(),
                    Token::Conn(id) => {
                        if fd.ready() {
                            ready.push((*id, fd.readable(), fd.writable()));
                        }
                    }
                }
            }
            if accept_ready {
                self.accept_connections();
            }
            for (id, readable, writable) in ready {
                if readable {
                    self.read_conn(id);
                }
                if writable {
                    self.flush_conn(id);
                }
            }
        }
        Ok(ServerStats {
            served: self.served,
            rejected_busy: self.rejected_busy,
            connections: self.connections,
        })
    }

    /// Whether every connection is at a clean boundary: nothing half
    /// read, no open stream, no pending response, output flushed. The
    /// drain exits only once this holds, so a request whose bytes were
    /// already arriving at shutdown still completes.
    fn quiescent(&self) -> bool {
        self.conns.values().all(|c| {
            c.pending == 0
                && c.streams.is_empty()
                && c.cur.is_none()
                && c.buf.is_empty()
                && c.flushed()
        })
    }

    fn build_poll_set(&self) -> (Vec<PollFd>, Vec<Token>) {
        let mut fds = vec![PollFd::new(fd_of(&self.wake_rx), true, false)];
        let mut tokens = vec![Token::Wake];
        if let Some(listener) = &self.listener {
            fds.push(PollFd::new(fd_of(listener), true, false));
            tokens.push(Token::Listener);
        }
        for (&id, conn) in &self.conns {
            let read = !conn.eof;
            let write = !conn.flushed();
            if read || write {
                fds.push(PollFd::new(fd_of(&conn.stream), read, write));
                tokens.push(Token::Conn(id));
            }
        }
        (fds, tokens)
    }

    /// The nearest deadline across partial frames, open streams, and
    /// lingering closes, as a poll timeout.
    fn poll_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut nearest: Option<Instant> = None;
        let mut consider = |t: Instant| {
            nearest = Some(match nearest {
                Some(n) if n <= t => n,
                _ => t,
            });
        };
        for conn in self.conns.values() {
            if let Some(cl) = &conn.closing {
                consider(cl.deadline);
            }
            if let Some(acc) = &conn.cur {
                consider(acc.at + self.config.deadline);
            } else if let Some(t) = conn.header_started {
                consider(t + self.config.deadline);
            }
            for st in conn.streams.values() {
                consider(st.started + self.config.deadline);
            }
        }
        match nearest {
            Some(t) => t.saturating_duration_since(now).min(IDLE_POLL),
            None => IDLE_POLL,
        }
    }

    // -- accepting ----------------------------------------------------------

    fn accept_connections(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.connections += 1;
                    if self.conns.len() >= self.config.max_connections {
                        self.rejected_busy += 1;
                        reject_connection(stream, &self.config);
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept failure (e.g. aborted handshake);
                // keep serving.
                Err(_) => return,
            }
        }
    }

    // -- reading & framing --------------------------------------------------

    fn read_conn(&mut self, id: u64) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return;
        };
        self.processing_id = id;
        let discard_only = conn.closing.is_some() || conn.close_after_flush;
        let mut tmp = [0u8; 64 * 1024];
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if discard_only {
                        if let Some(cl) = &mut conn.closing {
                            cl.budget = cl.budget.saturating_sub(n);
                            if cl.budget == 0 {
                                conn.dead = true;
                                break;
                            }
                        }
                        continue;
                    }
                    conn.buf.extend_from_slice(&tmp[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if !conn.dead && !discard_only {
            self.parse_frames(&mut conn);
        }
        if conn.eof && !conn.dead {
            self.handle_eof(&mut conn);
        }
        self.conns.insert(id, conn);
    }

    /// Consumes as many complete frames from `conn.buf` as possible,
    /// admitting each at header time and dispatching on payload
    /// completion.
    fn parse_frames(&mut self, conn: &mut Conn) {
        loop {
            if conn.dead || conn.close_after_flush {
                conn.buf.clear();
                conn.header_started = None;
                return;
            }
            // Swallow payload bytes of frames already answered at
            // admission (busy / too-large) without buffering them.
            if conn.discard > 0 {
                let take = usize::try_from(conn.discard)
                    .unwrap_or(usize::MAX)
                    .min(conn.buf.len());
                conn.buf.drain(..take);
                conn.discard -= take as u64;
                if conn.discard > 0 {
                    return;
                }
            }
            if let Some(acc) = &conn.cur {
                // Admission already consumed the header bytes; only the
                // payload remains to buffer. `payload_len` passed the
                // `max_payload` check, so the cast cannot truncate a
                // value the server would accept.
                let payload_len = acc.header.payload_len as usize;
                if conn.buf.len() < payload_len {
                    return;
                }
                let payload: Vec<u8> = conn.buf.drain(..payload_len).collect();
                let Some(acc) = conn.cur.take() else {
                    return;
                };
                conn.header_started = None;
                self.handle_frame(conn, acc, payload);
                continue;
            }
            match Frame::parse_header_prefix(&conn.buf) {
                Ok(None) => {
                    if conn.buf.is_empty() {
                        conn.header_started = None;
                        if conn.streams.is_empty() && conn.discard == 0 {
                            conn.drain_grace = false;
                        }
                    } else if conn.header_started.is_none() {
                        conn.header_started = Some(Instant::now());
                    }
                    return;
                }
                Err(e) => {
                    self.queue_response(
                        conn,
                        true,
                        0,
                        malformed_response(format!("bad frame header: {e}")),
                        true,
                    );
                    conn.buf.clear();
                    conn.header_started = None;
                    return;
                }
                Ok(Some(header)) => {
                    self.admit(conn, header);
                }
            }
        }
    }

    /// Admission control at header-accept time: busy/too-large verdicts
    /// are answered immediately (payload swallowed via `discard`);
    /// admitted frames start counting toward the in-flight limits while
    /// their payload arrives.
    fn admit(&mut self, conn: &mut Conn, header: FrameHeader) {
        let v1 = header.version == PROTOCOL_V1;
        let id = header.request_id;
        let starting = !matches!(header.kind, REQ_STREAM_CHUNK | REQ_STREAM_END);
        let now = Instant::now();

        let refuse = |this: &mut Self, conn: &mut Conn, response: Response, busy: bool| {
            this.queue_response(conn, v1, id, response, !busy);
            if busy {
                this.rejected_busy += 1;
            }
            conn.buf.drain(..header.header_len());
            conn.discard = header.payload_len;
            conn.header_started = None;
        };

        if starting {
            let draining = self.draining && !conn.drain_grace;
            if draining
                || self.global_pending >= self.config.max_inflight
                || conn.pending >= self.config.max_pipeline_depth
            {
                let message = if draining {
                    "server is draining".to_owned()
                } else if self.global_pending >= self.config.max_inflight {
                    format!("server at max in-flight ({})", self.config.max_inflight)
                } else {
                    format!(
                        "connection at max pipeline depth ({})",
                        self.config.max_pipeline_depth
                    )
                };
                refuse(
                    self,
                    conn,
                    Response::Error {
                        kind: ServerErrorKind::Busy,
                        message,
                    },
                    true,
                );
                return;
            }
            if !v1 && (conn.live.contains(&id) || conn.aborted.contains(&id)) {
                refuse(
                    self,
                    conn,
                    malformed_response(format!("request id {id} is already in flight")),
                    false,
                );
                conn.close_after_flush = true;
                return;
            }
        }
        if header.payload_len > self.config.max_payload as u64 {
            let response = Response::Error {
                kind: ServerErrorKind::TooLarge,
                message: format!(
                    "payload of {} bytes exceeds the {} byte limit",
                    header.payload_len, self.config.max_payload
                ),
            };
            refuse(self, conn, response, false);
            // An oversized chunk poisons its whole stream.
            if !starting {
                self.abort_stream_silently(conn, id);
            } else if v1 {
                conn.close_after_flush = true;
            }
            return;
        }

        conn.buf.drain(..header.header_len());
        conn.header_started = None;
        if starting {
            conn.pending += 1;
            self.global_pending += 1;
            conn.live.insert(id);
        }
        conn.cur = Some(Accepted {
            header,
            at: now,
            counted: starting,
        });
    }

    /// Handles one complete, admitted frame.
    fn handle_frame(&mut self, conn: &mut Conn, acc: Accepted, payload: Vec<u8>) {
        let v1 = acc.header.version == PROTOCOL_V1;
        let id = acc.header.request_id;
        let request = match Request::decode(acc.header.kind, &payload) {
            Ok(r) => r,
            Err(e) => {
                if acc.counted {
                    self.finish_request(conn, id);
                }
                self.queue_response(conn, v1, id, malformed_response(e.to_string()), true);
                return;
            }
        };
        drop(payload);
        match request {
            Request::Shutdown => {
                self.finish_request(conn, id);
                self.queue_response(conn, v1, id, Response::ShutdownAck, true);
                self.draining = true;
                self.listener = None;
                // Requests whose bytes had already started arriving
                // keep a grace pass through admission so the drain
                // serves them instead of refusing mid-upload.
                for other in self.conns.values_mut() {
                    if other.cur.is_some()
                        || other.header_started.is_some()
                        || !other.buf.is_empty()
                        || !other.streams.is_empty()
                        || other.discard > 0
                    {
                        other.drain_grace = true;
                    }
                }
                if !conn.buf.is_empty() || !conn.streams.is_empty() {
                    conn.drain_grace = true;
                }
            }
            Request::CompressStreamBegin(meta) => {
                self.open_stream(conn, acc, v1, id, Some(meta));
            }
            Request::DecompressStreamBegin => {
                self.open_stream(conn, acc, v1, id, None);
            }
            Request::StreamChunk { bytes } => self.stream_chunk(conn, id, bytes),
            Request::StreamEnd => self.stream_end(conn, id),
            request => {
                self.shared.dispatch(Job {
                    conn: self.processing_id,
                    request_id: id,
                    v1,
                    accepted: acc.at,
                    work: Work::Unary(request),
                });
            }
        }
    }

    fn open_stream(
        &mut self,
        conn: &mut Conn,
        acc: Accepted,
        v1: bool,
        id: u64,
        meta: Option<CompressStreamMeta>,
    ) {
        if v1 {
            self.finish_request(conn, id);
            self.queue_response(
                conn,
                v1,
                id,
                malformed_response("streaming requires v2 framing".to_owned()),
                true,
            );
            conn.close_after_flush = true;
            return;
        }
        let mut bounds = Vec::new();
        if let Some(meta) = &meta {
            if meta.shape.is_empty() {
                self.finish_request(conn, id);
                self.queue_response(
                    conn,
                    v1,
                    id,
                    malformed_response("stream opens an empty field".to_owned()),
                    true,
                );
                return;
            }
            let Some(nbytes) = meta.shape.len().checked_mul(8) else {
                self.finish_request(conn, id);
                self.queue_response(
                    conn,
                    v1,
                    id,
                    malformed_response("stream field size overflows".to_owned()),
                    true,
                );
                return;
            };
            if nbytes > self.config.max_payload {
                self.finish_request(conn, id);
                let response = Response::Error {
                    kind: ServerErrorKind::TooLarge,
                    message: format!(
                        "streamed field of {nbytes} bytes exceeds the {} byte limit",
                        self.config.max_payload
                    ),
                };
                self.queue_response(conn, v1, id, response, true);
                return;
            }
            let requested = if meta.chunks == 0 {
                self.config.default_chunks
            } else {
                meta.chunks as usize
            };
            let chunks = Pipeline::builder()
                .model(meta.model)
                .threads(1)
                .chunks(requested)
                .build()
                .effective_chunks(meta.shape);
            if chunks > 1 {
                let [nx, ny, nz] = meta.shape.dims;
                let decomp = Decomposition::new([nx, ny, nz], [1, 1, chunks]);
                bounds = (0..chunks)
                    .map(|r| {
                        let sd = decomp.subdomain(r);
                        (sd.z.0, sd.z.1)
                    })
                    .collect();
            }
        }
        let done = vec![];
        let mut st = StreamState {
            meta,
            started: acc.at,
            buf: Vec::new(),
            next_slab: 0,
            done,
            ended: false,
            bounds,
        };
        st.done = std::iter::repeat_with(|| None)
            .take(st.bounds.len())
            .collect();
        conn.streams.insert(id, st);
    }

    fn stream_chunk(&mut self, conn: &mut Conn, id: u64, bytes: Vec<u8>) {
        if conn.aborted.contains(&id) {
            return;
        }
        let Some(st) = conn.streams.get_mut(&id) else {
            self.queue_response(
                conn,
                false,
                id,
                malformed_response(format!("chunk for unknown stream id {id}")),
                true,
            );
            conn.close_after_flush = true;
            return;
        };
        st.buf.extend_from_slice(&bytes);
        if let Some(meta) = st.meta {
            let nbytes = meta.shape.len().saturating_mul(8);
            if st.buf.len() > nbytes {
                let over = st.buf.len();
                self.abort_stream(
                    conn,
                    id,
                    malformed_response(format!(
                        "stream overruns its field: {over} bytes for a {nbytes} byte field"
                    )),
                );
                return;
            }
            self.pump_stream(conn, id);
        } else if st.buf.len() > self.config.max_payload {
            let over = st.buf.len();
            let max = self.config.max_payload;
            self.abort_stream(
                conn,
                id,
                Response::Error {
                    kind: ServerErrorKind::TooLarge,
                    message: format!(
                        "streamed artifact of {over} bytes exceeds the {max} byte limit"
                    ),
                },
            );
        }
    }

    fn stream_end(&mut self, conn: &mut Conn, id: u64) {
        if conn.aborted.contains(&id) {
            conn.aborted.remove(&id);
            return;
        }
        let Some(st) = conn.streams.get_mut(&id) else {
            self.queue_response(
                conn,
                false,
                id,
                malformed_response(format!("end for unknown stream id {id}")),
                true,
            );
            conn.close_after_flush = true;
            return;
        };
        st.ended = true;
        match st.meta {
            Some(meta) => {
                let nbytes = meta.shape.len().saturating_mul(8);
                if st.buf.len() != nbytes {
                    let got = st.buf.len();
                    self.abort_stream(
                        conn,
                        id,
                        malformed_response(format!(
                            "stream ended with {got} of {nbytes} field bytes"
                        )),
                    );
                    return;
                }
                if st.bounds.is_empty() {
                    // Single-chunk field: one whole-field job, same as a
                    // unary compress of the buffered samples.
                    let Some(st) = conn.streams.remove(&id) else {
                        return;
                    };
                    let Some(meta) = st.meta else { return };
                    let request = Request::Compress(crate::protocol::CompressRequest {
                        model: meta.model,
                        orig: meta.orig,
                        delta: meta.delta,
                        scan_1d: meta.scan_1d,
                        chunks: meta.chunks,
                        shape: meta.shape,
                        data: samples_of(&st.buf),
                    });
                    self.shared.dispatch(Job {
                        conn: self.processing_id,
                        request_id: id,
                        v1: false,
                        accepted: st.started,
                        work: Work::Unary(request),
                    });
                } else {
                    self.pump_stream(conn, id);
                    self.try_complete_stream(conn, id);
                }
            }
            None => {
                let Some(st) = conn.streams.remove(&id) else {
                    return;
                };
                self.shared.dispatch(Job {
                    conn: self.processing_id,
                    request_id: id,
                    v1: false,
                    accepted: st.started,
                    work: Work::Unary(Request::Decompress { artifact: st.buf }),
                });
            }
        }
    }

    /// Dispatches every z-slab whose byte range is fully buffered —
    /// this is where compute overlaps the upload.
    fn pump_stream(&mut self, conn: &mut Conn, id: u64) {
        let Some(st) = conn.streams.get_mut(&id) else {
            return;
        };
        let Some(meta) = st.meta else { return };
        let [nx, ny, _] = meta.shape.dims;
        let plane = nx * ny;
        while st.next_slab < st.bounds.len() {
            let (z0, z1) = st.bounds[st.next_slab];
            let end = z1 * plane * 8;
            if st.buf.len() < end {
                break;
            }
            let data = samples_of(&st.buf[z0 * plane * 8..end]);
            self.shared.dispatch(Job {
                conn: self.processing_id,
                request_id: id,
                v1: false,
                accepted: st.started,
                work: Work::Slab {
                    index: st.next_slab,
                    z0,
                    dims: [nx, ny, z1 - z0],
                    data,
                    meta,
                },
            });
            st.next_slab += 1;
        }
    }

    /// Assembles and answers a chunked compress stream once every slab
    /// has completed and `End` has arrived.
    fn try_complete_stream(&mut self, conn: &mut Conn, id: u64) {
        let complete = match conn.streams.get(&id) {
            Some(st) => st.ended && st.done.iter().all(Option::is_some),
            None => false,
        };
        if !complete {
            return;
        }
        let Some(st) = conn.streams.remove(&id) else {
            return;
        };
        let Some(meta) = st.meta else { return };
        let [nx, ny, nz] = meta.shape.dims;
        let tag = model_to_tag(meta.model).0;
        let mut container = ChunkedArtifact::new([nx as u32, ny as u32, nz as u32]);
        let mut report = WireReport {
            raw_bytes: (meta.shape.len() * 8) as u64,
            rep_bytes: 0,
            delta_bytes: 0,
        };
        for slab in st.done.into_iter().flatten() {
            report.rep_bytes += slab.report.rep_bytes;
            report.delta_bytes += slab.report.delta_bytes;
            container.push(
                ChunkEntry {
                    z_offset: slab.z0,
                    dims: slab.dims,
                    model_tag: tag,
                },
                slab.bytes,
            );
        }
        self.finish_request(conn, id);
        self.queue_response(
            conn,
            false,
            id,
            Response::Compressed {
                report,
                artifact: container.to_bytes(),
            },
            true,
        );
    }

    /// Answers a live stream with `response` and swallows its remaining
    /// frames.
    fn abort_stream(&mut self, conn: &mut Conn, id: u64, response: Response) {
        if conn.streams.remove(&id).is_some() {
            self.finish_request(conn, id);
            conn.aborted.insert(id);
            self.queue_response(conn, false, id, response, true);
        }
    }

    /// Drops a stream without a response (the error was already
    /// queued by the caller).
    fn abort_stream_silently(&mut self, conn: &mut Conn, id: u64) {
        if conn.streams.remove(&id).is_some() {
            self.finish_request(conn, id);
            conn.aborted.insert(id);
        }
    }

    // -- completions --------------------------------------------------------

    fn process_completions(&mut self) {
        let done = {
            let mut d = self.shared.done.lock().expect("completion queue poisoned");
            std::mem::take(&mut *d)
        };
        let now = Instant::now();
        for item in done {
            let Some(mut conn) = self.conns.remove(&item.conn) else {
                // The connection died while the job ran; its pending
                // count was already released when it was dropped.
                continue;
            };
            self.processing_id = item.conn;
            match item.result {
                DoneResult::Response(response) => {
                    let response = if now.duration_since(item.accepted) > self.config.deadline {
                        timeout_response("deadline elapsed during execution")
                    } else {
                        response
                    };
                    self.finish_request(&mut conn, item.request_id);
                    self.queue_response(&mut conn, item.v1, item.request_id, response, true);
                }
                DoneResult::Slab {
                    index,
                    z0,
                    dims,
                    report,
                    bytes,
                } => {
                    if now.duration_since(item.accepted) > self.config.deadline {
                        self.abort_stream(
                            &mut conn,
                            item.request_id,
                            timeout_response("deadline elapsed during streamed compression"),
                        );
                    } else if let Some(st) = conn.streams.get_mut(&item.request_id) {
                        if let Some(slot) = st.done.get_mut(index) {
                            *slot = Some(SlabOut {
                                z0,
                                dims,
                                report,
                                bytes,
                            });
                        }
                        self.try_complete_stream(&mut conn, item.request_id);
                    }
                    // A completed slab for an aborted stream is dropped.
                }
            }
            self.conns.insert(item.conn, conn);
        }
    }

    // -- deadlines & lifecycle ----------------------------------------------

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            self.processing_id = id;
            if conn.closing.as_ref().is_some_and(|cl| now >= cl.deadline) {
                conn.dead = true;
            }
            if conn.closing.is_none() && !conn.dead {
                if let Some(acc) = &conn.cur {
                    if now.duration_since(acc.at) > self.config.deadline {
                        let v1 = acc.header.version == PROTOCOL_V1;
                        let rid = acc.header.request_id;
                        let counted = acc.counted;
                        conn.cur = None;
                        if counted {
                            self.finish_request(&mut conn, rid);
                        }
                        self.queue_response(
                            &mut conn,
                            v1,
                            rid,
                            timeout_response("deadline elapsed while reading the request payload"),
                            true,
                        );
                        // Mid-frame there is no way to resync.
                        conn.close_after_flush = true;
                    }
                } else if conn
                    .header_started
                    .is_some_and(|t| now.duration_since(t) > self.config.deadline)
                {
                    self.queue_response(
                        &mut conn,
                        true,
                        0,
                        timeout_response("deadline elapsed while reading the frame header"),
                        true,
                    );
                    conn.close_after_flush = true;
                }
                let stalled: Vec<u64> = conn
                    .streams
                    .iter()
                    .filter(|(_, st)| now.duration_since(st.started) > self.config.deadline)
                    .map(|(&sid, _)| sid)
                    .collect();
                for sid in stalled {
                    self.abort_stream(
                        &mut conn,
                        sid,
                        timeout_response("deadline elapsed during streaming"),
                    );
                }
            }
            self.conns.insert(id, conn);
        }
    }

    fn handle_eof(&mut self, conn: &mut Conn) {
        // No more frames will arrive: partial frames and open streams
        // can never complete — release them silently (the peer walked
        // away mid-request; there is nothing useful to answer). Already
        // dispatched requests still get their responses, which the peer
        // may be half-closed-reading.
        if let Some(acc) = conn.cur.take() {
            if acc.counted {
                self.finish_request(conn, acc.header.request_id);
            }
        }
        conn.header_started = None;
        conn.buf.clear();
        conn.discard = 0;
        let open: Vec<u64> = conn.streams.keys().copied().collect();
        for sid in open {
            conn.streams.remove(&sid);
            self.finish_request(conn, sid);
        }
    }

    fn cleanup(&mut self) {
        let now = Instant::now();
        let mut drop_ids = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if conn.close_after_flush
                && conn.closing.is_none()
                && conn.pending == 0
                && conn.streams.is_empty()
                && conn.flushed()
            {
                let _ = conn.stream.shutdown(NetShutdown::Write);
                conn.closing = Some(Closing {
                    deadline: now + CLOSE_GRACE,
                    budget: CLOSE_BUDGET,
                });
            }
            let done = conn.dead
                || (conn.eof && conn.pending == 0 && conn.flushed())
                || (conn.closing.is_some() && conn.eof);
            if done {
                drop_ids.push(id);
            }
        }
        for id in drop_ids {
            if let Some(conn) = self.conns.remove(&id) {
                self.global_pending = self.global_pending.saturating_sub(conn.pending);
            }
        }
    }

    // -- plumbing -----------------------------------------------------------

    fn finish_request(&mut self, conn: &mut Conn, id: u64) {
        conn.pending = conn.pending.saturating_sub(1);
        self.global_pending = self.global_pending.saturating_sub(1);
        conn.live.remove(&id);
    }

    fn queue_response(
        &mut self,
        conn: &mut Conn,
        v1: bool,
        request_id: u64,
        response: Response,
        count_served: bool,
    ) {
        let frame = if v1 {
            response.to_frame()
        } else {
            response.to_frame_v2(request_id)
        };
        conn.out.extend_from_slice(&frame);
        if count_served {
            self.served += 1;
        }
        if v1 {
            conn.close_after_flush = true;
        }
    }

    fn flush_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.flush_conn(id);
        }
    }

    fn flush_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.flushed() && !conn.out.is_empty() {
            conn.out.clear();
            conn.written = 0;
        }
    }
}

/// Decodes a raw LE byte slice into `f64` samples (panic-free: the
/// slice length is a multiple of 8 by construction, and `chunks_exact`
/// ignores any remainder).
fn samples_of(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            f64::from_bits(u64::from_le_bytes(b))
        })
        .collect()
}

/// Answers a connection the acceptor refuses to register (beyond
/// `max_connections`) with a v1 `Busy` frame, then closes it without
/// risking an RST.
fn reject_connection(mut stream: TcpStream, config: &ServerConfig) {
    // Some platforms hand accepted sockets the listener's non-blocking
    // flag; request plain blocking I/O with timeouts.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = Response::Error {
        kind: ServerErrorKind::Busy,
        message: format!("server at max connections ({})", config.max_connections),
    };
    // lint:allow(blocking-in-event-loop): best-effort Busy reply on a socket being closed; bounded by the 1s write timeout above
    let _ = stream.write_all(&response.to_frame());
    let _ = stream.shutdown(NetShutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut budget: usize = CLOSE_BUDGET;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    break;
                }
            }
        }
    }
}

fn drain_wake(mut wake_rx: &TcpStream) {
    // `Read` is implemented for `&TcpStream`; the socket is
    // nonblocking, so the drain ends on `WouldBlock`.
    let mut sink = [0u8; 256];
    loop {
        match wake_rx.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.max_inflight > 0);
        assert!(c.max_payload >= 1 << 20);
        assert!(c.deadline >= Duration::from_secs(1));
        assert!(c.default_chunks >= 1);
        assert!(c.max_connections >= 64);
        assert!(c.max_pipeline_depth >= 1);
    }

    #[test]
    fn builder_accumulates_every_knob() {
        let b = Server::builder()
            .addr("127.0.0.1:0")
            .threads(3)
            .max_inflight(7)
            .max_payload(1 << 20)
            .deadline(Duration::from_secs(5))
            .default_chunks(2)
            .max_connections(99)
            .max_pipeline_depth(11);
        let c = b.config();
        assert_eq!(c.threads, 3);
        assert_eq!(c.max_inflight, 7);
        assert_eq!(c.max_payload, 1 << 20);
        assert_eq!(c.deadline, Duration::from_secs(5));
        assert_eq!(c.default_chunks, 2);
        assert_eq!(c.max_connections, 99);
        assert_eq!(c.max_pipeline_depth, 11);
        let server = b.bind().expect("bind");
        assert_ne!(server.local_addr().expect("addr").port(), 0);
    }

    #[test]
    fn bind_reports_ephemeral_port() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn samples_roundtrip_raw_bits() {
        let values = [1.5f64, -0.0, f64::NAN, f64::INFINITY];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let back = samples_of(&bytes);
        assert_eq!(back.len(), 4);
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
