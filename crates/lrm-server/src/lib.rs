//! `lrm-server` — a concurrent compression service over `std::net`.
//!
//! The crate has four layers:
//!
//! * [`protocol`] — the framed wire protocol (LRMP), additively
//!   versioned: v1 frames carry a 16-byte header (magic, version, kind,
//!   payload length); v2 frames extend it to 24 bytes with a `u64`
//!   request id so many requests can be in flight per connection and
//!   responses may arrive out of order. v2 also adds chunk-streaming
//!   kinds (`Begin`/`Chunk`/`End`) so a large field starts compressing
//!   while its bytes are still arriving. The decoder follows the
//!   workspace's hardened decode-path contract and is registered in
//!   `lint.toml`.
//! * [`poll`] — a zero-dependency readiness shim over the platform's
//!   `poll(2)` used by the event loop.
//! * [`server`] — a nonblocking readiness event loop owning every
//!   socket, dispatching codec work onto the `lrm-parallel`
//!   [`WorkerPool`] and marrying the two with a completion queue.
//!   Connections persist across requests with explicit per-request
//!   backpressure: max in-flight requests (global and per-connection),
//!   max payload size, and a per-request deadline, each mapped to a
//!   typed error frame (`Busy`, `TooLarge`, `Timeout`). Shutdown drains
//!   in-flight requests — including open streams — before the listener
//!   closes.
//! * [`client`] — a session-based [`Connection`] holding one socket
//!   across many requests (`send` → [`RequestHandle`] → `wait`, or a
//!   blocking `call`), used by `lrm-cli client`, the loopback tests,
//!   and the `serve` bench rows. The connect-per-request [`Client`]
//!   remains as a deprecated shim.
//!
//! The server is a consumer of every workspace layer: `lrm-compress`
//! codecs, the `lrm-core` pipeline and model selector, `lrm-io`
//! artifact containers, and the `lrm-parallel` pool.
//!
//! [`WorkerPool`]: lrm_parallel::WorkerPool

pub mod client;
pub mod poll;
pub mod protocol;
pub mod server;

#[allow(deprecated)]
pub use client::Client;
pub use client::{ClientError, ClientResult, Connection, RequestHandle};
pub use lrm_compress::{DecodeError, DecodeResult, Shape};
pub use protocol::{
    CompressRequest, CompressStreamMeta, FieldStatsReply, Frame, FrameHeader, Request, Response,
    SelectReply, SelectRequest, ServerErrorKind, TrialReport, WireReport, PROTOCOL_V1, PROTOCOL_V2,
};
pub use server::{Server, ServerBuilder, ServerConfig, ServerStats};
