//! `lrm-server` — a concurrent compression service over `std::net`.
//!
//! The crate has three layers:
//!
//! * [`protocol`] — the framed wire protocol: a 16-byte header (magic,
//!   version, kind, payload length) followed by a typed payload. The
//!   decoder follows the workspace's hardened decode-path contract and
//!   is registered in `lint.toml`.
//! * [`server`] — a bounded TCP listener that dispatches accepted
//!   connections onto the `lrm-parallel` [`WorkerPool`]
//!   with explicit backpressure: max in-flight requests, max payload
//!   size, and a per-request deadline, each mapped to a typed error
//!   frame (`Busy`, `TooLarge`, `Timeout`). Shutdown drains in-flight
//!   requests before the listener closes.
//! * [`client`] — a blocking client used by `lrm-cli client`, the
//!   loopback tests, and the `serve` bench row.
//!
//! The server is a consumer of every workspace layer: `lrm-compress`
//! codecs, the `lrm-core` pipeline and model selector, `lrm-io`
//! artifact containers, and the `lrm-parallel` pool.
//!
//! [`WorkerPool`]: lrm_parallel::WorkerPool

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ClientResult};
pub use lrm_compress::{DecodeError, DecodeResult, Shape};
pub use protocol::{
    CompressRequest, FieldStatsReply, Frame, Request, Response, SelectReply, SelectRequest,
    ServerErrorKind, TrialReport, WireReport,
};
pub use server::{Server, ServerConfig, ServerStats};
