//! Zero-dependency readiness shim over the platform's `poll(2)`.
//!
//! The event loop in [`crate::server`] needs exactly one primitive:
//! "block until one of these sockets is readable/writable, or a
//! timeout elapses". On Unix that is `poll(2)`, reached here through a
//! direct `extern "C"` declaration so the workspace stays free of
//! external crates (std already links libc). Elsewhere the shim
//! degrades to a bounded sleep that reports every descriptor as ready —
//! correct (the sockets are nonblocking, so spurious readiness costs a
//! `WouldBlock`) but polled rather than event-driven.
//!
//! `poll` has no `FD_SETSIZE` ceiling, so the shim scales to the
//! `max_connections` range the server is configured for without the
//! `select(2)` 1024-descriptor trap.

use std::time::Duration;

/// Readable interest / readiness bit (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness bit (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error readiness bit (`POLLERR`, revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hangup readiness bit (`POLLHUP`, revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid-descriptor readiness bit (`POLLNVAL`, revents only).
pub const POLLNVAL: i16 = 0x020;

/// Raw socket descriptor as the platform spells it.
#[cfg(unix)]
pub type RawSocketFd = std::os::unix::io::RawFd;
/// Raw socket descriptor placeholder on platforms without Unix fds.
#[cfg(not(unix))]
pub type RawSocketFd = i32;

/// The raw descriptor of a socket-like value (listener or stream).
#[cfg(unix)]
pub fn fd_of<T: std::os::unix::io::AsRawFd>(socket: &T) -> RawSocketFd {
    socket.as_raw_fd()
}

/// Fallback: descriptors are opaque; the degraded [`poll`] below never
/// inspects them.
#[cfg(not(unix))]
pub fn fd_of<T>(_socket: &T) -> RawSocketFd {
    0
}

/// One descriptor's interest set and, after [`poll`], its readiness.
/// Layout matches `struct pollfd` so a slice can be handed to the
/// platform call directly.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawSocketFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest in `fd` becoming readable and/or writable.
    pub fn new(fd: RawSocketFd, read: bool, write: bool) -> PollFd {
        let mut events = 0;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor this entry watches.
    pub fn fd(&self) -> RawSocketFd {
        self.fd
    }

    /// Readable (or peer-closed / errored, which a read will surface).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Writable (or errored, which a write will surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Any readiness at all.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

/// Converts a timeout to the millisecond argument `poll(2)` takes:
/// `None` blocks forever (`-1`), sub-millisecond waits round up so a
/// deadline is never spun through early.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !t.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;

    #[cfg(target_vendor = "apple")]
    type NfdsT = std::os::raw::c_uint;
    #[cfg(not(target_vendor = "apple"))]
    type NfdsT = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::os::raw::c_int)
            -> std::os::raw::c_int;
    }

    /// Thin wrapper over the libc call; see [`super::poll`] for the
    /// contract.
    pub fn poll_impl(fds: &mut [PollFd], timeout: i32) -> std::io::Result<usize> {
        // `PollFd` is `#[repr(C)]` with the exact field order and
        // widths of `struct pollfd`, and `len()` is the element count.
        // SAFETY: `fds` is a valid exclusive slice for the duration of
        // the call, so the kernel reads and writes only within bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                // A signal is a spurious wakeup, not a failure; report
                // "nothing ready" and let the event loop re-derive its
                // timeout.
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{PollFd, POLLIN, POLLOUT};

    /// Degraded fallback: sleep a bounded tick, then claim every
    /// descriptor ready for its interest set. Nonblocking sockets turn
    /// spurious readiness into `WouldBlock`, so behavior stays correct
    /// at the cost of a polling cadence.
    pub fn poll_impl(fds: &mut [PollFd], timeout: i32) -> std::io::Result<usize> {
        let tick = match timeout {
            t if t < 0 => 5,
            t => t.min(5),
        };
        if tick > 0 {
            std::thread::sleep(std::time::Duration::from_millis(tick as u64));
        }
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
        }
        Ok(fds.len())
    }
}

/// Blocks until at least one entry is ready or the timeout elapses;
/// returns how many entries have readiness bits set (0 on timeout).
/// Signal interruptions are reported as a timeout so callers never see
/// a spurious error.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    sys::poll_impl(fds, timeout_ms(timeout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn timeout_expires_with_nothing_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut fds = [PollFd::new(fd_of(&listener), true, false)];
        let t = std::time::Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).expect("poll");
        // The degraded fallback claims readiness; the real call times
        // out with nothing ready and takes at least the timeout.
        if cfg!(unix) {
            assert_eq!(n, 0);
            assert!(!fds[0].readable());
            assert!(t.elapsed() >= Duration::from_millis(25));
        }
    }

    #[test]
    fn pending_connection_is_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let mut fds = [PollFd::new(fd_of(&listener), true, false)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).expect("poll");
        assert!(n >= 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn connected_stream_reports_bytes_and_write_space() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        client.write_all(b"ready").expect("write");
        let mut fds = [PollFd::new(fd_of(&server), true, true)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).expect("poll");
        assert!(n >= 1);
        assert!(fds[0].readable());
        assert!(fds[0].writable());
        assert!(fds[0].ready());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(10))), 1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
    }
}
