//! Blocking client for the framed protocol.
//!
//! One connection per request (mirroring the server's
//! connect-per-request model): each call dials, writes one request
//! frame, reads one response frame, and closes. Server-side error
//! frames surface as [`ClientError::Server`] with the typed
//! [`ServerErrorKind`], so callers (and the loopback tests) can match
//! on `Busy`/`TooLarge`/`Timeout` rather than string-compare messages.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use lrm_compress::{DecodeError, Shape};

use crate::protocol::{
    CompressRequest, FieldStatsReply, Frame, Request, Response, SelectReply, SelectRequest,
    ServerErrorKind, WireReport, HEADER_LEN,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's response frame failed to decode.
    Decode(DecodeError),
    /// The server answered with a typed error frame.
    Server {
        /// Which error class the server reported.
        kind: ServerErrorKind,
        /// The server's human-readable context.
        message: String,
    },
    /// The server answered with a response of the wrong kind for the
    /// request (protocol confusion; carries the kind byte received).
    Unexpected {
        /// The frame kind byte received.
        kind: u8,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Decode(e) => write!(f, "bad response frame: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({}): {message}", kind.name())
            }
            ClientError::Unexpected { kind } => {
                write!(f, "unexpected response kind 0x{kind:02X}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A blocking protocol client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` with a 30 s per-call timeout.
    pub fn new(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(std::io::Error::other("address resolved to nothing")))?;
        Ok(Client {
            addr,
            timeout: Duration::from_secs(30),
        })
    }

    /// Overrides the per-call socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request frame and reads the one response frame.
    pub fn call(&self, request: &Request) -> ClientResult<Response> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let _ = stream.set_nodelay(true);
        stream.write_all(&request.to_frame())?;

        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header)?;
        let (kind, payload_len) = Frame::parse_header(&header)?;
        let payload_len = usize::try_from(payload_len).map_err(|_| {
            ClientError::Decode(DecodeError::Corrupt {
                what: "response length exceeds address space",
            })
        })?;
        let mut payload = vec![0u8; payload_len];
        stream.read_exact(&mut payload)?;
        let response = Response::decode(kind, &payload)?;
        if let Response::Error { kind, message } = response {
            return Err(ClientError::Server { kind, message });
        }
        Ok(response)
    }

    /// Liveness probe; returns the echoed bytes.
    pub fn ping(&self, echo: &[u8]) -> ClientResult<Vec<u8>> {
        match self.call(&Request::Ping {
            echo: echo.to_vec(),
        })? {
            Response::Pong { echo } => Ok(echo),
            other => Err(unexpected(&other)),
        }
    }

    /// Compresses a field; returns the size report and artifact bytes.
    pub fn compress(&self, request: CompressRequest) -> ClientResult<(WireReport, Vec<u8>)> {
        match self.call(&Request::Compress(request))? {
            Response::Compressed { report, artifact } => Ok((report, artifact)),
            other => Err(unexpected(&other)),
        }
    }

    /// Reconstructs a field from artifact bytes.
    pub fn decompress(&self, artifact: &[u8]) -> ClientResult<(Shape, Vec<f64>)> {
        match self.call(&Request::Decompress {
            artifact: artifact.to_vec(),
        })? {
            Response::Decompressed { shape, data } => Ok((shape, data)),
            other => Err(unexpected(&other)),
        }
    }

    /// Summary statistics for a field.
    pub fn field_stats(&self, shape: Shape, data: &[f64]) -> ClientResult<FieldStatsReply> {
        match self.call(&Request::FieldStats {
            shape,
            data: data.to_vec(),
        })? {
            Response::Stats(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs model selection on a field.
    pub fn select_model(&self, request: SelectRequest) -> ClientResult<SelectReply> {
        match self.call(&Request::SelectModel(request))? {
            Response::Selected(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Unexpected {
        kind: response.kind(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let msgs = [
            ClientError::Io(std::io::Error::other("boom")).to_string(),
            ClientError::Decode(DecodeError::Truncated { what: "header" }).to_string(),
            ClientError::Server {
                kind: ServerErrorKind::Busy,
                message: "full".into(),
            }
            .to_string(),
            ClientError::Unexpected { kind: 0x42 }.to_string(),
        ];
        assert!(msgs[0].contains("boom"));
        assert!(msgs[1].contains("header"));
        assert!(msgs[2].contains("busy"));
        assert!(msgs[3].contains("0x42"));
    }
}
