//! Session-based blocking client for the framed protocol.
//!
//! [`Connection`] holds one persistent TCP session speaking LRMP v2:
//! [`Connection::send`] writes a request frame tagged with a fresh
//! request id and returns a [`RequestHandle`]; [`Connection::wait`]
//! reads response frames — stashing out-of-order arrivals — until the
//! handle's response lands. Many requests can be in flight at once over
//! the one socket (pipelining), and [`Connection::call`] is the
//! blocking send-then-wait convenience. The chunk-streaming helpers
//! ([`Connection::compress_streamed`], [`Connection::decompress_streamed`])
//! ship a large field as `Begin`/`Chunk`/`End` sub-frames so the server
//! starts compressing while bytes are still arriving.
//!
//! Server-side error frames surface as [`ClientError::Server`] with the
//! typed [`ServerErrorKind`], so callers (and the loopback tests) can
//! match on `Busy`/`TooLarge`/`Timeout` rather than string-compare
//! messages.
//!
//! The old connect-per-request [`Client`] remains as a deprecated shim
//! that opens one [`Connection`] per call, so existing code keeps
//! compiling while it migrates.
//!
//! The response-reading path is decode-hardened (registered under
//! `[decode]` in `lint.toml`): headers and payloads are parsed with the
//! typed [`DecodeError`] machinery and nothing here panics on a hostile
//! peer.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use lrm_compress::{DecodeError, Shape};

use crate::protocol::{
    CompressRequest, CompressStreamMeta, FieldStatsReply, Frame, FrameHeader, Request, Response,
    SelectReply, SelectRequest, ServerErrorKind, WireReport, HEADER_LEN, HEADER_V2_LEN,
    PROTOCOL_V1,
};

/// Hard ceiling on a response payload the client will buffer; a header
/// claiming more is treated as a protocol violation rather than an
/// allocation request.
const MAX_RESPONSE_PAYLOAD: u64 = 1 << 31;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's response frame failed to decode.
    Decode(DecodeError),
    /// The server answered with a typed error frame.
    Server {
        /// Which error class the server reported.
        kind: ServerErrorKind,
        /// The server's human-readable context.
        message: String,
    },
    /// The server answered with a response of the wrong kind for the
    /// request (protocol confusion; carries the kind byte received).
    Unexpected {
        /// The frame kind byte received.
        kind: u8,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Decode(e) => write!(f, "bad response frame: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({}): {message}", kind.name())
            }
            ClientError::Unexpected { kind } => {
                write!(f, "unexpected response kind 0x{kind:02X}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A ticket for one in-flight request on a [`Connection`]; redeem it
/// with [`Connection::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle {
    id: u64,
}

impl RequestHandle {
    /// The wire request id this handle tracks.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One persistent LRMP v2 session: a socket, a request-id counter, and
/// a stash for responses that arrived before anyone waited on them.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    next_id: u64,
    stash: HashMap<u64, Response>,
}

impl Connection {
    /// Opens a session to `addr` with a 30 s socket timeout.
    pub fn open(addr: impl ToSocketAddrs) -> ClientResult<Connection> {
        Connection::open_with_timeout(addr, Duration::from_secs(30))
    }

    /// Opens a session with an explicit socket timeout (connect, read,
    /// and write).
    pub fn open_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> ClientResult<Connection> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    /// Writes one request frame under a fresh request id and returns
    /// the handle to wait on. Does not block on the response, so many
    /// requests can be pipelined before the first [`Connection::wait`].
    pub fn send(&mut self, request: &Request) -> ClientResult<RequestHandle> {
        let id = self.fresh_id();
        self.stream.write_all(&request.to_frame_v2(id))?;
        Ok(RequestHandle { id })
    }

    /// Blocks until the response for `handle` arrives, stashing any
    /// other pipelined responses that land first. A typed server error
    /// frame becomes [`ClientError::Server`].
    pub fn wait(&mut self, handle: RequestHandle) -> ClientResult<Response> {
        loop {
            if let Some(response) = self.stash.remove(&handle.id) {
                return surface(response);
            }
            let (header, payload) = read_frame(&mut self.stream)?;
            let response = Response::decode(header.kind, &payload)?;
            // A v1-framed response carries no id; the server only sends
            // one when answering before it knows the request id (e.g. a
            // Busy verdict at accept time), so it addresses whichever
            // request is being waited on.
            let id = if header.version == PROTOCOL_V1 {
                handle.id
            } else {
                header.request_id
            };
            self.stash.insert(id, response);
        }
    }

    /// Blocking convenience: send one request and wait for its
    /// response.
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        let handle = self.send(request)?;
        self.wait(handle)
    }

    /// Liveness probe; returns the echoed bytes.
    pub fn ping(&mut self, echo: &[u8]) -> ClientResult<Vec<u8>> {
        match self.call(&Request::Ping {
            echo: echo.to_vec(),
        })? {
            Response::Pong { echo } => Ok(echo),
            other => Err(unexpected(&other)),
        }
    }

    /// Compresses a field; returns the size report and artifact bytes.
    pub fn compress(&mut self, request: CompressRequest) -> ClientResult<(WireReport, Vec<u8>)> {
        match self.call(&Request::Compress(request))? {
            Response::Compressed { report, artifact } => Ok((report, artifact)),
            other => Err(unexpected(&other)),
        }
    }

    /// Reconstructs a field from artifact bytes.
    pub fn decompress(&mut self, artifact: &[u8]) -> ClientResult<(Shape, Vec<f64>)> {
        match self.call(&Request::Decompress {
            artifact: artifact.to_vec(),
        })? {
            Response::Decompressed { shape, data } => Ok((shape, data)),
            other => Err(unexpected(&other)),
        }
    }

    /// Summary statistics for a field.
    pub fn field_stats(&mut self, shape: Shape, data: &[f64]) -> ClientResult<FieldStatsReply> {
        match self.call(&Request::FieldStats {
            shape,
            data: data.to_vec(),
        })? {
            Response::Stats(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs model selection on a field.
    pub fn select_model(&mut self, request: SelectRequest) -> ClientResult<SelectReply> {
        match self.call(&Request::SelectModel(request))? {
            Response::Selected(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Compresses a field by streaming its samples in `chunk_bytes`
    /// slices (`Begin`/`Chunk`/`End`), so the server overlaps compute
    /// with the upload. Returns the size report and artifact bytes.
    pub fn compress_streamed(
        &mut self,
        meta: CompressStreamMeta,
        data: &[f64],
        chunk_bytes: usize,
    ) -> ClientResult<(WireReport, Vec<u8>)> {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for v in data {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let handle =
            self.stream_request(&Request::CompressStreamBegin(meta), &bytes, chunk_bytes)?;
        match self.wait(handle)? {
            Response::Compressed { report, artifact } => Ok((report, artifact)),
            other => Err(unexpected(&other)),
        }
    }

    /// Reconstructs a field by streaming the artifact bytes in
    /// `chunk_bytes` slices.
    pub fn decompress_streamed(
        &mut self,
        artifact: &[u8],
        chunk_bytes: usize,
    ) -> ClientResult<(Shape, Vec<f64>)> {
        let handle = self.stream_request(&Request::DecompressStreamBegin, artifact, chunk_bytes)?;
        match self.wait(handle)? {
            Response::Decompressed { shape, data } => Ok((shape, data)),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens a stream with `begin`, ships `bytes` as chunk frames under
    /// the same request id, and closes it with `End`.
    fn stream_request(
        &mut self,
        begin: &Request,
        bytes: &[u8],
        chunk_bytes: usize,
    ) -> ClientResult<RequestHandle> {
        let id = self.fresh_id();
        self.stream.write_all(&begin.to_frame_v2(id))?;
        for chunk in bytes.chunks(chunk_bytes.max(1)) {
            let frame = Request::StreamChunk {
                bytes: chunk.to_vec(),
            }
            .to_frame_v2(id);
            self.stream.write_all(&frame)?;
        }
        self.stream.write_all(&Request::StreamEnd.to_frame_v2(id))?;
        Ok(RequestHandle { id })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }
}

/// Reads one complete response frame (either header version) from the
/// socket.
fn read_frame(stream: &mut TcpStream) -> ClientResult<(FrameHeader, Vec<u8>)> {
    let mut prefix = [0u8; HEADER_LEN];
    stream.read_exact(&mut prefix)?;
    let header = match Frame::parse_header_prefix(&prefix)? {
        Some(h) => h,
        None => {
            // A v2 header: the request id is still on the wire.
            let mut id = [0u8; HEADER_V2_LEN - HEADER_LEN];
            stream.read_exact(&mut id)?;
            let full: Vec<u8> = prefix.iter().chain(id.iter()).copied().collect();
            Frame::parse_header(&full)?
        }
    };
    if header.payload_len > MAX_RESPONSE_PAYLOAD {
        return Err(ClientError::Decode(DecodeError::Corrupt {
            what: "response length exceeds the client's buffer ceiling",
        }));
    }
    let payload_len = usize::try_from(header.payload_len).map_err(|_| {
        ClientError::Decode(DecodeError::Corrupt {
            what: "response length exceeds address space",
        })
    })?;
    let mut payload = vec![0u8; payload_len];
    stream.read_exact(&mut payload)?;
    Ok((header, payload))
}

/// Maps typed server error frames to `Err`, everything else to `Ok`.
fn surface(response: Response) -> ClientResult<Response> {
    if let Response::Error { kind, message } = response {
        return Err(ClientError::Server { kind, message });
    }
    Ok(response)
}

fn resolve(addr: impl ToSocketAddrs) -> ClientResult<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| ClientError::Io(std::io::Error::other("address resolved to nothing")))
}

/// A blocking protocol client bound to one server address.
///
/// Deprecated shim over [`Connection`]: every call opens a fresh
/// session, issues one request, and closes — the old
/// connect-per-request behavior. New code should hold a [`Connection`]
/// and pipeline over it.
#[deprecated(
    since = "0.3.0",
    note = "use `Connection` for persistent, pipelined sessions"
)]
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

#[allow(deprecated)]
impl Client {
    /// Creates a client for `addr` with a 30 s per-call timeout.
    pub fn new(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Ok(Client {
            addr: resolve(addr)?,
            timeout: Duration::from_secs(30),
        })
    }

    /// Overrides the per-call socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn session(&self) -> ClientResult<Connection> {
        Connection::open_with_timeout(self.addr, self.timeout)
    }

    /// Sends one request frame and reads the one response frame over a
    /// fresh connection.
    pub fn call(&self, request: &Request) -> ClientResult<Response> {
        self.session()?.call(request)
    }

    /// Liveness probe; returns the echoed bytes.
    pub fn ping(&self, echo: &[u8]) -> ClientResult<Vec<u8>> {
        self.session()?.ping(echo)
    }

    /// Compresses a field; returns the size report and artifact bytes.
    pub fn compress(&self, request: CompressRequest) -> ClientResult<(WireReport, Vec<u8>)> {
        self.session()?.compress(request)
    }

    /// Reconstructs a field from artifact bytes.
    pub fn decompress(&self, artifact: &[u8]) -> ClientResult<(Shape, Vec<f64>)> {
        self.session()?.decompress(artifact)
    }

    /// Summary statistics for a field.
    pub fn field_stats(&self, shape: Shape, data: &[f64]) -> ClientResult<FieldStatsReply> {
        self.session()?.field_stats(shape, data)
    }

    /// Runs model selection on a field.
    pub fn select_model(&self, request: SelectRequest) -> ClientResult<SelectReply> {
        self.session()?.select_model(request)
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&self) -> ClientResult<()> {
        self.session()?.shutdown()
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Unexpected {
        kind: response.kind(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let msgs = [
            ClientError::Io(std::io::Error::other("boom")).to_string(),
            ClientError::Decode(DecodeError::Truncated { what: "header" }).to_string(),
            ClientError::Server {
                kind: ServerErrorKind::Busy,
                message: "full".into(),
            }
            .to_string(),
            ClientError::Unexpected { kind: 0x42 }.to_string(),
        ];
        assert!(msgs[0].contains("boom"));
        assert!(msgs[1].contains("header"));
        assert!(msgs[2].contains("busy"));
        assert!(msgs[3].contains("0x42"));
    }

    #[test]
    fn request_ids_are_fresh_and_nonzero() {
        // `fresh_id` must never hand out 0 (the v1 implicit id) even
        // after wrapping.
        let mut next = u64::MAX;
        let wrapped = {
            let id = next;
            next = next.wrapping_add(1).max(1);
            (id, next)
        };
        assert_eq!(wrapped.0, u64::MAX);
        assert_eq!(wrapped.1, 1);
    }
}
