//! The framed wire protocol spoken by `lrm-server` (LRMP).
//!
//! Every message — request or response — travels as one **frame**. Two
//! header layouts are live; the version field at offset 4 selects one:
//!
//! | offset | size | v1 field | v2 field |
//! |-------:|-----:|----------|----------|
//! | 0      | 4    | magic `"LRMP"` | magic `"LRMP"` |
//! | 4      | 2    | version `1`, `u16` LE | version `2`, `u16` LE |
//! | 6      | 1    | message kind | message kind |
//! | 7      | 1    | reserved (`0`) | reserved (`0`) |
//! | 8      | 8    | payload length, `u64` LE | payload length, `u64` LE |
//! | 16     | 8    | — payload starts | request id, `u64` LE |
//! | 24     | —    | | payload |
//!
//! v2 is a strict additive extension: the only layout change is the
//! request id between the fixed header and the payload, and every v1
//! payload decodes unchanged under v2 framing. The request id lets a
//! client pipeline many requests over one persistent connection — the
//! server tags each response frame with the id of the request it
//! answers, and responses may arrive **out of order**. v1 frames carry
//! an implicit id of `0` and keep their one-request-per-connection
//! semantics (the server closes the connection after answering), so
//! existing v1 tooling keeps working against a v2 server.
//!
//! Request kinds occupy `0x00..0x80`, success responses `0x80..0xE0`,
//! and typed error responses `0xE0..`. The payload layout per kind is
//! documented on [`Request`] and [`Response`]. The `0x06..0x0A` request
//! kinds are the v2 chunk-streaming family: a `CompressStreamBegin` (or
//! `DecompressStreamBegin`) frame opens a stream under its request id,
//! any number of `StreamChunk` frames append bytes to it, and
//! `StreamEnd` closes it; the server starts compressing completed
//! z-slabs while later chunks are still arriving and answers with one
//! ordinary `Compressed`/`Decompressed` response for the whole stream.
//!
//! The decoder follows the repo's hardened decode-path contract (see
//! DESIGN.md, "Decode-path contract & lint rules"): every parse is
//! `try_into`/`get`-based, malformed input maps to a typed
//! [`DecodeError`], and nothing on this path panics on hostile bytes.
//! `crates/lrm-server/src/protocol.rs` is registered in `lint.toml`
//! under both `[decode]` and `[wire]`.

use lrm_compress::{DecodeError, DecodeResult, Shape};
use lrm_core::{CompressionReport, LossyCodec, ReducedModelKind};

/// Magic bytes opening every frame.
pub const MAGIC: &[u8; 4] = b"LRMP";

/// The original protocol version: 16-byte header, no request id, one
/// request per connection.
pub const PROTOCOL_V1: u16 = 1;

/// The pipelined protocol version: 24-byte header whose last 8 bytes
/// are a `u64` LE request id. Decoders accept v1 and v2 and reject
/// anything else rather than guessing at the layout.
pub const PROTOCOL_V2: u16 = 2;

/// Bytes before the payload starts in a v1 frame.
pub const HEADER_LEN: usize = 16;

/// Bytes before the payload starts in a v2 frame (v1 header + id).
pub const HEADER_V2_LEN: usize = 24;

/// Request kinds (`0x00..0x80`).
pub const REQ_PING: u8 = 0x00;
/// Compress a field under a configured model/codec pair.
pub const REQ_COMPRESS: u8 = 0x01;
/// Reconstruct a field from artifact bytes.
pub const REQ_DECOMPRESS: u8 = 0x02;
/// Summary statistics for a field.
pub const REQ_FIELD_STATS: u8 = 0x03;
/// Run model selection for a field.
pub const REQ_SELECT_MODEL: u8 = 0x04;
/// Drain in-flight requests and stop the server.
pub const REQ_SHUTDOWN: u8 = 0x05;
/// Open a chunk-streamed compress under this frame's request id; the
/// payload is the compress metadata (no samples).
pub const REQ_COMPRESS_STREAM_BEGIN: u8 = 0x06;
/// Append raw bytes to the stream opened under this frame's request id.
pub const REQ_STREAM_CHUNK: u8 = 0x07;
/// Close the stream opened under this frame's request id.
pub const REQ_STREAM_END: u8 = 0x08;
/// Open a chunk-streamed decompress: artifact bytes follow in
/// `StreamChunk` frames.
pub const REQ_DECOMPRESS_STREAM_BEGIN: u8 = 0x09;

/// Success response kinds (`0x80..0xE0`).
pub const RESP_PONG: u8 = 0x80;
/// Compression succeeded; payload carries report + artifact.
pub const RESP_COMPRESSED: u8 = 0x81;
/// Decompression succeeded; payload carries shape + samples.
pub const RESP_DECOMPRESSED: u8 = 0x82;
/// Field statistics.
pub const RESP_STATS: u8 = 0x83;
/// Model-selection outcome.
pub const RESP_SELECTED: u8 = 0x84;
/// Shutdown acknowledged; the server drains and exits.
pub const RESP_SHUTDOWN_ACK: u8 = 0x85;

/// Typed error response kinds (`0xE0..`).
pub const RESP_ERR_BUSY: u8 = 0xE0;
/// Request payload exceeds the server's configured maximum.
pub const RESP_ERR_TOO_LARGE: u8 = 0xE1;
/// The per-request deadline elapsed before a reply was ready.
pub const RESP_ERR_TIMEOUT: u8 = 0xE2;
/// The request frame or payload failed to decode.
pub const RESP_ERR_MALFORMED: u8 = 0xE3;
/// The request decoded but execution failed.
pub const RESP_ERR_INTERNAL: u8 = 0xE4;

/// A parsed frame header, version-agnostic: v1 headers surface with
/// `request_id == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Wire version of the frame ([`PROTOCOL_V1`] or [`PROTOCOL_V2`]).
    pub version: u16,
    /// Message kind byte.
    pub kind: u8,
    /// Request id tagging the frame (implicit `0` for v1 frames).
    pub request_id: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
}

impl FrameHeader {
    /// Header size in bytes for this frame's version.
    pub fn header_len(&self) -> usize {
        if self.version == PROTOCOL_V2 {
            HEADER_V2_LEN
        } else {
            HEADER_LEN
        }
    }
}

/// One decoded frame: version, kind, request id, raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire version the frame arrived under.
    pub version: u16,
    /// Message kind byte (one of the `REQ_*`/`RESP_*` constants once
    /// interpreted; raw here).
    pub kind: u8,
    /// Request id (implicit `0` for v1 frames).
    pub request_id: u64,
    /// Payload bytes, exactly as framed.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serializes a v1 frame: 16-byte header + payload.
    pub fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&PROTOCOL_V1.to_le_bytes());
        out.push(kind);
        out.push(0);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Serializes a v2 frame: 24-byte header (with request id) +
    /// payload.
    pub fn encode_v2(kind: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_V2_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&PROTOCOL_V2.to_le_bytes());
        out.push(kind);
        out.push(0);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&request_id.to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Incremental header parse for the streaming socket reader:
    /// `Ok(Some(header))` once the full (version-dependent) header is
    /// present, `Ok(None)` when `b` is a consistent prefix that needs
    /// more bytes, and a typed [`DecodeError`] the moment the bytes can
    /// no longer open a valid frame. Validates eagerly, so garbage is
    /// rejected after as few bytes as possible.
    pub fn parse_header_prefix(b: &[u8]) -> DecodeResult<Option<FrameHeader>> {
        let probe = b.len().min(4);
        if b.get(..probe) != MAGIC.get(..probe) {
            return Err(DecodeError::Corrupt {
                what: "frame magic",
            });
        }
        let Some(version) = b
            .get(4..6)
            .and_then(|s| s.try_into().ok())
            .map(u16::from_le_bytes)
        else {
            return Ok(None);
        };
        if version != PROTOCOL_V1 && version != PROTOCOL_V2 {
            return Err(DecodeError::UnsupportedVersion {
                found: version.min(u8::MAX as u16) as u8,
                supported: PROTOCOL_V2 as u8,
            });
        }
        if let Some(reserved) = b.get(7) {
            if *reserved != 0 {
                return Err(DecodeError::Corrupt {
                    what: "frame reserved byte",
                });
            }
        }
        let need = if version == PROTOCOL_V2 {
            HEADER_V2_LEN
        } else {
            HEADER_LEN
        };
        if b.len() < need {
            return Ok(None);
        }
        let kind = *b
            .get(6)
            .ok_or(DecodeError::Truncated { what: "frame kind" })?;
        let payload_len = b
            .get(8..16)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(DecodeError::Truncated {
                what: "frame length",
            })?;
        let request_id = if version == PROTOCOL_V2 {
            b.get(16..24)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or(DecodeError::Truncated {
                    what: "frame request id",
                })?
        } else {
            0
        };
        Ok(Some(FrameHeader {
            version,
            kind,
            request_id,
            payload_len,
        }))
    }

    /// Parses the fixed header of an exact buffer, either version.
    /// Truncation is a typed error (unlike [`Frame::parse_header_prefix`],
    /// which reports it as "need more bytes").
    pub fn parse_header(b: &[u8]) -> DecodeResult<FrameHeader> {
        Frame::parse_header_prefix(b)?.ok_or(DecodeError::Truncated {
            what: "frame header",
        })
    }

    /// Parses one complete frame from an exact byte buffer: header,
    /// payload, and nothing after it. Every structural defect — bad
    /// magic, unknown version, truncation, trailing bytes — is a typed
    /// [`DecodeError`]; this never panics. Accepts v1 and v2 framing.
    pub fn from_bytes(b: &[u8]) -> DecodeResult<Frame> {
        let header = Frame::parse_header(b)?;
        let len = usize::try_from(header.payload_len).map_err(|_| DecodeError::Corrupt {
            what: "frame length exceeds address space",
        })?;
        let total = header
            .header_len()
            .checked_add(len)
            .ok_or(DecodeError::Corrupt {
                what: "frame length overflow",
            })?;
        let payload = b
            .get(header.header_len()..total)
            .ok_or(DecodeError::Truncated {
                what: "frame payload",
            })?;
        if b.len() != total {
            return Err(DecodeError::Corrupt {
                what: "frame trailing bytes",
            });
        }
        Ok(Frame {
            version: header.version,
            kind: header.kind,
            request_id: header.request_id,
            payload: payload.to_vec(),
        })
    }
}

// ---------------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a payload; every accessor returns a typed
/// error instead of panicking.
struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> DecodeResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::Corrupt { what })?;
        let s = self
            .b
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated { what })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> DecodeResult<u8> {
        Ok(*self
            .take(1, what)?
            .first()
            .ok_or(DecodeError::Truncated { what })?)
    }

    fn u16(&mut self, what: &'static str) -> DecodeResult<u16> {
        self.take(2, what)?
            .try_into()
            .map(u16::from_le_bytes)
            .map_err(|_| DecodeError::Truncated { what })
    }

    fn u32(&mut self, what: &'static str) -> DecodeResult<u32> {
        self.take(4, what)?
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| DecodeError::Truncated { what })
    }

    fn u64(&mut self, what: &'static str) -> DecodeResult<u64> {
        self.take(8, what)?
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| DecodeError::Truncated { what })
    }

    fn f64(&mut self, what: &'static str) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Remaining bytes (consumes the cursor's tail).
    fn rest(&mut self) -> &'a [u8] {
        let s = self.b.get(self.pos..).unwrap_or(&[]);
        self.pos = self.b.len();
        s
    }

    /// Errors unless the payload was consumed exactly.
    fn finish(&self, what: &'static str) -> DecodeResult<()> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(DecodeError::Corrupt { what })
        }
    }
}

/// A grid shape as framed on the wire: 3 × `u32` extents, validated so
/// the element count cannot overflow (nor commit the decoder to absurd
/// buffers before the sample count is checked against the payload).
fn decode_shape(r: &mut Reader<'_>) -> DecodeResult<Shape> {
    let d0 = r.u32("shape extent")? as usize;
    let d1 = r.u32("shape extent")? as usize;
    let d2 = r.u32("shape extent")? as usize;
    d0.checked_mul(d1.max(1))
        .and_then(|p| p.checked_mul(d2.max(1)))
        .ok_or(DecodeError::Corrupt {
            what: "shape overflow",
        })?;
    Ok(Shape { dims: [d0, d1, d2] })
}

fn encode_shape(out: &mut Vec<u8>, shape: Shape) {
    for d in shape.dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
}

/// Decodes the remaining payload as `shape.len()` LE `f64` samples.
fn decode_samples(r: &mut Reader<'_>, shape: Shape) -> DecodeResult<Vec<f64>> {
    let count = shape.len();
    let nbytes = count.checked_mul(8).ok_or(DecodeError::Corrupt {
        what: "sample count overflow",
    })?;
    let raw = r.take(nbytes, "field samples")?;
    // Sized from bytes already in memory, not from the claimed count:
    // `take` has bounds-checked `raw` against the real payload, so a
    // hostile shape cannot commit the decoder to a larger buffer.
    let mut data = Vec::with_capacity(raw.len() / 8);
    for c in raw.chunks_exact(8) {
        let bits = c
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| DecodeError::Truncated {
                what: "field sample",
            })?;
        data.push(f64::from_bits(bits));
    }
    if data.len() != count {
        return Err(DecodeError::ShapeMismatch {
            expected: count,
            found: data.len(),
        });
    }
    Ok(data)
}

fn encode_samples(out: &mut Vec<u8>, data: &[f64]) {
    out.reserve(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Reduced-model wire tags
// ---------------------------------------------------------------------------

/// Serializes a model as `(tag, param)` — the same numbering the
/// artifact metadata uses, so tooling sees one vocabulary.
pub fn model_to_tag(model: ReducedModelKind) -> (u8, u32) {
    match model {
        ReducedModelKind::Direct => (0, 0),
        ReducedModelKind::OneBase => (1, 0),
        ReducedModelKind::MultiBase(gz) => (2, gz as u32),
        ReducedModelKind::DuoModel => (3, 0),
        ReducedModelKind::Pca => (4, 0),
        ReducedModelKind::Svd => (5, 0),
        ReducedModelKind::Wavelet => (6, 0),
        ReducedModelKind::PcaBlocked(b) => (7, b as u32),
        ReducedModelKind::SvdBlocked(b) => (8, b as u32),
        ReducedModelKind::SvdRandomized => (9, 0),
    }
}

/// Inverse of [`model_to_tag`]. `DuoModel` (tag 3) is rejected: it needs
/// an auxiliary coarse field no request carries, and accepting it would
/// put a panic within reach of the wire.
pub fn model_from_tag(tag: u8, param: u32) -> DecodeResult<ReducedModelKind> {
    match tag {
        0 => Ok(ReducedModelKind::Direct),
        1 => Ok(ReducedModelKind::OneBase),
        2 => Ok(ReducedModelKind::MultiBase((param as usize).max(1))),
        3 => Err(DecodeError::Corrupt {
            what: "DuoModel cannot be served (needs an aux field)",
        }),
        4 => Ok(ReducedModelKind::Pca),
        5 => Ok(ReducedModelKind::Svd),
        6 => Ok(ReducedModelKind::Wavelet),
        7 => Ok(ReducedModelKind::PcaBlocked((param as usize).max(1))),
        8 => Ok(ReducedModelKind::SvdBlocked((param as usize).max(1))),
        9 => Ok(ReducedModelKind::SvdRandomized),
        tag => Err(DecodeError::UnknownTag {
            what: "reduced-model",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A compression job: model + dual-bound codecs + the field itself.
///
/// Payload layout: model tag `u8`, model param `u32`, orig codec (9 B),
/// delta codec (9 B), `scan_1d` `u8`, chunk count `u16`, shape 3 ×
/// `u32`, then `shape.len()` LE `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressRequest {
    /// The reduced model to precondition with.
    pub model: ReducedModelKind,
    /// Codec/bound for original data and reduced representations.
    pub orig: LossyCodec,
    /// Codec/bound for deltas.
    pub delta: LossyCodec,
    /// Compress the delta as a flat 1-D stream.
    pub scan_1d: bool,
    /// Requested z-slab chunk count (`0` = server default).
    pub chunks: u16,
    /// Field extents.
    pub shape: Shape,
    /// Field samples, `shape.len()` of them.
    pub data: Vec<f64>,
}

/// A model-selection job.
///
/// Payload layout: `exhaustive` `u8`, orig codec (9 B), delta codec
/// (9 B), shape 3 × `u32`, then `shape.len()` LE `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectRequest {
    /// Force full-field candidate trials instead of the cheap strided
    /// subsample.
    pub exhaustive: bool,
    /// Codec/bound for original data and reduced representations.
    pub orig: LossyCodec,
    /// Codec/bound for deltas.
    pub delta: LossyCodec,
    /// Field extents.
    pub shape: Shape,
    /// Field samples, `shape.len()` of them.
    pub data: Vec<f64>,
}

/// Metadata opening a chunk-streamed compress: everything a
/// [`CompressRequest`] carries except the samples, which follow in
/// [`Request::StreamChunk`] frames as raw LE `f64` bytes.
///
/// Payload layout: model tag `u8`, model param `u32`, orig codec (9 B),
/// delta codec (9 B), `scan_1d` `u8`, chunk count `u16`, shape 3 ×
/// `u32`. No samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressStreamMeta {
    /// The reduced model to precondition with.
    pub model: ReducedModelKind,
    /// Codec/bound for original data and reduced representations.
    pub orig: LossyCodec,
    /// Codec/bound for deltas.
    pub delta: LossyCodec,
    /// Compress the delta as a flat 1-D stream.
    pub scan_1d: bool,
    /// Requested z-slab chunk count (`0` = server default).
    pub chunks: u16,
    /// Field extents; chunk bytes must total `shape.len() * 8`.
    pub shape: Shape,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the payload is echoed back verbatim.
    Ping {
        /// Opaque bytes the server echoes in [`Response::Pong`].
        echo: Vec<u8>,
    },
    /// Compress a field (see [`CompressRequest`]).
    Compress(CompressRequest),
    /// Reconstruct a field; the payload is the artifact stream verbatim
    /// (version-0 single-chunk or version-1 chunked container).
    Decompress {
        /// Artifact bytes as produced by a compress response.
        artifact: Vec<u8>,
    },
    /// Summary statistics; payload is shape + samples.
    FieldStats {
        /// Field extents.
        shape: Shape,
        /// Field samples.
        data: Vec<f64>,
    },
    /// Model selection (see [`SelectRequest`]).
    SelectModel(SelectRequest),
    /// Drain in-flight requests and stop the server. Empty payload.
    Shutdown,
    /// Open a chunk-streamed compress under this frame's request id
    /// (v2 only; see [`CompressStreamMeta`]).
    CompressStreamBegin(CompressStreamMeta),
    /// Append raw bytes to the open stream with this frame's request
    /// id: field samples (LE `f64` bytes) for a compress stream,
    /// artifact bytes for a decompress stream.
    StreamChunk {
        /// The chunk bytes, appended verbatim.
        bytes: Vec<u8>,
    },
    /// Close the open stream with this frame's request id; the server
    /// answers with one ordinary `Compressed`/`Decompressed` response.
    /// Empty payload.
    StreamEnd,
    /// Open a chunk-streamed decompress under this frame's request id;
    /// artifact bytes follow in [`Request::StreamChunk`] frames. Empty
    /// payload.
    DecompressStreamBegin,
}

impl Request {
    /// This request's frame kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping { .. } => REQ_PING,
            Request::Compress(_) => REQ_COMPRESS,
            Request::Decompress { .. } => REQ_DECOMPRESS,
            Request::FieldStats { .. } => REQ_FIELD_STATS,
            Request::SelectModel(_) => REQ_SELECT_MODEL,
            Request::Shutdown => REQ_SHUTDOWN,
            Request::CompressStreamBegin(_) => REQ_COMPRESS_STREAM_BEGIN,
            Request::StreamChunk { .. } => REQ_STREAM_CHUNK,
            Request::StreamEnd => REQ_STREAM_END,
            Request::DecompressStreamBegin => REQ_DECOMPRESS_STREAM_BEGIN,
        }
    }

    /// Serializes the payload (frame header excluded).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping { echo } => out.extend_from_slice(echo),
            Request::Compress(c) => {
                let (tag, param) = model_to_tag(c.model);
                out.push(tag);
                out.extend_from_slice(&param.to_le_bytes());
                out.extend_from_slice(&c.orig.to_bytes());
                out.extend_from_slice(&c.delta.to_bytes());
                out.push(c.scan_1d as u8);
                out.extend_from_slice(&c.chunks.to_le_bytes());
                encode_shape(&mut out, c.shape);
                encode_samples(&mut out, &c.data);
            }
            Request::Decompress { artifact } => out.extend_from_slice(artifact),
            Request::FieldStats { shape, data } => {
                encode_shape(&mut out, *shape);
                encode_samples(&mut out, data);
            }
            Request::SelectModel(s) => {
                out.push(s.exhaustive as u8);
                out.extend_from_slice(&s.orig.to_bytes());
                out.extend_from_slice(&s.delta.to_bytes());
                encode_shape(&mut out, s.shape);
                encode_samples(&mut out, &s.data);
            }
            Request::Shutdown => {}
            Request::CompressStreamBegin(m) => {
                let (tag, param) = model_to_tag(m.model);
                out.push(tag);
                out.extend_from_slice(&param.to_le_bytes());
                out.extend_from_slice(&m.orig.to_bytes());
                out.extend_from_slice(&m.delta.to_bytes());
                out.push(m.scan_1d as u8);
                out.extend_from_slice(&m.chunks.to_le_bytes());
                encode_shape(&mut out, m.shape);
            }
            Request::StreamChunk { bytes } => out.extend_from_slice(bytes),
            Request::StreamEnd => {}
            Request::DecompressStreamBegin => {}
        }
        out
    }

    /// Serializes into one complete v1 frame (implicit request id 0).
    pub fn to_frame(&self) -> Vec<u8> {
        Frame::encode(self.kind(), &self.encode_payload())
    }

    /// Serializes into one complete v2 frame tagged with `request_id`.
    pub fn to_frame_v2(&self, request_id: u64) -> Vec<u8> {
        Frame::encode_v2(self.kind(), request_id, &self.encode_payload())
    }

    /// Decodes a request from a frame's kind byte and payload. Every
    /// defect is a typed [`DecodeError`]; this never panics on hostile
    /// bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> DecodeResult<Request> {
        let mut r = Reader::new(payload);
        match kind {
            REQ_PING => Ok(Request::Ping {
                echo: r.rest().to_vec(),
            }),
            REQ_COMPRESS => {
                let tag = r.u8("compress model tag")?;
                let param = r.u32("compress model param")?;
                let model = model_from_tag(tag, param)?;
                let orig = LossyCodec::from_bytes(r.take(9, "compress orig codec")?)?;
                let delta = LossyCodec::from_bytes(r.take(9, "compress delta codec")?)?;
                let scan_1d = r.u8("compress scan_1d flag")? != 0;
                let chunks = r.u16("compress chunk count")?;
                let shape = decode_shape(&mut r)?;
                let data = decode_samples(&mut r, shape)?;
                r.finish("compress trailing bytes")?;
                Ok(Request::Compress(CompressRequest {
                    model,
                    orig,
                    delta,
                    scan_1d,
                    chunks,
                    shape,
                    data,
                }))
            }
            REQ_DECOMPRESS => Ok(Request::Decompress {
                artifact: r.rest().to_vec(),
            }),
            REQ_FIELD_STATS => {
                let shape = decode_shape(&mut r)?;
                let data = decode_samples(&mut r, shape)?;
                r.finish("stats trailing bytes")?;
                Ok(Request::FieldStats { shape, data })
            }
            REQ_SELECT_MODEL => {
                let exhaustive = r.u8("select exhaustive flag")? != 0;
                let orig = LossyCodec::from_bytes(r.take(9, "select orig codec")?)?;
                let delta = LossyCodec::from_bytes(r.take(9, "select delta codec")?)?;
                let shape = decode_shape(&mut r)?;
                let data = decode_samples(&mut r, shape)?;
                r.finish("select trailing bytes")?;
                Ok(Request::SelectModel(SelectRequest {
                    exhaustive,
                    orig,
                    delta,
                    shape,
                    data,
                }))
            }
            REQ_SHUTDOWN => {
                r.finish("shutdown trailing bytes")?;
                Ok(Request::Shutdown)
            }
            REQ_COMPRESS_STREAM_BEGIN => {
                let tag = r.u8("stream model tag")?;
                let param = r.u32("stream model param")?;
                let model = model_from_tag(tag, param)?;
                let orig = LossyCodec::from_bytes(r.take(9, "stream orig codec")?)?;
                let delta = LossyCodec::from_bytes(r.take(9, "stream delta codec")?)?;
                let scan_1d = r.u8("stream scan_1d flag")? != 0;
                let chunks = r.u16("stream chunk count")?;
                let shape = decode_shape(&mut r)?;
                r.finish("stream-begin trailing bytes")?;
                Ok(Request::CompressStreamBegin(CompressStreamMeta {
                    model,
                    orig,
                    delta,
                    scan_1d,
                    chunks,
                    shape,
                }))
            }
            REQ_STREAM_CHUNK => Ok(Request::StreamChunk {
                bytes: r.rest().to_vec(),
            }),
            REQ_STREAM_END => {
                r.finish("stream-end trailing bytes")?;
                Ok(Request::StreamEnd)
            }
            REQ_DECOMPRESS_STREAM_BEGIN => {
                r.finish("decompress-stream-begin trailing bytes")?;
                Ok(Request::DecompressStreamBegin)
            }
            tag => Err(DecodeError::UnknownTag {
                what: "request kind",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Size accounting as framed on the wire (fixed-width mirror of
/// [`CompressionReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireReport {
    /// Uncompressed input bytes.
    pub raw_bytes: u64,
    /// Bytes of the reduced representation.
    pub rep_bytes: u64,
    /// Bytes of the compressed delta.
    pub delta_bytes: u64,
}

impl WireReport {
    /// Converts from the pipeline's report.
    pub fn from_report(r: &CompressionReport) -> Self {
        Self {
            raw_bytes: r.raw_bytes as u64,
            rep_bytes: r.rep_bytes as u64,
            delta_bytes: r.delta_bytes as u64,
        }
    }

    /// Compression ratio: raw / (representation + delta).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / (self.rep_bytes + self.delta_bytes).max(1) as f64
    }
}

/// Field statistics as framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStatsReply {
    /// Sample count.
    pub count: u64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Shannon entropy of the LE byte stream, bits/byte.
    pub byte_entropy: f64,
}

/// One candidate trial in a [`SelectReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialReport {
    /// The model tried.
    pub model: ReducedModelKind,
    /// Uncompressed bytes the trial saw (the subsample when sampling).
    pub raw_bytes: u64,
    /// Stored bytes the trial produced.
    pub total_bytes: u64,
}

impl TrialReport {
    /// Compression ratio of the trial.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.total_bytes.max(1) as f64
    }
}

/// Model-selection outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectReply {
    /// The winning model.
    pub winner: ReducedModelKind,
    /// Whether trials ran on a strided subsample (false = full field).
    pub sampled: bool,
    /// Every trial, sorted best-first.
    pub trials: Vec<TrialReport>,
}

/// Which typed error a server error frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerErrorKind {
    /// The server is at its in-flight limit; retry later.
    Busy,
    /// The request payload exceeds the configured maximum.
    TooLarge,
    /// The per-request deadline elapsed.
    Timeout,
    /// The request frame or payload failed to decode.
    Malformed,
    /// The request decoded but execution failed.
    Internal,
}

impl ServerErrorKind {
    /// The frame kind byte for this error.
    pub fn kind_byte(&self) -> u8 {
        match self {
            ServerErrorKind::Busy => RESP_ERR_BUSY,
            ServerErrorKind::TooLarge => RESP_ERR_TOO_LARGE,
            ServerErrorKind::Timeout => RESP_ERR_TIMEOUT,
            ServerErrorKind::Malformed => RESP_ERR_MALFORMED,
            ServerErrorKind::Internal => RESP_ERR_INTERNAL,
        }
    }

    /// Display name matching the protocol documentation.
    pub fn name(&self) -> &'static str {
        match self {
            ServerErrorKind::Busy => "busy",
            ServerErrorKind::TooLarge => "too-large",
            ServerErrorKind::Timeout => "timeout",
            ServerErrorKind::Malformed => "malformed",
            ServerErrorKind::Internal => "internal",
        }
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`] payload.
    Pong {
        /// The request's echo bytes, verbatim.
        echo: Vec<u8>,
    },
    /// Compression result: size report + artifact stream (a version-1
    /// chunked container when the server chunked the field, else a
    /// version-0 single-chunk stream).
    Compressed {
        /// Size accounting.
        report: WireReport,
        /// The self-describing artifact bytes.
        artifact: Vec<u8>,
    },
    /// Decompression result: shape + samples.
    Decompressed {
        /// Field extents.
        shape: Shape,
        /// Reconstructed samples.
        data: Vec<f64>,
    },
    /// Field statistics.
    Stats(FieldStatsReply),
    /// Model-selection outcome.
    Selected(SelectReply),
    /// Shutdown acknowledged.
    ShutdownAck,
    /// A typed error frame. The message is human-readable context.
    Error {
        /// Which error class.
        kind: ServerErrorKind,
        /// Human-readable context (UTF-8; lossy-decoded on read).
        message: String,
    },
}

impl Response {
    /// This response's frame kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Pong { .. } => RESP_PONG,
            Response::Compressed { .. } => RESP_COMPRESSED,
            Response::Decompressed { .. } => RESP_DECOMPRESSED,
            Response::Stats(_) => RESP_STATS,
            Response::Selected(_) => RESP_SELECTED,
            Response::ShutdownAck => RESP_SHUTDOWN_ACK,
            Response::Error { kind, .. } => kind.kind_byte(),
        }
    }

    /// Serializes the payload (frame header excluded).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong { echo } => out.extend_from_slice(echo),
            Response::Compressed { report, artifact } => {
                out.extend_from_slice(&report.raw_bytes.to_le_bytes());
                out.extend_from_slice(&report.rep_bytes.to_le_bytes());
                out.extend_from_slice(&report.delta_bytes.to_le_bytes());
                out.extend_from_slice(artifact);
            }
            Response::Decompressed { shape, data } => {
                encode_shape(&mut out, *shape);
                encode_samples(&mut out, data);
            }
            Response::Stats(s) => {
                out.extend_from_slice(&s.count.to_le_bytes());
                for v in [s.min, s.max, s.mean, s.variance, s.byte_entropy] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Response::Selected(s) => {
                let (tag, param) = model_to_tag(s.winner);
                out.push(tag);
                out.extend_from_slice(&param.to_le_bytes());
                out.push(s.sampled as u8);
                out.extend_from_slice(
                    &(s.trials.len().min(u16::MAX as usize) as u16).to_le_bytes(),
                );
                for t in s.trials.iter().take(u16::MAX as usize) {
                    let (tag, param) = model_to_tag(t.model);
                    out.push(tag);
                    out.extend_from_slice(&param.to_le_bytes());
                    out.extend_from_slice(&t.raw_bytes.to_le_bytes());
                    out.extend_from_slice(&t.total_bytes.to_le_bytes());
                }
            }
            Response::ShutdownAck => {}
            Response::Error { message, .. } => out.extend_from_slice(message.as_bytes()),
        }
        out
    }

    /// Serializes into one complete v1 frame (implicit request id 0).
    pub fn to_frame(&self) -> Vec<u8> {
        Frame::encode(self.kind(), &self.encode_payload())
    }

    /// Serializes into one complete v2 frame tagged with `request_id`.
    pub fn to_frame_v2(&self, request_id: u64) -> Vec<u8> {
        Frame::encode_v2(self.kind(), request_id, &self.encode_payload())
    }

    /// Decodes a response from a frame's kind byte and payload. Every
    /// defect is a typed [`DecodeError`]; this never panics on hostile
    /// bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> DecodeResult<Response> {
        let mut r = Reader::new(payload);
        match kind {
            RESP_PONG => Ok(Response::Pong {
                echo: r.rest().to_vec(),
            }),
            RESP_COMPRESSED => {
                let report = WireReport {
                    raw_bytes: r.u64("compressed raw bytes")?,
                    rep_bytes: r.u64("compressed rep bytes")?,
                    delta_bytes: r.u64("compressed delta bytes")?,
                };
                Ok(Response::Compressed {
                    report,
                    artifact: r.rest().to_vec(),
                })
            }
            RESP_DECOMPRESSED => {
                let shape = decode_shape(&mut r)?;
                let data = decode_samples(&mut r, shape)?;
                r.finish("decompressed trailing bytes")?;
                Ok(Response::Decompressed { shape, data })
            }
            RESP_STATS => {
                let reply = FieldStatsReply {
                    count: r.u64("stats count")?,
                    min: r.f64("stats min")?,
                    max: r.f64("stats max")?,
                    mean: r.f64("stats mean")?,
                    variance: r.f64("stats variance")?,
                    byte_entropy: r.f64("stats entropy")?,
                };
                r.finish("stats trailing bytes")?;
                Ok(Response::Stats(reply))
            }
            RESP_SELECTED => {
                let tag = r.u8("selected winner tag")?;
                let param = r.u32("selected winner param")?;
                let winner = model_from_tag(tag, param)?;
                let sampled = r.u8("selected sampled flag")? != 0;
                let count = r.u16("selected trial count")? as usize;
                let mut trials = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let tag = r.u8("trial model tag")?;
                    let param = r.u32("trial model param")?;
                    trials.push(TrialReport {
                        model: model_from_tag(tag, param)?,
                        raw_bytes: r.u64("trial raw bytes")?,
                        total_bytes: r.u64("trial total bytes")?,
                    });
                }
                r.finish("selected trailing bytes")?;
                Ok(Response::Selected(SelectReply {
                    winner,
                    sampled,
                    trials,
                }))
            }
            RESP_SHUTDOWN_ACK => {
                r.finish("shutdown-ack trailing bytes")?;
                Ok(Response::ShutdownAck)
            }
            RESP_ERR_BUSY | RESP_ERR_TOO_LARGE | RESP_ERR_TIMEOUT | RESP_ERR_MALFORMED
            | RESP_ERR_INTERNAL => {
                let err_kind = match kind {
                    RESP_ERR_BUSY => ServerErrorKind::Busy,
                    RESP_ERR_TOO_LARGE => ServerErrorKind::TooLarge,
                    RESP_ERR_TIMEOUT => ServerErrorKind::Timeout,
                    RESP_ERR_MALFORMED => ServerErrorKind::Malformed,
                    _ => ServerErrorKind::Internal,
                };
                Ok(Response::Error {
                    kind: err_kind,
                    message: String::from_utf8_lossy(r.rest()).into_owned(),
                })
            }
            tag => Err(DecodeError::UnknownTag {
                what: "response kind",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_compress() -> Request {
        Request::Compress(CompressRequest {
            model: ReducedModelKind::OneBase,
            orig: LossyCodec::SzRel(1e-5),
            delta: LossyCodec::SzRel(1e-3),
            scan_1d: true,
            chunks: 4,
            shape: Shape::d3(3, 2, 2),
            data: (0..12).map(|i| i as f64 * 0.25 - 1.0).collect(),
        })
    }

    #[test]
    fn frame_roundtrips() {
        let bytes = Frame::encode(REQ_PING, b"hello");
        let f = Frame::from_bytes(&bytes).expect("frame");
        assert_eq!(f.version, PROTOCOL_V1);
        assert_eq!(f.kind, REQ_PING);
        assert_eq!(f.request_id, 0);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn v2_frame_roundtrips_with_request_id() {
        let bytes = Frame::encode_v2(REQ_PING, 0xDEAD_BEEF_0042, b"hello");
        let f = Frame::from_bytes(&bytes).expect("frame");
        assert_eq!(f.version, PROTOCOL_V2);
        assert_eq!(f.kind, REQ_PING);
        assert_eq!(f.request_id, 0xDEAD_BEEF_0042);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn header_prefix_parses_incrementally() {
        let bytes = Frame::encode_v2(REQ_STREAM_CHUNK, 7, &[1, 2, 3]);
        // Consistent prefixes ask for more bytes rather than erroring.
        for cut in 0..HEADER_V2_LEN {
            assert_eq!(
                Frame::parse_header_prefix(&bytes[..cut]).expect("prefix"),
                None,
                "cut {cut}"
            );
        }
        let header = Frame::parse_header_prefix(&bytes[..HEADER_V2_LEN])
            .expect("header")
            .expect("complete");
        assert_eq!(header.version, PROTOCOL_V2);
        assert_eq!(header.kind, REQ_STREAM_CHUNK);
        assert_eq!(header.request_id, 7);
        assert_eq!(header.payload_len, 3);
        assert_eq!(header.header_len(), HEADER_V2_LEN);

        // A v1 header completes at 16 bytes with the implicit id.
        let v1 = Frame::encode(REQ_PING, b"x");
        let header = Frame::parse_header_prefix(&v1[..HEADER_LEN])
            .expect("header")
            .expect("complete");
        assert_eq!(header.version, PROTOCOL_V1);
        assert_eq!(header.request_id, 0);
        assert_eq!(header.header_len(), HEADER_LEN);

        // Bad magic is rejected from the very first divergent byte.
        assert!(Frame::parse_header_prefix(b"X").is_err());
        assert!(Frame::parse_header_prefix(b"LRMX").is_err());
        // An unknown version is rejected as soon as it is visible.
        assert!(matches!(
            Frame::parse_header_prefix(&[b'L', b'R', b'M', b'P', 9, 0]),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn every_request_roundtrips() {
        let requests = vec![
            Request::Ping {
                echo: vec![1, 2, 3],
            },
            sample_compress(),
            Request::Decompress {
                artifact: vec![9; 40],
            },
            Request::FieldStats {
                shape: Shape::d2(4, 2),
                data: (0..8).map(|i| (i as f64).sin()).collect(),
            },
            Request::SelectModel(SelectRequest {
                exhaustive: true,
                orig: LossyCodec::ZfpPrecision(16),
                delta: LossyCodec::ZfpPrecision(8),
                shape: Shape::d1(6),
                data: vec![0.5; 6],
            }),
            Request::Shutdown,
            Request::CompressStreamBegin(CompressStreamMeta {
                model: ReducedModelKind::MultiBase(2),
                orig: LossyCodec::SzRel(1e-5),
                delta: LossyCodec::SzRel(1e-3),
                scan_1d: false,
                chunks: 3,
                shape: Shape::d3(4, 4, 6),
            }),
            Request::StreamChunk {
                bytes: vec![0xAB; 17],
            },
            Request::StreamEnd,
            Request::DecompressStreamBegin,
        ];
        for req in requests {
            // v1 framing (implicit id 0)…
            let frame = Frame::from_bytes(&req.to_frame()).expect("frame");
            let back = Request::decode(frame.kind, &frame.payload).expect("request");
            assert_eq!(req, back);
            // …and v2 framing with a pipelined request id.
            let frame = Frame::from_bytes(&req.to_frame_v2(31)).expect("v2 frame");
            assert_eq!(frame.request_id, 31);
            let back = Request::decode(frame.kind, &frame.payload).expect("request");
            assert_eq!(req, back);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        let responses = vec![
            Response::Pong { echo: vec![7; 9] },
            Response::Compressed {
                report: WireReport {
                    raw_bytes: 4096,
                    rep_bytes: 100,
                    delta_bytes: 300,
                },
                artifact: vec![1, 2, 3],
            },
            Response::Decompressed {
                shape: Shape::d3(2, 2, 2),
                data: vec![1.5; 8],
            },
            Response::Stats(FieldStatsReply {
                count: 8,
                min: -1.0,
                max: 2.0,
                mean: 0.5,
                variance: 0.25,
                byte_entropy: 3.7,
            }),
            Response::Selected(SelectReply {
                winner: ReducedModelKind::Pca,
                sampled: true,
                trials: vec![
                    TrialReport {
                        model: ReducedModelKind::Pca,
                        raw_bytes: 1000,
                        total_bytes: 90,
                    },
                    TrialReport {
                        model: ReducedModelKind::Direct,
                        raw_bytes: 1000,
                        total_bytes: 250,
                    },
                ],
            }),
            Response::ShutdownAck,
            Response::Error {
                kind: ServerErrorKind::Busy,
                message: "at capacity".into(),
            },
        ];
        for resp in responses {
            let frame = Frame::from_bytes(&resp.to_frame()).expect("frame");
            let back = Response::decode(frame.kind, &frame.payload).expect("response");
            assert_eq!(resp, back);
            let frame = Frame::from_bytes(&resp.to_frame_v2(99)).expect("v2 frame");
            assert_eq!(frame.request_id, 99);
            let back = Response::decode(frame.kind, &frame.payload).expect("response");
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn nan_samples_survive_the_wire_bitwise() {
        // Samples travel as raw bits, so NaN payloads and signed zeros
        // are preserved exactly (the codecs decide how to handle them).
        let req = Request::FieldStats {
            shape: Shape::d1(3),
            data: vec![f64::NAN, -0.0, f64::INFINITY],
        };
        let frame = Frame::from_bytes(&req.to_frame()).expect("frame");
        let Request::FieldStats { data, .. } =
            Request::decode(frame.kind, &frame.payload).expect("request")
        else {
            panic!("wrong variant");
        };
        assert!(data[0].is_nan());
        assert_eq!(data[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(data[2], f64::INFINITY);
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let good = sample_compress().to_frame();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(DecodeError::Corrupt { .. })
        ));
        // Future version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
        // Nonzero reserved byte.
        let mut bad = good.clone();
        bad[7] = 1;
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(DecodeError::Corrupt { .. })
        ));
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(DecodeError::Corrupt { .. })
        ));
        // Truncation anywhere is an error.
        for cut in 0..good.len() {
            assert!(Frame::from_bytes(&good[..cut]).is_err(), "cut {cut}");
        }
        // The same holds under v2 framing.
        let good = sample_compress().to_frame_v2(5);
        for cut in 0..good.len() {
            assert!(Frame::from_bytes(&good[..cut]).is_err(), "v2 cut {cut}");
        }
        let mut bad = good.clone();
        bad[7] = 0x40;
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(DecodeError::Corrupt { .. })
        ));
    }

    #[test]
    fn shape_data_mismatch_is_rejected() {
        // Claim 1000 samples but ship 12.
        let mut payload = Request::Ping { echo: vec![] }.encode_payload();
        payload.clear();
        let c = sample_compress();
        let Request::Compress(c) = c else {
            unreachable!()
        };
        let (tag, param) = model_to_tag(c.model);
        payload.push(tag);
        payload.extend_from_slice(&param.to_le_bytes());
        payload.extend_from_slice(&c.orig.to_bytes());
        payload.extend_from_slice(&c.delta.to_bytes());
        payload.push(1);
        payload.extend_from_slice(&4u16.to_le_bytes());
        for d in [10u32, 10, 10] {
            payload.extend_from_slice(&d.to_le_bytes());
        }
        for v in &c.data {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert!(Request::decode(REQ_COMPRESS, &payload).is_err());
    }

    #[test]
    fn duo_model_tag_is_rejected_on_the_wire() {
        assert!(model_from_tag(3, 0).is_err());
        for tag in [0u8, 1, 2, 4, 5, 6, 7, 8, 9] {
            let model = model_from_tag(tag, 2).expect("tag");
            assert_eq!(model_to_tag(model).0, tag);
        }
        assert!(matches!(
            model_from_tag(42, 0),
            Err(DecodeError::UnknownTag { .. })
        ));
    }

    #[test]
    fn unknown_kinds_are_typed_errors() {
        assert!(matches!(
            Request::decode(0x7F, &[]),
            Err(DecodeError::UnknownTag { .. })
        ));
        assert!(matches!(
            Response::decode(0x42, &[]),
            Err(DecodeError::UnknownTag { .. })
        ));
    }
}
