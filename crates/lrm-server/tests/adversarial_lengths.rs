//! Adversarial length-field tests against a live server: hostile
//! *declared* sizes — `u64::MAX` frame payload lengths, overflowing
//! shape extents, `u32::MAX` chunked-artifact counts, saturated stream
//! chunk counts — must be answered with typed `TooLarge`/`Malformed`
//! frames, never sized into an allocation, and must leave the server
//! serving. The static side of the same contract is `lrm-lint`'s
//! `wire-alloc-unclamped` pack over `protocol.rs`/`chunked.rs`.
#![allow(deprecated)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use lrm_core::{LossyCodec, ReducedModelKind};
use lrm_server::protocol::{
    REQ_COMPRESS, REQ_COMPRESS_STREAM_BEGIN, REQ_PING, RESP_ERR_MALFORMED, RESP_ERR_TOO_LARGE,
};
use lrm_server::{
    Client, ClientError, CompressRequest, CompressStreamMeta, Connection, Frame, Request, Server,
    ServerConfig, ServerErrorKind, ServerStats, Shape,
};

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<ServerStats>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// Sends raw bytes, half-closes, and returns the kind byte of the
/// *first* response frame the server answers with (a hostile stream
/// may draw more than one error frame before the close).
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Option<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(bytes).expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).ok()?;
    let header = Frame::parse_header(&reply).ok()?;
    let total = header.header_len() + usize::try_from(header.payload_len).ok()?;
    Frame::from_bytes(reply.get(..total)?).ok().map(|f| f.kind)
}

/// A tiny but well-formed compress request payload.
fn small_compress_payload() -> Vec<u8> {
    let shape = Shape::d3(4, 3, 2);
    Request::Compress(CompressRequest {
        model: ReducedModelKind::OneBase,
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: false,
        chunks: 1,
        shape,
        data: (0..shape.len()).map(|i| i as f64 * 0.25).collect(),
    })
    .encode_payload()
}

/// Byte offset of the shape extents inside compress / stream-begin
/// payloads: model tag (1) + param (4) + two 9-byte codecs + scan_1d
/// flag (1) + chunk count (2).
const SHAPE_OFFSET: usize = 1 + 4 + 9 + 9 + 1 + 2;

#[test]
fn declared_u64_max_payload_length_gets_typed_too_large() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // A v1 header claiming a u64::MAX payload: the length check must
    // answer TooLarge from the header alone — nothing is allocated or
    // read for a payload that will never arrive.
    let mut v1 = Frame::encode(REQ_PING, &[]);
    v1[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(send_raw(addr, &v1), Some(RESP_ERR_TOO_LARGE));

    // The same attack under a v2 (pipelined) header.
    let mut v2 = Frame::encode_v2(REQ_PING, 0xDEAD_BEEF, &[]);
    v2[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(send_raw(addr, &v2), Some(RESP_ERR_TOO_LARGE));

    // The server is still serving normal requests afterwards.
    let client = Client::new(addr).expect("client");
    assert_eq!(client.ping(b"alive").expect("ping"), b"alive");

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn overflowing_shape_in_compress_gets_typed_malformed() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // Overwrite the three shape extents with u32::MAX each: the element
    // count overflows usize, so the decoder must reject the shape
    // before sizing the sample buffer from it.
    let mut payload = small_compress_payload();
    for i in 0..3 {
        payload[SHAPE_OFFSET + 4 * i..SHAPE_OFFSET + 4 * (i + 1)]
            .copy_from_slice(&u32::MAX.to_le_bytes());
    }
    // Layout canary: the mutation must hit the shape field, and the
    // payload decoder must reject it locally too.
    assert!(Request::decode(REQ_COMPRESS, &payload).is_err());

    let frame = Frame::encode(REQ_COMPRESS, &payload);
    assert_eq!(send_raw(addr, &frame), Some(RESP_ERR_MALFORMED));

    let client = Client::new(addr).expect("client");
    assert_eq!(client.ping(b"alive").expect("ping"), b"alive");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn stream_begin_with_overflowing_shape_gets_typed_malformed() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // The v2 streaming path decodes the same shape layout; a hostile
    // stream-begin must die typed before any chunk buffer exists.
    let mut payload = Request::CompressStreamBegin(CompressStreamMeta {
        model: ReducedModelKind::OneBase,
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: false,
        chunks: 2,
        shape: Shape::d3(4, 3, 2),
    })
    .encode_payload();
    for i in 0..3 {
        payload[SHAPE_OFFSET + 4 * i..SHAPE_OFFSET + 4 * (i + 1)]
            .copy_from_slice(&u32::MAX.to_le_bytes());
    }
    assert!(Request::decode(REQ_COMPRESS_STREAM_BEGIN, &payload).is_err());

    let frame = Frame::encode_v2(REQ_COMPRESS_STREAM_BEGIN, 41, &payload);
    assert_eq!(send_raw(addr, &frame), Some(RESP_ERR_MALFORMED));

    let client = Client::new(addr).expect("client");
    assert_eq!(client.ping(b"alive").expect("ping"), b"alive");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn u32_max_chunk_count_artifact_gets_typed_malformed() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // A chunked-artifact container whose header claims u32::MAX chunks
    // (25-byte directory entries × u32::MAX would be ~100 GiB). The
    // decoder's chunk-count ceiling must reject it typed; the server
    // wraps that in a Malformed reply.
    let mut artifact = Vec::new();
    artifact.extend_from_slice(b"LRMC");
    artifact.extend_from_slice(&1u16.to_le_bytes()); // format version
    for d in [16u32, 16, 16] {
        artifact.extend_from_slice(&d.to_le_bytes());
    }
    artifact.extend_from_slice(&u32::MAX.to_le_bytes()); // chunk count

    let client = Client::new(addr).expect("client");
    match client.decompress(&artifact) {
        Err(ClientError::Server {
            kind: ServerErrorKind::Malformed,
            ..
        }) => {}
        other => panic!("expected Malformed frame, got {other:?}"),
    }

    assert_eq!(client.ping(b"alive").expect("ping"), b"alive");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn streamed_chunks_beyond_max_payload_get_typed_too_large() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        max_payload: 1024,
        ..ServerConfig::default()
    });

    // Under v2 streaming the per-frame length check still applies: a
    // chunk frame declaring more than max_payload is refused from its
    // header, so a stream cannot smuggle in an oversized buffer.
    let id = 9u64;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(
        &Request::CompressStreamBegin(CompressStreamMeta {
            model: ReducedModelKind::OneBase,
            orig: LossyCodec::SzRel(1e-5),
            delta: LossyCodec::SzRel(1e-3),
            scan_1d: false,
            chunks: 1,
            shape: Shape::d3(64, 64, 64),
        })
        .to_frame_v2(id),
    );
    bytes.extend_from_slice(
        &Request::StreamChunk {
            bytes: vec![0u8; 4096],
        }
        .to_frame_v2(id),
    );
    assert_eq!(send_raw(addr, &bytes), Some(RESP_ERR_TOO_LARGE));

    let client = Client::new(addr).expect("client");
    assert_eq!(client.ping(b"alive").expect("ping"), b"alive");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn saturated_stream_chunk_count_is_clamped_not_amplified() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    // A declared chunk count of u16::MAX on a 6-plane field: the engine
    // clamps parallelism to the z extent, so a hostile count cannot
    // multiply buffers or workers. The request must simply succeed.
    let shape = Shape::d3(5, 4, 6);
    let data: Vec<f64> = (0..shape.len()).map(|i| (i as f64 * 0.17).sin()).collect();
    let meta = CompressStreamMeta {
        model: ReducedModelKind::OneBase,
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: true,
        chunks: u16::MAX,
        shape,
    };
    let mut conn = Connection::open(addr).expect("open");
    let (report, artifact) = conn
        .compress_streamed(meta, &data, 512)
        .expect("streamed compress");
    assert_eq!(report.raw_bytes as usize, data.len() * 8);

    let (got_shape, got) = conn
        .decompress_streamed(&artifact, 512)
        .expect("decompress");
    assert_eq!(got_shape, shape);
    assert_eq!(got.len(), data.len());

    conn.shutdown().expect("shutdown");
    handle.join().expect("join");
}
