//! Corruption-robustness harness for the wire protocol, mirroring the
//! `lrm-compress`/`lrm-io` harnesses: every strict prefix of a valid
//! frame must be rejected with a typed `DecodeError`, and ≥ 1000
//! deterministically byte-flipped frames fed to the frame and
//! request/response decoders must never panic. The static side of the
//! same contract is enforced by `lrm-lint` on
//! `crates/lrm-server/src/protocol.rs`.

use lrm_core::{LossyCodec, ReducedModelKind};
use lrm_rng::Rng64;
use lrm_server::protocol::{
    CompressRequest, CompressStreamMeta, FieldStatsReply, Frame, Request, Response, SelectReply,
    SelectRequest, ServerErrorKind, TrialReport, WireReport,
};
use lrm_server::Shape;

const FLIP_TRIALS: usize = 1200;
const GARBAGE_TRIALS: usize = 500;

fn sample_requests(rng: &mut Rng64) -> Vec<Request> {
    let shape = Shape::d3(6, 5, 4);
    let data: Vec<f64> = (0..shape.len()).map(|i| (i as f64 * 0.11).sin()).collect();
    vec![
        Request::Ping {
            echo: rng.vec_u8(24),
        },
        Request::Compress(CompressRequest {
            model: ReducedModelKind::MultiBase(2),
            orig: LossyCodec::SzRel(1e-5),
            delta: LossyCodec::SzRel(1e-3),
            scan_1d: true,
            chunks: 2,
            shape,
            data: data.clone(),
        }),
        Request::Decompress {
            artifact: rng.vec_u8(200),
        },
        Request::FieldStats {
            shape: Shape::d2(10, 6),
            data: (0..60).map(|i| (i as f64 * 0.3).cos()).collect(),
        },
        Request::SelectModel(SelectRequest {
            exhaustive: false,
            orig: LossyCodec::ZfpPrecision(16),
            delta: LossyCodec::ZfpPrecision(8),
            shape,
            data,
        }),
        Request::Shutdown,
        // The v2 chunk-streaming kinds.
        Request::CompressStreamBegin(CompressStreamMeta {
            model: ReducedModelKind::OneBase,
            orig: LossyCodec::SzRel(1e-5),
            delta: LossyCodec::SzRel(1e-3),
            scan_1d: false,
            chunks: 3,
            shape,
        }),
        Request::StreamChunk {
            bytes: rng.vec_u8(96),
        },
        Request::StreamEnd,
        Request::DecompressStreamBegin,
    ]
}

fn sample_responses(rng: &mut Rng64) -> Vec<Response> {
    vec![
        Response::Pong {
            echo: rng.vec_u8(16),
        },
        Response::Compressed {
            report: WireReport {
                raw_bytes: 960,
                rep_bytes: 64,
                delta_bytes: 200,
            },
            artifact: rng.vec_u8(264),
        },
        Response::Decompressed {
            shape: Shape::d1(40),
            data: (0..40).map(|i| i as f64 * 0.5).collect(),
        },
        Response::Stats(FieldStatsReply {
            count: 40,
            min: -2.0,
            max: 3.0,
            mean: 0.25,
            variance: 1.5,
            byte_entropy: 4.2,
        }),
        Response::Selected(SelectReply {
            winner: ReducedModelKind::Svd,
            sampled: true,
            trials: vec![
                TrialReport {
                    model: ReducedModelKind::Svd,
                    raw_bytes: 960,
                    total_bytes: 120,
                },
                TrialReport {
                    model: ReducedModelKind::Direct,
                    raw_bytes: 960,
                    total_bytes: 400,
                },
            ],
        }),
        Response::ShutdownAck,
        Response::Error {
            kind: ServerErrorKind::Timeout,
            message: "deadline elapsed".into(),
        },
    ]
}

fn rng_id(rng: &mut Rng64) -> u64 {
    rng.next_u64()
}

fn flip_bytes(rng: &mut Rng64, stream: &mut [u8]) {
    if stream.is_empty() {
        return;
    }
    for _ in 0..1 + rng.range_usize(4) {
        let at = rng.range_usize(stream.len());
        let mask = 1 + rng.range_usize(255) as u8;
        stream[at] ^= mask;
    }
}

/// Decodes a mutated frame all the way through: framing first, then the
/// request and response payload decoders (both must tolerate the bytes).
fn decode_fully(bytes: &[u8]) {
    if let Ok(frame) = Frame::from_bytes(bytes) {
        let _ = Request::decode(frame.kind, &frame.payload);
        let _ = Response::decode(frame.kind, &frame.payload);
    }
}

#[test]
fn frame_prefix_truncation_is_always_an_error() {
    let mut rng = Rng64::new(21);
    for req in sample_requests(&mut rng) {
        // Both framings of every kind: v1 (16-byte header) and v2
        // (24-byte header with a request id).
        for bytes in [req.to_frame(), req.to_frame_v2(0x1122_3344_5566_7788)] {
            for cut in 0..bytes.len() {
                assert!(
                    Frame::from_bytes(&bytes[..cut]).is_err(),
                    "{:?}: frame prefix of {cut}/{} bytes decoded Ok",
                    req.kind(),
                    bytes.len()
                );
            }
            assert!(Frame::from_bytes(&bytes).is_ok());
        }
    }
    for resp in sample_responses(&mut rng) {
        for bytes in [resp.to_frame(), resp.to_frame_v2(u64::MAX)] {
            for cut in 0..bytes.len() {
                assert!(
                    Frame::from_bytes(&bytes[..cut]).is_err(),
                    "{:?}: frame prefix of {cut}/{} bytes decoded Ok",
                    resp.kind(),
                    bytes.len()
                );
            }
            assert!(Frame::from_bytes(&bytes).is_ok());
        }
    }
}

#[test]
fn payload_prefix_truncation_never_panics_and_structured_kinds_error() {
    // Truncating the payload *with a consistent header length* exercises
    // the payload decoders rather than the frame length check.
    let mut rng = Rng64::new(22);
    for req in sample_requests(&mut rng) {
        let payload = req.encode_payload();
        for cut in 0..payload.len() {
            let result = Request::decode(req.kind(), &payload[..cut]);
            // Ping/Decompress/StreamChunk accept any byte tail by
            // design; the structured kinds must reject every strict
            // prefix.
            if !matches!(
                req,
                Request::Ping { .. } | Request::Decompress { .. } | Request::StreamChunk { .. }
            ) {
                assert!(
                    result.is_err(),
                    "kind {:#04x}: payload prefix {cut}/{} decoded Ok",
                    req.kind(),
                    payload.len()
                );
            }
        }
    }
}

#[test]
fn request_byte_flips_never_panic() {
    let mut rng = Rng64::new(23);
    let frames: Vec<Vec<u8>> = sample_requests(&mut rng)
        .iter()
        .flat_map(|r| [r.to_frame(), r.to_frame_v2(rng_id(&mut rng))])
        .collect();
    let mut trials = 0;
    while trials < FLIP_TRIALS {
        for bytes in &frames {
            let mut mutated = bytes.clone();
            flip_bytes(&mut rng, &mut mutated);
            decode_fully(&mutated);
            trials += 1;
        }
    }
}

#[test]
fn response_byte_flips_never_panic() {
    let mut rng = Rng64::new(24);
    let frames: Vec<Vec<u8>> = sample_responses(&mut rng)
        .iter()
        .flat_map(|r| [r.to_frame(), r.to_frame_v2(rng_id(&mut rng))])
        .collect();
    let mut trials = 0;
    while trials < FLIP_TRIALS {
        for bytes in &frames {
            let mut mutated = bytes.clone();
            flip_bytes(&mut rng, &mut mutated);
            decode_fully(&mutated);
            trials += 1;
        }
    }
}

#[test]
fn garbage_streams_never_panic() {
    let mut rng = Rng64::new(25);
    for _ in 0..GARBAGE_TRIALS {
        let len = rng.range_usize(256);
        decode_fully(&rng.vec_u8(len));
    }
    // Valid magic + garbage tail: the worst case for the header parser.
    for _ in 0..GARBAGE_TRIALS {
        let len = rng.range_usize(256);
        let mut stream = b"LRMP".to_vec();
        stream.extend(rng.vec_u8(len));
        decode_fully(&stream);
    }
    // Valid header claiming a huge payload over a short buffer.
    let mut huge = Frame::encode(0x01, &[]);
    huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(Frame::from_bytes(&huge).is_err());
    // The same attack under a v2 header.
    let mut huge = Frame::encode_v2(0x06, u64::MAX, &[]);
    huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(Frame::from_bytes(&huge).is_err());
}
