//! Loopback integration tests: real sockets, real worker pool.
//!
//! Covers the acceptance criteria for the serving layer: ≥ 4 concurrent
//! client threads round-tripping Heat3d/Laplace fields within the
//! requested error bound, a typed `Busy` frame once `max_inflight` is
//! exceeded (not a hang or a drop), a `Timeout` frame when the deadline
//! elapses mid-request, a `TooLarge` frame for oversized payloads, and
//! shutdown draining in-flight requests before `serve()` returns.
//!
//! The PR 5 era tests deliberately keep driving the deprecated
//! connect-per-request `Client` shim: they double as the backwards
//! compatibility suite for it, alongside the raw v1-frame test.
#![allow(deprecated)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use lrm_core::{LossyCodec, PipelineConfig, ReducedModelKind};
use lrm_datasets::{generate, DatasetKind, SizeClass};
use lrm_server::protocol::{RESP_COMPRESSED, RESP_ERR_MALFORMED, RESP_ERR_TIMEOUT, RESP_PONG};
use lrm_server::{
    Client, ClientError, CompressRequest, CompressStreamMeta, Connection, Frame, Request, Response,
    SelectRequest, Server, ServerConfig, ServerErrorKind, ServerStats, PROTOCOL_V1, PROTOCOL_V2,
};

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<ServerStats>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn compress_request(field: &lrm_datasets::Field, model: ReducedModelKind) -> CompressRequest {
    CompressRequest {
        model,
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: true,
        chunks: 0,
        shape: field.shape,
        data: field.data.clone(),
    }
}

/// Writes a ping frame in two halves with a pause in between, keeping a
/// worker (or the queue) occupied for `hold`; returns the response
/// frame kind. This is how the tests pin down Busy/drain behavior
/// deterministically.
fn slow_ping(addr: SocketAddr, hold: Duration) -> Option<u8> {
    let frame = Request::Ping {
        echo: vec![0xAB; 64],
    }
    .to_frame();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let split = frame.len() / 2;
    stream.write_all(&frame[..split]).expect("first half");
    std::thread::sleep(hold);
    // Best-effort: when the hold outlives the server's deadline the
    // server has already replied and closed, and this write may fail.
    let _ = stream.write_all(&frame[split..]);
    read_response_kind(&mut stream)
}

/// Reads whatever single response frame the server sends and returns
/// its kind byte.
fn read_response_kind(stream: &mut TcpStream) -> Option<u8> {
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).ok()?;
    Frame::from_bytes(&bytes).ok().map(|f| f.kind)
}

#[test]
fn concurrent_clients_roundtrip_within_bound() {
    let (addr, handle) = start(ServerConfig {
        threads: 4,
        max_inflight: 16,
        ..ServerConfig::default()
    });

    let heat = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let laplace = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let jobs: Vec<(&lrm_datasets::Field, ReducedModelKind)> = vec![
        (&heat, ReducedModelKind::OneBase),
        (&heat, ReducedModelKind::MultiBase(2)),
        (&laplace, ReducedModelKind::OneBase),
        (&laplace, ReducedModelKind::Direct),
        (&heat, ReducedModelKind::Direct),
        (&laplace, ReducedModelKind::MultiBase(2)),
    ];

    std::thread::scope(|s| {
        for (field, model) in &jobs {
            s.spawn(move || {
                let client = Client::new(addr).expect("client");
                let (report, artifact) = client
                    .compress(compress_request(field, *model))
                    .expect("compress");
                assert_eq!(report.raw_bytes as usize, field.len() * 8);
                assert!(report.ratio() > 1.0, "{}: no compression", field.name);

                let (shape, data) = client.decompress(&artifact).expect("decompress");
                assert_eq!(shape, field.shape);
                assert_eq!(data.len(), field.len());
                // Dual-bound SZ: rep at rel 1e-5, delta at rel 1e-3 of
                // their value ranges; 2e-3 of the field range bounds the
                // sum with slack.
                let (lo, hi) = field.min_max();
                let tol = 2e-3 * (hi - lo).max(f64::MIN_POSITIVE);
                let worst = data
                    .iter()
                    .zip(&field.data)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    worst <= tol,
                    "{}/{}: max err {worst:.3e} > {tol:.3e}",
                    field.name,
                    model.name()
                );
            });
        }
    });

    let client = Client::new(addr).expect("client");
    client.shutdown().expect("shutdown");
    let stats = handle.join().expect("join");
    // 6 compress + 6 decompress + 1 shutdown.
    assert_eq!(stats.served, 13);
    assert_eq!(stats.rejected_busy, 0);
}

#[test]
fn stats_and_selection_are_served() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let client = Client::new(addr).expect("client");

    let stats = client.field_stats(field.shape, &field.data).expect("stats");
    assert_eq!(stats.count as usize, field.len());
    let (lo, hi) = field.min_max();
    assert_eq!(stats.min, lo);
    assert_eq!(stats.max, hi);
    assert!(stats.byte_entropy > 0.0 && stats.byte_entropy <= 8.0);

    let (orig, delta) = lrm_core::sz_paper_bounds();
    let reply = client
        .select_model(SelectRequest {
            exhaustive: false,
            orig,
            delta,
            shape: field.shape,
            data: field.data.clone(),
        })
        .expect("select");
    assert!(!reply.trials.is_empty());
    assert_eq!(reply.winner, reply.trials[0].model);
    // The server must agree with a local selection run.
    let base = PipelineConfig {
        orig,
        delta,
        ..PipelineConfig::sz(ReducedModelKind::Direct)
    };
    let local = lrm_core::select_best_model_with(
        &field,
        &lrm_core::default_candidates(),
        &base,
        &lrm_core::SelectionOptions::default(),
    )
    .expect("local selection");
    assert_eq!(reply.winner, local.winner);
    assert_eq!(reply.sampled, local.sampled);

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn over_inflight_request_gets_typed_busy_frame() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        max_inflight: 1,
        deadline: Duration::from_secs(20),
        ..ServerConfig::default()
    });

    // Occupy the single in-flight slot with a half-sent ping.
    let holder = std::thread::spawn(move || slow_ping(addr, Duration::from_millis(800)));
    std::thread::sleep(Duration::from_millis(300));

    // The next request must be refused with Busy — not hang, not drop.
    let client = Client::new(addr).expect("client");
    match client.ping(b"over capacity") {
        Err(ClientError::Server {
            kind: ServerErrorKind::Busy,
            ..
        }) => {}
        other => panic!("expected Busy frame, got {other:?}"),
    }

    // The held request still completes normally.
    assert_eq!(holder.join().expect("holder"), Some(RESP_PONG));

    // Wait for the slot to free, then shut down.
    let mut acked = false;
    for _ in 0..100 {
        if client.shutdown().is_ok() {
            acked = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(acked, "shutdown never accepted");
    let stats = handle.join().expect("join");
    assert!(stats.rejected_busy >= 1);
    assert!(stats.served >= 2);
}

#[test]
fn shutdown_drains_inflight_requests() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        max_inflight: 4,
        deadline: Duration::from_secs(20),
        ..ServerConfig::default()
    });

    // Worker 1 blocks mid-read on a half-sent ping...
    let holder = std::thread::spawn(move || slow_ping(addr, Duration::from_millis(900)));
    std::thread::sleep(Duration::from_millis(300));

    // ...while worker 2 acks a shutdown request.
    let client = Client::new(addr).expect("client");
    client.shutdown().expect("shutdown ack");

    // The in-flight ping must still be answered before serve() returns.
    assert_eq!(holder.join().expect("holder"), Some(RESP_PONG));
    let stats = handle.join().expect("join");
    assert_eq!(stats.served, 2);
}

#[test]
fn deadline_overrun_gets_typed_timeout_frame() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        deadline: Duration::from_millis(250),
        ..ServerConfig::default()
    });

    // Stall far past the deadline mid-payload; the server must answer
    // with a Timeout error frame rather than hanging or dropping.
    let kind = slow_ping(addr, Duration::from_millis(1200));
    assert_eq!(kind, Some(RESP_ERR_TIMEOUT));

    let client = Client::new(addr).expect("client");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn oversized_payload_gets_typed_too_large_frame() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        max_payload: 1024,
        ..ServerConfig::default()
    });

    let client = Client::new(addr).expect("client");
    match client.ping(&vec![7u8; 4096]) {
        Err(ClientError::Server {
            kind: ServerErrorKind::TooLarge,
            ..
        }) => {}
        other => panic!("expected TooLarge frame, got {other:?}"),
    }
    // A small request still succeeds afterwards.
    assert_eq!(client.ping(b"ok").expect("ping"), b"ok");

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn hostile_bytes_get_typed_malformed_frame() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // Garbage that is not even a frame header.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert_eq!(read_response_kind(&mut stream), Some(RESP_ERR_MALFORMED));

    // A well-framed payload that fails request decoding (bad codec tag).
    let mut stream = TcpStream::connect(addr).expect("connect");
    let frame = Frame::encode(0x01, &[0xFF; 40]);
    stream.write_all(&frame).expect("write");
    assert_eq!(read_response_kind(&mut stream), Some(RESP_ERR_MALFORMED));

    let client = Client::new(addr).expect("client");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn pipelined_responses_match_request_ids_out_of_order() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        max_inflight: 16,
        ..ServerConfig::default()
    });
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;

    // One connection, many in-flight requests: a slow compress queued
    // first, then a burst of fast pings. The pongs complete (and are
    // written) before the compress does, so waiting on the compress
    // handle first forces wait() to stash out-of-order responses and
    // match them by request id.
    let mut conn = Connection::open(addr).expect("open");
    let slow = conn
        .send(&Request::Compress(compress_request(
            &field,
            ReducedModelKind::OneBase,
        )))
        .expect("send compress");
    let pings: Vec<_> = (0u8..8)
        .map(|i| {
            let echo = vec![i; 8];
            let handle = conn
                .send(&Request::Ping { echo: echo.clone() })
                .expect("send ping");
            (handle, echo)
        })
        .collect();

    match conn.wait(slow).expect("wait compress") {
        Response::Compressed { report, .. } => {
            assert_eq!(report.raw_bytes as usize, field.len() * 8);
        }
        other => panic!("expected Compressed, got {other:?}"),
    }
    // Collect the pongs in reverse submission order: every reply must
    // land on its own handle regardless of arrival order.
    for (ping, echo) in pings.into_iter().rev() {
        match conn.wait(ping).expect("wait ping") {
            Response::Pong { echo: got } => assert_eq!(got, echo),
            other => panic!("expected Pong, got {other:?}"),
        }
    }

    conn.shutdown().expect("shutdown");
    let stats = handle.join().expect("join");
    // 1 compress + 8 pings + 1 shutdown, all on one connection.
    assert_eq!(stats.served, 10);
    assert_eq!(stats.connections, 1);
}

#[test]
fn v1_frames_still_roundtrip_on_v2_server() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // A legacy v1 client: 16-byte headers, no request id, one request
    // per connection. The v2 server must answer with a v1 frame and
    // close after the response.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let ping = Request::Ping {
        echo: b"legacy".to_vec(),
    };
    stream.write_all(&ping.to_frame()).expect("write v1 ping");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read to close");
    let frame = Frame::from_bytes(&bytes).expect("exactly one v1 frame");
    assert_eq!(frame.version, PROTOCOL_V1);
    assert_eq!(frame.request_id, 0);
    assert_eq!(frame.kind, RESP_PONG);
    match Response::decode(frame.kind, &frame.payload).expect("decode pong") {
        Response::Pong { echo } => assert_eq!(echo, b"legacy"),
        other => panic!("expected Pong, got {other:?}"),
    }

    // A structured v1 request (compress) round-trips the same way.
    let field = generate(DatasetKind::Laplace, SizeClass::Tiny).full;
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = Request::Compress(compress_request(&field, ReducedModelKind::Direct));
    stream
        .write_all(&req.to_frame())
        .expect("write v1 compress");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read to close");
    let frame = Frame::from_bytes(&bytes).expect("exactly one v1 frame");
    assert_eq!(frame.version, PROTOCOL_V1);
    assert_eq!(frame.kind, RESP_COMPRESSED);

    let client = Client::new(addr).expect("client");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn shutdown_drains_inflight_streaming_request() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        deadline: Duration::from_secs(20),
        ..ServerConfig::default()
    });
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let meta = CompressStreamMeta {
        model: ReducedModelKind::OneBase,
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: true,
        chunks: 2,
        shape: field.shape,
    };
    let mut bytes = Vec::with_capacity(field.len() * 8);
    for v in &field.data {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    // Open a chunk stream and ship only part of the field...
    let id = 7u64;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(&Request::CompressStreamBegin(meta).to_frame_v2(id))
        .expect("begin");
    let split = bytes.len() / 3;
    stream
        .write_all(
            &Request::StreamChunk {
                bytes: bytes[..split].to_vec(),
            }
            .to_frame_v2(id),
        )
        .expect("first chunk");
    std::thread::sleep(Duration::from_millis(300));

    // ...let a shutdown land mid-stream...
    let client = Client::new(addr).expect("client");
    client.shutdown().expect("shutdown ack");

    // ...then finish the upload. The drain must keep accepting the
    // stream's remaining frames and answer before serve() returns.
    stream
        .write_all(
            &Request::StreamChunk {
                bytes: bytes[split..].to_vec(),
            }
            .to_frame_v2(id),
        )
        .expect("second chunk");
    stream
        .write_all(&Request::StreamEnd.to_frame_v2(id))
        .expect("end");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read to close");
    let frame = Frame::from_bytes(&reply).expect("one v2 response frame");
    assert_eq!(frame.version, PROTOCOL_V2);
    assert_eq!(frame.request_id, id);
    assert_eq!(frame.kind, RESP_COMPRESSED);

    let stats = handle.join().expect("join");
    // The streamed compress + the shutdown.
    assert_eq!(stats.served, 2);
}

#[test]
fn streamed_compress_matches_unary_artifact() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;
    let mut conn = Connection::open(addr).expect("open");

    let mut unary = compress_request(&field, ReducedModelKind::MultiBase(2));
    unary.chunks = 2;
    let (unary_report, unary_artifact) = conn.compress(unary).expect("unary compress");

    let meta = CompressStreamMeta {
        model: ReducedModelKind::MultiBase(2),
        orig: LossyCodec::SzRel(1e-5),
        delta: LossyCodec::SzRel(1e-3),
        scan_1d: true,
        chunks: 2,
        shape: field.shape,
    };
    let (streamed_report, streamed_artifact) = conn
        .compress_streamed(meta, &field.data, 4096)
        .expect("streamed compress");

    // Chunk streaming is a transport optimization: the artifact must be
    // byte-identical to the unary chunked path.
    assert_eq!(streamed_artifact, unary_artifact);
    assert_eq!(streamed_report.raw_bytes, unary_report.raw_bytes);
    assert_eq!(streamed_report.rep_bytes, unary_report.rep_bytes);
    assert_eq!(streamed_report.delta_bytes, unary_report.delta_bytes);

    // And a streamed decompress reconstructs it.
    let (shape, data) = conn
        .decompress_streamed(&streamed_artifact, 1024)
        .expect("streamed decompress");
    assert_eq!(shape, field.shape);
    assert_eq!(data.len(), field.len());

    conn.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn pipeline_depth_overrun_gets_busy_and_connection_survives() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        max_inflight: 32,
        max_pipeline_depth: 2,
        ..ServerConfig::default()
    });
    let field = generate(DatasetKind::Heat3d, SizeClass::Tiny).full;

    let mut conn = Connection::open(addr).expect("open");
    // Two slow compresses fill the pipeline; the third request must get
    // a per-request Busy while the connection itself stays usable.
    let first = conn
        .send(&Request::Compress(compress_request(
            &field,
            ReducedModelKind::OneBase,
        )))
        .expect("send 1");
    let second = conn
        .send(&Request::Compress(compress_request(
            &field,
            ReducedModelKind::MultiBase(2),
        )))
        .expect("send 2");
    let third = conn.send(&Request::Ping { echo: vec![9] }).expect("send 3");
    match conn.wait(third) {
        Err(ClientError::Server {
            kind: ServerErrorKind::Busy,
            ..
        }) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(matches!(
        conn.wait(first).expect("wait 1"),
        Response::Compressed { .. }
    ));
    assert!(matches!(
        conn.wait(second).expect("wait 2"),
        Response::Compressed { .. }
    ));
    // The same connection accepts new requests after the Busy.
    assert_eq!(conn.ping(b"still here").expect("ping"), b"still here");

    conn.shutdown().expect("shutdown");
    let stats = handle.join().expect("join");
    assert!(stats.rejected_busy >= 1);
    assert_eq!(stats.connections, 1);
}
