//! Bit-level I/O used by every entropy coder in this crate.
//!
//! Bits are packed LSB-first into bytes, matching the convention of ZFP's
//! stream layer: the first bit written becomes bit 0 of byte 0.
//!
//! Both endpoints are **word-buffered**: the writer accumulates up to 63
//! pending bits in a `u64` and spills eight bytes at a time, and the
//! reader keeps a cached window of up to 64 stream bits, so `write_bits`
//! and `read_bits` are single shift/mask operations instead of per-bit
//! loops. The byte layout is identical to the original scalar
//! implementation (preserved as [`crate::reference::RefBitWriter`] /
//! [`crate::reference::RefBitReader`] and enforced byte-for-byte by the
//! `kernel_equivalence` differential suite), so every previously written
//! stream still decodes.

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    /// Completed bytes only; pending bits live in `acc`.
    bytes: Vec<u8>,
    /// Pending bits, LSB-first; low `acc_bits` bits are valid.
    acc: u64,
    /// Number of valid bits in `acc` (invariant: 0..=63 between calls).
    acc_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits / 8 + 8),
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Spills the full 64-bit accumulator into the byte buffer.
    #[inline]
    fn flush_word(&mut self) {
        self.bytes.extend_from_slice(&self.acc.to_le_bytes());
        self.acc = 0;
        self.acc_bits = 0;
    }

    /// Writes a single bit (the LSB of `bit`).
    #[inline]
    pub fn write_bit(&mut self, bit: u64) {
        self.acc |= (bit & 1) << self.acc_bits;
        self.acc_bits += 1;
        if self.acc_bits == 64 {
            self.flush_word();
        }
    }

    /// Writes the low `n` bits of `value`, LSB first. `n` must be <= 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let v = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let free = 64 - self.acc_bits; // 1..=64 by the acc_bits invariant
        self.acc |= v << self.acc_bits;
        if n >= free {
            // The accumulator is exactly full: the low `free` bits of `v`
            // landed in it. Spill, then stash the remaining high bits.
            // `free == 64` only when the accumulator was empty and n == 64,
            // in which case all of `v` was flushed (shift of 64 would be UB,
            // hence the explicit branch).
            let spilled = self.acc;
            self.bytes.extend_from_slice(&spilled.to_le_bytes());
            self.acc = if free == 64 { 0 } else { v >> free };
            self.acc_bits = n - free;
        } else {
            self.acc_bits += n;
        }
    }

    /// Total number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bytes.len() * 8 + self.acc_bits as usize
    }

    /// Appends every bit of `other` to this writer (bit-exact, no
    /// padding between the streams). This is what lets blocks be encoded
    /// in parallel into private writers and stitched into one contiguous
    /// stream afterwards. Byte-aligned appends degenerate to a memcpy.
    pub fn append(&mut self, other: &BitWriter) {
        if self.acc_bits == 0 {
            // Fast path: the join point is byte-aligned.
            self.bytes.extend_from_slice(&other.bytes);
            self.acc = other.acc;
            self.acc_bits = other.acc_bits;
            if self.acc_bits == 64 {
                self.flush_word();
            }
            return;
        }
        let mut chunks = other.bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            self.write_bits(u64::from_le_bytes(w), 64);
        }
        for &b in chunks.remainder() {
            self.write_bits(b as u64, 8);
        }
        self.write_bits(other.acc, other.acc_bits);
    }

    /// Finishes the stream, zero-padding the last byte.
    pub fn into_bytes(mut self) -> Vec<u8> {
        let pending = self.acc.to_le_bytes();
        let tail = (self.acc_bits as usize).div_ceil(8);
        self.bytes.extend_from_slice(&pending[..tail]);
        self.bytes
    }

    /// Borrow of the completed byte buffer. Up to 63 pending tail bits
    /// are still buffered in the accumulator and are **not** visible
    /// here; use [`BitWriter::into_bytes`] for the full stream.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Bit reader over a byte slice, LSB-first (mirror of [`BitWriter`]).
///
/// Reads past the end of the stream yield zeros (ZFP stream semantics),
/// which lets a fixed-precision decoder stop early safely.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Cached stream bits, LSB-aligned: the next unread bit is bit 0.
    word: u64,
    /// Number of valid bits in `word` (0..=64).
    avail: u32,
    /// Index of the next byte not yet loaded into `word`.
    next_byte: usize,
    /// Bits consumed past the end of the stream (reads returned zeros).
    overrun: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            word: 0,
            avail: 0,
            next_byte: 0,
            overrun: 0,
        }
    }

    /// Tops up the cached word from the byte buffer. After this, `avail`
    /// is at least 57 unless the stream is exhausted.
    #[inline]
    fn refill(&mut self) {
        if let Some(chunk) = self
            .bytes
            .get(self.next_byte..self.next_byte.saturating_add(8))
        {
            // Whole-word load: take as many complete bytes as fit.
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            let loaded = u64::from_le_bytes(w);
            let take_bytes = ((64 - self.avail) / 8) as usize;
            let mask = if take_bytes == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * take_bytes)) - 1
            };
            self.word |= (loaded & mask) << self.avail;
            self.avail += 8 * take_bytes as u32;
            self.next_byte += take_bytes;
        } else {
            // Near the end: load the remaining bytes one at a time.
            while self.avail <= 56 {
                let Some(&b) = self.bytes.get(self.next_byte) else {
                    break;
                };
                self.word |= (b as u64) << self.avail;
                self.avail += 8;
                self.next_byte += 1;
            }
        }
    }

    /// Reads one bit; returns 0 past the end of the stream.
    #[inline]
    pub fn read_bit(&mut self) -> u64 {
        if self.avail == 0 {
            self.refill();
            if self.avail == 0 {
                self.overrun += 1;
                return 0;
            }
        }
        let bit = self.word & 1;
        self.word >>= 1;
        self.avail -= 1;
        bit
    }

    /// Reads `n` bits (LSB first), zero-extended. `n` must be <= 64; the
    /// `n == 64` shift boundary is handled explicitly.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 0 {
            return 0;
        }
        if self.avail < n {
            self.refill();
        }
        if n <= self.avail {
            let v = if n == 64 {
                self.word
            } else {
                self.word & ((1u64 << n) - 1)
            };
            // n == 64 implies avail == 64 and the whole word is consumed;
            // shifting by 64 is UB, so branch.
            self.word = if n == 64 { 0 } else { self.word >> n };
            self.avail -= n;
            return v;
        }
        // Split read: a refill cannot always reach 64 valid bits (it only
        // loads whole bytes), and near the end of the stream fewer bits
        // remain. Take everything cached, refill, then take the rest.
        let take = self.avail;
        let lo = if take == 0 {
            0
        } else if take == 64 {
            self.word
        } else {
            self.word & ((1u64 << take) - 1)
        };
        self.word = 0;
        self.avail = 0;
        self.refill();
        let rest = n - take; // >= 1 because n > take
        if rest <= self.avail {
            let hi = if rest == 64 {
                self.word
            } else {
                self.word & ((1u64 << rest) - 1)
            };
            self.word = if rest == 64 { 0 } else { self.word >> rest };
            self.avail -= rest;
            // take <= 63 here (rest >= 1), so the shift is in range.
            lo | (hi << take)
        } else {
            // Stream exhausted: the remaining bits are zeros.
            let got = self.avail;
            let hi = self.word;
            self.word = 0;
            self.avail = 0;
            self.overrun += (rest - got) as usize;
            lo | (hi << take)
        }
    }

    /// Returns the next `n` bits (LSB first, zero-extended past the end)
    /// without consuming them. `n` must be <= 56 so a single cached word
    /// can always satisfy the peek.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 56);
        if self.avail < n {
            self.refill();
        }
        if n == 0 {
            return 0;
        }
        self.word & ((1u64 << n) - 1)
    }

    /// Consumes `n` bits (<= 56) previously examined via
    /// [`BitReader::peek_bits`]. Consuming past the end of the stream is
    /// accounted as overrun, mirroring [`BitReader::read_bit`].
    #[inline]
    pub fn consume_bits(&mut self, n: u32) {
        debug_assert!(n <= 56);
        if self.avail < n {
            self.refill();
        }
        if n <= self.avail {
            self.word >>= n; // n <= 56 < 64: shift always in range
            self.avail -= n;
        } else {
            self.overrun += (n - self.avail) as usize;
            self.word = 0;
            self.avail = 0;
        }
    }

    /// Absolute bit position (bits consumed so far, including zero reads
    /// past the end of the stream).
    pub fn bit_pos(&self) -> usize {
        self.next_byte * 8 - self.avail as usize + self.overrun
    }

    /// True when every real bit has been consumed (padding may remain).
    pub fn is_exhausted(&self) -> bool {
        self.bit_pos() >= self.bytes.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefBitReader, RefBitWriter};

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), b);
        }
    }

    #[test]
    fn roundtrip_multi_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0x3, 2);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(32), 0xDEADBEEF);
        assert_eq!(r.read_bits(2), 0x3);
        assert_eq!(r.read_bits(64), u64::MAX);
    }

    #[test]
    fn reads_past_end_are_zero() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(16), 0);
        assert!(r.is_exhausted());
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(1); // bit 0 of byte 0
        w.write_bits(0, 6);
        w.write_bit(1); // bit 7 of byte 0
        assert_eq!(w.into_bytes(), vec![0b1000_0001]);
    }

    #[test]
    fn append_is_bit_exact_across_alignments() {
        for head_bits in 0..17u32 {
            let mut a = BitWriter::new();
            a.write_bits(0x5A5A, head_bits.min(16));
            let mut b = BitWriter::new();
            b.write_bits(0xDEADBEEFCAFE, 48);
            b.write_bit(1);
            let b_len = b.len_bits();
            let mut joined = BitWriter::new();
            joined.write_bits(0x5A5A, head_bits.min(16));
            joined.append(&b);
            assert_eq!(joined.len_bits(), head_bits.min(16) as usize + b_len);
            let bytes = joined.into_bytes();
            let mut r = BitReader::new(&bytes);
            let hb = head_bits.min(16);
            let mask = if hb == 0 { 0 } else { (1u64 << hb) - 1 };
            assert_eq!(r.read_bits(hb), 0x5A5A & mask);
            assert_eq!(r.read_bits(48), 0xDEADBEEFCAFE);
            assert_eq!(r.read_bit(), 1);
        }
    }

    #[test]
    fn append_empty_is_noop() {
        let mut a = BitWriter::new();
        a.write_bits(7, 3);
        let before = a.len_bits();
        a.append(&BitWriter::new());
        assert_eq!(a.len_bits(), before);
    }

    #[test]
    fn append_large_streams_across_alignments() {
        // Exercise the chunked (non-byte-aligned) append path with
        // multi-word bodies at every join alignment.
        let mut rng = lrm_rng::Rng64::new(77);
        for head_bits in 0..65u32 {
            let mut tail = BitWriter::new();
            let vals: Vec<(u64, u32)> = (0..40)
                .map(|_| (rng.next_u64(), 1 + rng.range_u64(64) as u32))
                .collect();
            for &(v, n) in &vals {
                tail.write_bits(v, n);
            }
            let mut joined = BitWriter::new();
            joined.write_bits(0xABCD_EF01_2345_6789, head_bits.min(64));
            joined.append(&tail);
            let bytes = joined.into_bytes();
            let mut r = BitReader::new(&bytes);
            let hb = head_bits.min(64);
            r.read_bits(hb);
            for &(v, n) in &vals {
                let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                assert_eq!(r.read_bits(n), v & mask, "head {head_bits}, n {n}");
            }
        }
    }

    #[test]
    fn len_bits_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bits(), 0);
        w.write_bits(0, 9);
        assert_eq!(w.len_bits(), 9);
        w.write_bits(0, 7);
        assert_eq!(w.len_bits(), 16);
    }

    #[test]
    fn edge_widths_roundtrip_at_every_alignment() {
        // Satellite: n ∈ {0, 1, 63, 64} on both reader and writer, at
        // every pre-write alignment so each shift-boundary branch runs.
        for pre in 0..65u32 {
            for &n in &[0u32, 1, 63, 64] {
                let mut w = BitWriter::new();
                w.write_bits(u64::MAX, pre.min(64));
                let payload = 0x9E37_79B9_7F4A_7C15u64;
                w.write_bits(payload, n);
                w.write_bits(0b101, 3); // trailer to catch misalignment
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes);
                assert_eq!(
                    r.read_bits(pre.min(64)),
                    if pre.min(64) == 64 {
                        u64::MAX
                    } else if pre == 0 {
                        0
                    } else {
                        (1u64 << pre.min(64)) - 1
                    }
                );
                let mask = match n {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << n) - 1,
                };
                assert_eq!(r.read_bits(n), payload & mask, "pre {pre}, n {n}");
                assert_eq!(r.read_bits(3), 0b101, "pre {pre}, n {n}");
            }
        }
    }

    #[test]
    fn read_bits_64_straddling_end_of_stream() {
        // 64-bit read with only 40 real bits left: low 40 bits real,
        // high 24 zero-extended.
        let mut w = BitWriter::new();
        w.write_bits(0xAB_CDEF_0123, 40);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), 0xAB_CDEF_0123);
        assert!(r.is_exhausted());
        assert_eq!(r.read_bits(64), 0);
    }

    #[test]
    fn peek_then_consume_matches_read() {
        let mut w = BitWriter::new();
        let mut rng = lrm_rng::Rng64::new(3);
        let vals: Vec<(u64, u32)> = (0..200)
            .map(|_| (rng.next_u64(), 1 + rng.range_u64(56) as u32))
            .collect();
        for &(v, n) in &vals {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut peeker = BitReader::new(&bytes);
        let mut reader = BitReader::new(&bytes);
        for &(_, n) in &vals {
            let p = peeker.peek_bits(n);
            peeker.consume_bits(n);
            assert_eq!(p, reader.read_bits(n));
            assert_eq!(peeker.bit_pos(), reader.bit_pos());
        }
    }

    #[test]
    fn peek_past_end_is_zero_extended_and_nonconsuming() {
        let mut r = BitReader::new(&[0b0000_0101]);
        assert_eq!(r.peek_bits(16), 0b0000_0101);
        assert_eq!(r.peek_bits(16), 0b0000_0101); // still unconsumed
        r.consume_bits(3);
        assert_eq!(r.peek_bits(8), 0);
        r.consume_bits(13); // 8 past the end
        assert_eq!(r.bit_pos(), 16);
    }

    #[test]
    fn bit_pos_tracks_overrun_like_reference() {
        let bytes = [0x5Au8, 0xC3];
        let mut fast = BitReader::new(&bytes);
        let mut slow = RefBitReader::new(&bytes);
        for n in [3u32, 7, 1, 16, 64, 0, 5] {
            assert_eq!(fast.read_bits(n), slow.read_bits(n), "n {n}");
            assert_eq!(fast.bit_pos(), slow.bit_pos(), "n {n}");
        }
    }

    #[test]
    fn differential_random_ops_byte_identical() {
        // The in-crate smoke version of the kernel_equivalence suite.
        let mut rng = lrm_rng::Rng64::new(42);
        for _ in 0..50 {
            let mut fast = BitWriter::new();
            let mut slow = RefBitWriter::new();
            for _ in 0..300 {
                if rng.bool(0.3) {
                    let b = rng.range_u64(2);
                    fast.write_bit(b);
                    slow.write_bit(b);
                } else {
                    let n = rng.range_u64(65) as u32;
                    let v = rng.next_u64();
                    fast.write_bits(v, n);
                    slow.write_bits(v, n);
                }
                assert_eq!(fast.len_bits(), slow.len_bits());
            }
            assert_eq!(fast.into_bytes(), slow.into_bytes());
        }
    }
}
