//! Bit-level I/O used by every entropy coder in this crate.
//!
//! Bits are packed LSB-first into bytes, matching the convention of ZFP's
//! stream layer: the first bit written becomes bit 0 of byte 0.

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0..8; 0 = none).
    bit_pos: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits / 8 + 1),
            bit_pos: 0,
        }
    }

    /// Writes a single bit (the LSB of `bit`).
    #[inline]
    pub fn write_bit(&mut self, bit: u64) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit & 1 != 0 {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << self.bit_pos;
            }
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Writes the low `n` bits of `value`, LSB first. `n` must be <= 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in 0..n {
            self.write_bit((value >> i) & 1);
        }
    }

    /// Total number of bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Appends every bit of `other` to this writer (bit-exact, no
    /// padding between the streams). This is what lets blocks be encoded
    /// in parallel into private writers and stitched into one contiguous
    /// stream afterwards.
    pub fn append(&mut self, other: &BitWriter) {
        let total = other.len_bits();
        let mut remaining = total;
        for (i, &byte) in other.bytes.iter().enumerate() {
            let bits = if remaining >= 8 { 8 } else { remaining as u32 };
            let _ = i;
            self.write_bits(byte as u64, bits);
            remaining = remaining.saturating_sub(8);
            if remaining == 0 {
                break;
            }
        }
    }

    /// Finishes the stream, zero-padding the last byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow of the byte buffer (last byte may be partial).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Bit reader over a byte slice, LSB-first (mirror of [`BitWriter`]).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit; returns 0 past the end of the stream (ZFP stream
    /// semantics: reads beyond the end yield zeros, which lets a
    /// fixed-precision decoder stop early safely).
    #[inline]
    pub fn read_bit(&mut self) -> u64 {
        let byte = self.pos / 8;
        let bit = self.pos % 8;
        self.pos += 1;
        self.bytes.get(byte).map_or(0, |b| ((b >> bit) & 1) as u64)
    }

    /// Reads `n` bits (LSB first), zero-extended.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for i in 0..n {
            v |= self.read_bit() << i;
        }
        v
    }

    /// Absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// True when every real bit has been consumed (padding may remain).
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), b);
        }
    }

    #[test]
    fn roundtrip_multi_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0x3, 2);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(32), 0xDEADBEEF);
        assert_eq!(r.read_bits(2), 0x3);
        assert_eq!(r.read_bits(64), u64::MAX);
    }

    #[test]
    fn reads_past_end_are_zero() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(16), 0);
        assert!(r.is_exhausted());
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(1); // bit 0 of byte 0
        w.write_bits(0, 6);
        w.write_bit(1); // bit 7 of byte 0
        assert_eq!(w.into_bytes(), vec![0b1000_0001]);
    }

    #[test]
    fn append_is_bit_exact_across_alignments() {
        for head_bits in 0..17u32 {
            let mut a = BitWriter::new();
            a.write_bits(0x5A5A, head_bits.min(16));
            let mut b = BitWriter::new();
            b.write_bits(0xDEADBEEFCAFE, 48);
            b.write_bit(1);
            let b_len = b.len_bits();
            let mut joined = BitWriter::new();
            joined.write_bits(0x5A5A, head_bits.min(16));
            joined.append(&b);
            assert_eq!(joined.len_bits(), head_bits.min(16) as usize + b_len);
            let bytes = joined.into_bytes();
            let mut r = BitReader::new(&bytes);
            let hb = head_bits.min(16);
            let mask = if hb == 0 { 0 } else { (1u64 << hb) - 1 };
            assert_eq!(r.read_bits(hb), 0x5A5A & mask);
            assert_eq!(r.read_bits(48), 0xDEADBEEFCAFE);
            assert_eq!(r.read_bit(), 1);
        }
    }

    #[test]
    fn append_empty_is_noop() {
        let mut a = BitWriter::new();
        a.write_bits(7, 3);
        let before = a.len_bits();
        a.append(&BitWriter::new());
        assert_eq!(a.len_bits(), before);
    }

    #[test]
    fn len_bits_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bits(), 0);
        w.write_bits(0, 9);
        assert_eq!(w.len_bits(), 9);
        w.write_bits(0, 7);
        assert_eq!(w.len_bits(), 16);
    }
}
