//! Per-block coefficient coding: block-floating-point conversion,
//! negabinary mapping, and embedded (group-tested) bit-plane coding.
//!
//! This mirrors ZFP's `encode_ints`/`decode_ints`: coefficients are coded
//! one bit plane at a time from most to least significant; within a plane,
//! already-significant coefficients emit verbatim bits and the remainder
//! are covered by a unary run-length "any ones left?" test. Truncating the
//! stream after `p` planes yields the fixed-precision mode the paper uses.

use super::transform::{fwd_xform, inv_xform, sequency_perm};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};

/// Bits in the integer representation.
pub const INT_PREC: u32 = 64;
/// Highest supported block dimensionality: 4^3 = 64 coefficients fills
/// the fixed scratch arrays exactly.
pub const MAX_BLOCK_NDIMS: usize = 3;
/// Negabinary conversion mask (alternating bits).
const NBMASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
/// Bias applied to the per-block exponent before storage.
const E_BIAS: i32 = 1100;
/// Bits used to store the biased block exponent.
const E_BITS: u32 = 12;

/// Maps a two's-complement integer to negabinary (sign-free) form.
#[inline]
pub fn int2uint(x: i64) -> u64 {
    ((x as u64).wrapping_add(NBMASK)) ^ NBMASK
}

/// Inverse of [`int2uint`].
#[inline]
pub fn uint2int(u: u64) -> i64 {
    ((u ^ NBMASK).wrapping_sub(NBMASK)) as i64
}

/// `x * 2^e` without intermediate overflow (ldexp). Splits the exponent so
/// each factor stays representable even for the extreme block exponents of
/// subnormal data.
#[inline]
pub fn ldexp(x: f64, e: i32) -> f64 {
    let a = e / 2;
    let b = e - a;
    x * pow2_small(a) * pow2_small(b)
}

/// `2^e` for |e| <= 1023 via exponent-field construction.
#[inline]
fn pow2_small(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e), "pow2_small out of range: {e}");
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Exponent of `x` in the frexp sense: smallest `e` with `|x| <= 2^e` and
/// `|x| > 2^(e-1)`... precisely, `x = f * 2^e` with `f` in `[0.5, 1)`.
/// Returns `i32::MIN` for zero.
fn exponent(x: f64) -> i32 {
    if x == 0.0 {
        return i32::MIN;
    }
    let bits = x.abs().to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    if raw_exp == 0 {
        // Subnormal: value = mantissa * 2^-1074, top set bit decides.
        let mantissa = bits & 0xf_ffff_ffff_ffff;
        let top = 63 - mantissa.leading_zeros() as i32;
        return top - 1074 + 1;
    }
    raw_exp - 1022
}

/// Largest frexp exponent over a block; `None` when all values are zero or
/// any value is non-finite (such blocks are stored as all-zero).
fn block_exponent(block: &[f64]) -> Option<i32> {
    let mut emax = i32::MIN;
    for &v in block {
        if !v.is_finite() {
            return None;
        }
        if v != 0.0 {
            emax = emax.max(exponent(v));
        }
    }
    if emax == i32::MIN {
        None
    } else {
        Some(emax)
    }
}

/// Reusable per-block scratch buffers. The chunk-parallel loops in
/// [`crate::zfp`] thread one of these through each worker so no per-block
/// heap allocation happens on the hot path; `blk` doubles as the
/// gather/scatter staging area for the caller.
#[derive(Debug, Clone)]
pub struct BlockScratch {
    /// Block values: the encoder reads its input from here and the
    /// decoder leaves its output here (first `4^ndims` entries).
    pub blk: [f64; 64],
    ints: [i64; 64],
    uints: [u64; 64],
}

impl Default for BlockScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockScratch {
    /// Creates zeroed scratch space.
    pub fn new() -> Self {
        Self {
            blk: [0.0; 64],
            ints: [0; 64],
            uints: [0; 64],
        }
    }
}

/// Encodes one 4^d block of doubles at `maxprec` bit planes.
///
/// Convenience wrapper over [`encode_block_scratch`] for one-off calls;
/// chunk loops should hold a [`BlockScratch`] and call the `_scratch`
/// variant directly.
pub fn encode_block(block: &[f64], ndims: usize, maxprec: u32, out: &mut BitWriter) {
    let n = 1usize << (2 * ndims);
    debug_assert_eq!(block.len(), n);
    let mut scratch = BlockScratch::new();
    scratch.blk[..n].copy_from_slice(block);
    encode_block_scratch(&mut scratch, ndims, maxprec, out);
}

/// Encodes the first `4^ndims` values of `scratch.blk` at `maxprec` bit
/// planes, reusing the caller's scratch buffers.
pub fn encode_block_scratch(
    scratch: &mut BlockScratch,
    ndims: usize,
    maxprec: u32,
    out: &mut BitWriter,
) {
    let n = 1usize << (2 * ndims);
    let block = &scratch.blk[..n];
    let Some(emax) = block_exponent(block) else {
        out.write_bit(0); // all-zero (or non-finite) block
        return;
    };
    out.write_bit(1);
    out.write_bits((emax + E_BIAS) as u64, E_BITS);

    // Block-floating-point: scale values (|v| < 2^emax) up to |i| < 2^62,
    // leaving two headroom bits for transform growth.
    let shift = INT_PREC as i32 - 2 - emax;
    for (i, &v) in block.iter().enumerate() {
        scratch.ints[i] = ldexp(v, shift) as i64;
    }
    fwd_xform(&mut scratch.ints[..n], ndims);

    // Negabinary in sequency order.
    let perm = sequency_perm(ndims);
    for i in 0..n {
        scratch.uints[i] = int2uint(scratch.ints[perm[i]]);
    }

    encode_ints(&scratch.uints[..n], maxprec, out);
}

/// Decodes one block previously produced by [`encode_block`]. Returns
/// a [`DecodeError`] when the stored block exponent lies outside the
/// range any finite `f64` can produce — the only way corrupt bits can
/// push the block-floating-point math out of its domain.
pub fn decode_block(
    ndims: usize,
    maxprec: u32,
    input: &mut BitReader<'_>,
    block: &mut [f64],
) -> DecodeResult<()> {
    if ndims == 0 || ndims > MAX_BLOCK_NDIMS {
        return Err(DecodeError::Corrupt {
            what: "zfp block dimensionality",
        });
    }
    let n = 1usize << (2 * ndims);
    debug_assert_eq!(block.len(), n);
    let mut scratch = BlockScratch::new();
    decode_block_scratch(&mut scratch, ndims, maxprec, input)?;
    for (dst, &src) in block.iter_mut().zip(scratch.blk.iter()) {
        *dst = src;
    }
    Ok(())
}

/// Decodes one block into `scratch.blk[..4^ndims]`, reusing the caller's
/// scratch buffers. Same error contract as [`decode_block`].
pub fn decode_block_scratch(
    scratch: &mut BlockScratch,
    ndims: usize,
    maxprec: u32,
    input: &mut BitReader<'_>,
) -> DecodeResult<()> {
    // Callers derive ndims from artifact metadata, so treat it as
    // untrusted: out of range it would shift n past the 64-entry
    // scratch arrays below.
    if ndims == 0 || ndims > MAX_BLOCK_NDIMS {
        return Err(DecodeError::Corrupt {
            what: "zfp block dimensionality",
        });
    }
    let n = 1usize << (2 * ndims);
    debug_assert!(n <= 64);
    if input.read_bit() == 0 {
        // lint:allow(no-index): n = 4^ndims <= 64 and blk is [f64; 64]
        scratch.blk[..n].fill(0.0);
        return Ok(());
    }
    let emax = input.read_bits(E_BITS) as i32 - E_BIAS;
    // frexp exponents of finite doubles span [-1073, 1024]; anything
    // else cannot have come from `encode_block` and would drive the
    // ldexp reconstruction below out of pow2_small's domain.
    if !(-1073..=1024).contains(&emax) {
        return Err(DecodeError::Corrupt {
            what: "zfp block exponent",
        });
    }

    // lint:allow(no-index): n = 4^ndims <= 64 and uints is [u64; 64]
    decode_ints(&mut scratch.uints[..n], maxprec, input);

    let perm = sequency_perm(ndims);
    for i in 0..n {
        // lint:allow(no-index): i < n <= 64; perm values < n by construction
        scratch.ints[perm[i]] = uint2int(scratch.uints[i]);
    }
    // lint:allow(no-index): n = 4^ndims <= 64 and ints is [i64; 64]
    inv_xform(&mut scratch.ints[..n], ndims);

    let shift = emax - (INT_PREC as i32 - 2);
    for i in 0..n {
        // lint:allow(no-index): i < n <= 64; blk and ints are 64-entry arrays
        scratch.blk[i] = ldexp(scratch.ints[i] as f64, shift);
    }
    Ok(())
}

/// Embedded coding of negabinary coefficients, `maxprec` planes from the
/// top. Word-level: the 4^d × 64-bit coefficient matrix is transposed
/// once into per-plane masks by sparse bit scatter, each plane's
/// verbatim prefix goes out in one `write_bits` call, and the
/// significant-prefix length is a running OR + `leading_zeros` instead
/// of an O(size) rescan per plane. Bit-for-bit identical to
/// [`crate::reference::encode_ints_ref`].
#[doc(hidden)]
pub fn encode_ints(uints: &[u64], maxprec: u32, out: &mut BitWriter) {
    let size = uints.len();
    debug_assert!(size <= 64);
    let kmin = INT_PREC.saturating_sub(maxprec);
    // Transpose: bit i of planes[k] = bit k of coefficient i. Negabinary
    // coefficients are sparse in the low planes, so scatter set bits
    // instead of probing all 64 planes per coefficient.
    let mut planes = [0u64; 64];
    for (i, &u) in uints.iter().enumerate() {
        let mut u = u;
        while u != 0 {
            let k = u.trailing_zeros() as usize;
            // lint:allow(no-index): k < 64 by trailing_zeros of a nonzero u64
            planes[k] |= 1u64 << i;
            u &= u - 1;
        }
    }
    // `sig` bit i = coefficient i has a set bit at the current plane or
    // above; its highest set bit position + 1 is the verbatim prefix
    // length `n` (what significant_prefix() recomputed per plane).
    let mut sig: u64 = 0;
    let mut n = 0usize;
    for k in (kmin..INT_PREC).rev() {
        // lint:allow(no-index): k < INT_PREC = 64 and planes is [u64; 64]
        let plane = planes[k as usize];
        // Verbatim bits of already-significant coefficients, one call.
        out.write_bits(plane, n as u32);
        let mut x = if n >= 64 { 0 } else { plane >> n };
        // Unary run-length encode the remainder: each group emits the
        // zero-run up to the next set bit plus the terminating one-bit
        // in a single write (LSB-first, so `1 << tz` is tz zeros then 1).
        let mut m = n;
        while m < size {
            let any = x != 0;
            out.write_bit(any as u64);
            if !any {
                break;
            }
            let tz = x.trailing_zeros() as usize;
            if m + tz >= size - 1 {
                // The zero-run reaches the final coefficient, whose set
                // bit is implied by the group test.
                out.write_bits(0, (size - 1 - m) as u32);
                m = size;
            } else {
                out.write_bits(1u64 << tz, tz as u32 + 1);
                x >>= tz + 1;
                m += tz + 1;
            }
        }
        sig |= plane;
        n = 64 - sig.leading_zeros() as usize;
    }
}

/// Inverse of [`encode_ints`]. Bit-for-bit identical to
/// [`crate::reference::decode_ints_ref`].
#[doc(hidden)]
pub fn decode_ints(uints: &mut [u64], maxprec: u32, input: &mut BitReader<'_>) {
    let size = uints.len();
    debug_assert!(size <= 64);
    uints.fill(0);
    let kmin = INT_PREC.saturating_sub(maxprec);
    let mut sig: u64 = 0;
    let mut n = 0usize;
    for k in (kmin..INT_PREC).rev() {
        // Verbatim prefix in one read; run-length groups stay bitwise
        // (their lengths are data-dependent), but each read_bit is now a
        // cached-word shift.
        let mut x = input.read_bits(n as u32);
        let mut m = n;
        while m < size {
            if input.read_bit() == 0 {
                break;
            }
            loop {
                if m == size - 1 {
                    x |= 1 << m;
                    m = size;
                    break;
                }
                let bit = input.read_bit();
                if bit == 1 {
                    x |= 1 << m;
                    m += 1;
                    break;
                }
                m += 1;
            }
        }
        // Scatter plane k back into the coefficients (sparse).
        let mut y = x;
        while y != 0 {
            let i = y.trailing_zeros() as usize;
            if let Some(u) = uints.get_mut(i) {
                *u |= 1u64 << k;
            }
            y &= y - 1;
        }
        sig |= x;
        n = 64 - sig.leading_zeros() as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_ints(uints: &[u64], maxprec: u32) -> Vec<u64> {
        let mut w = BitWriter::new();
        encode_ints(uints, maxprec, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0u64; uints.len()];
        decode_ints(&mut out, maxprec, &mut r);
        out
    }

    #[test]
    fn ints_roundtrip_full_precision() {
        let mut rng = lrm_rng::Rng64::new(9);
        for _ in 0..50 {
            let uints: Vec<u64> = (0..16).map(|_| rng.next_u64() >> 2).collect();
            assert_eq!(roundtrip_ints(&uints, 64), uints);
        }
    }

    #[test]
    fn ints_roundtrip_truncated_zeroes_low_planes() {
        let uints = vec![0xFFFF_FFFF_FFFF_FFFCu64 >> 2; 4];
        let out = roundtrip_ints(&uints, 8);
        for (a, b) in uints.iter().zip(&out) {
            // Top 8 planes (bits 63..56) must match exactly.
            assert_eq!(a >> 56, b >> 56);
            // Lower planes are zeroed.
            assert_eq!(b & ((1 << 56) - 1), 0);
        }
    }

    #[test]
    fn ints_roundtrip_sparse() {
        let mut uints = vec![0u64; 64];
        uints[63] = 1 << 40; // only the final coefficient is significant
        assert_eq!(roundtrip_ints(&uints, 64), uints);
        uints[0] = u64::MAX >> 2;
        assert_eq!(roundtrip_ints(&uints, 64), uints);
    }

    #[test]
    fn ints_all_zero_is_compact() {
        let uints = vec![0u64; 64];
        let mut w = BitWriter::new();
        encode_ints(&uints, 16, &mut w);
        // One group-test zero bit per plane.
        assert_eq!(w.len_bits(), 16);
        assert_eq!(roundtrip_ints(&uints, 16), uints);
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [0i64, 1, -1, 42, -42, i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(uint2int(int2uint(x)), x);
        }
    }

    #[test]
    fn negabinary_small_magnitudes_have_few_bits() {
        assert_eq!(int2uint(0), 0);
        assert!(int2uint(1).leading_zeros() >= 60);
        assert!(int2uint(-1).leading_zeros() >= 60);
    }

    #[test]
    fn ldexp_extreme_exponents() {
        assert_eq!(ldexp(1.0, 10), 1024.0);
        assert_eq!(ldexp(1.0, 0), 1.0);
        assert_eq!(ldexp(4.0, -2), 1.0);
        // Would overflow if computed as x * 2^e in one step.
        let v = ldexp(1e-300, 1135);
        assert!(v.is_finite() && v > 0.0);
        assert!((ldexp(v, -1135) - 1e-300).abs() < 1e-310);
    }

    #[test]
    fn exponent_matches_frexp_semantics() {
        assert_eq!(exponent(1.0), 1); // 1.0 = 0.5 * 2^1
        assert_eq!(exponent(0.5), 0);
        assert_eq!(exponent(0.75), 0);
        assert_eq!(exponent(2.0), 2);
        assert_eq!(exponent(3.0), 2);
        assert_eq!(exponent(-4.0), 3);
        assert_eq!(exponent(0.0), i32::MIN);
    }

    #[test]
    fn full_precision_block_roundtrip_is_near_lossless() {
        let block: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut w = BitWriter::new();
        encode_block(&block, 2, 64, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0.0; 16];
        decode_block(2, 64, &mut r, &mut out).expect("decode");
        for (a, b) in block.iter().zip(&out) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_block_is_one_bit() {
        let block = vec![0.0; 64];
        let mut w = BitWriter::new();
        encode_block(&block, 3, 16, &mut w);
        assert_eq!(w.len_bits(), 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![1.0; 64];
        decode_block(3, 16, &mut r, &mut out).expect("decode");
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn precision_controls_error() {
        let block: Vec<f64> = (0..64)
            .map(|i| 100.0 * ((i % 4) as f64 * 0.31).cos() * ((i / 16) as f64 - 1.5))
            .collect();
        let mut errs = Vec::new();
        for &prec in &[8u32, 16, 32] {
            let mut w = BitWriter::new();
            encode_block(&block, 3, prec, &mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut out = vec![0.0; 64];
            decode_block(3, prec, &mut r, &mut out).expect("decode");
            let e: f64 = block
                .iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            errs.push(e);
        }
        assert!(errs[0] >= errs[1] && errs[1] >= errs[2], "errors {errs:?}");
        assert!(errs[2] < 1e-3);
    }

    #[test]
    fn nonfinite_block_decodes_to_zeros() {
        let mut block = vec![1.0; 16];
        block[3] = f64::NAN;
        let mut w = BitWriter::new();
        encode_block(&block, 2, 16, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![9.0; 16];
        decode_block(2, 16, &mut r, &mut out).expect("decode");
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn subnormal_block_roundtrips() {
        let block = vec![1e-310f64, -2e-310, 3e-310, 0.0];
        let mut w = BitWriter::new();
        encode_block(&block, 1, 64, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0.0; 4];
        decode_block(1, 64, &mut r, &mut out).expect("decode");
        for (a, b) in block.iter().zip(&out) {
            assert!((a - b).abs() < 1e-320, "{a} vs {b}");
        }
    }

    #[test]
    fn prop_ints_roundtrip_randomized() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let vals: Vec<u64> = (0..16).map(|_| rng.range_u64(1u64 << 62)).collect();
            assert_eq!(roundtrip_ints(&vals, 64), vals);
        }
    }

    #[test]
    fn prop_block_roundtrip_bounded_error() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let vals = rng.vec_f64(-1000.0, 1000.0, 64);
            let mut w = BitWriter::new();
            encode_block(&vals, 3, 40, &mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut out = vec![0.0; 64];
            decode_block(3, 40, &mut r, &mut out).expect("decode");
            let maxv = vals.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            for (a, b) in vals.iter().zip(&out) {
                assert!((a - b).abs() <= maxv * 1e-9 + 1e-12);
            }
        }
    }
}
