//! Per-block coefficient coding: block-floating-point conversion,
//! negabinary mapping, and embedded (group-tested) bit-plane coding.
//!
//! This mirrors ZFP's `encode_ints`/`decode_ints`: coefficients are coded
//! one bit plane at a time from most to least significant; within a plane,
//! already-significant coefficients emit verbatim bits and the remainder
//! are covered by a unary run-length "any ones left?" test. Truncating the
//! stream after `p` planes yields the fixed-precision mode the paper uses.

use super::transform::{fwd_xform, inv_xform, sequency_perm};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};

/// Bits in the integer representation.
pub const INT_PREC: u32 = 64;
/// Negabinary conversion mask (alternating bits).
const NBMASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
/// Bias applied to the per-block exponent before storage.
const E_BIAS: i32 = 1100;
/// Bits used to store the biased block exponent.
const E_BITS: u32 = 12;

/// Maps a two's-complement integer to negabinary (sign-free) form.
#[inline]
pub fn int2uint(x: i64) -> u64 {
    ((x as u64).wrapping_add(NBMASK)) ^ NBMASK
}

/// Inverse of [`int2uint`].
#[inline]
pub fn uint2int(u: u64) -> i64 {
    ((u ^ NBMASK).wrapping_sub(NBMASK)) as i64
}

/// `x * 2^e` without intermediate overflow (ldexp). Splits the exponent so
/// each factor stays representable even for the extreme block exponents of
/// subnormal data.
#[inline]
pub fn ldexp(x: f64, e: i32) -> f64 {
    let a = e / 2;
    let b = e - a;
    x * pow2_small(a) * pow2_small(b)
}

/// `2^e` for |e| <= 1023 via exponent-field construction.
#[inline]
fn pow2_small(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e), "pow2_small out of range: {e}");
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Exponent of `x` in the frexp sense: smallest `e` with `|x| <= 2^e` and
/// `|x| > 2^(e-1)`... precisely, `x = f * 2^e` with `f` in `[0.5, 1)`.
/// Returns `i32::MIN` for zero.
fn exponent(x: f64) -> i32 {
    if x == 0.0 {
        return i32::MIN;
    }
    let bits = x.abs().to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    if raw_exp == 0 {
        // Subnormal: value = mantissa * 2^-1074, top set bit decides.
        let mantissa = bits & 0xf_ffff_ffff_ffff;
        let top = 63 - mantissa.leading_zeros() as i32;
        return top - 1074 + 1;
    }
    raw_exp - 1022
}

/// Largest frexp exponent over a block; `None` when all values are zero or
/// any value is non-finite (such blocks are stored as all-zero).
fn block_exponent(block: &[f64]) -> Option<i32> {
    let mut emax = i32::MIN;
    for &v in block {
        if !v.is_finite() {
            return None;
        }
        if v != 0.0 {
            emax = emax.max(exponent(v));
        }
    }
    if emax == i32::MIN {
        None
    } else {
        Some(emax)
    }
}

/// Encodes one 4^d block of doubles at `maxprec` bit planes.
pub fn encode_block(block: &[f64], ndims: usize, maxprec: u32, out: &mut BitWriter) {
    let n = 1usize << (2 * ndims);
    debug_assert_eq!(block.len(), n);
    let Some(emax) = block_exponent(block) else {
        out.write_bit(0); // all-zero (or non-finite) block
        return;
    };
    out.write_bit(1);
    out.write_bits((emax + E_BIAS) as u64, E_BITS);

    // Block-floating-point: scale values (|v| < 2^emax) up to |i| < 2^62,
    // leaving two headroom bits for transform growth.
    let shift = INT_PREC as i32 - 2 - emax;
    let mut ints = [0i64; 64];
    for (i, &v) in block.iter().enumerate() {
        ints[i] = ldexp(v, shift) as i64;
    }
    fwd_xform(&mut ints[..n], ndims);

    // Negabinary in sequency order.
    let perm = sequency_perm(ndims);
    let mut uints = [0u64; 64];
    for i in 0..n {
        uints[i] = int2uint(ints[perm[i]]);
    }

    encode_ints(&uints[..n], maxprec, out);
}

/// Decodes one block previously produced by [`encode_block`]. Returns
/// a [`DecodeError`] when the stored block exponent lies outside the
/// range any finite `f64` can produce — the only way corrupt bits can
/// push the block-floating-point math out of its domain.
pub fn decode_block(
    ndims: usize,
    maxprec: u32,
    input: &mut BitReader<'_>,
    block: &mut [f64],
) -> DecodeResult<()> {
    let n = 1usize << (2 * ndims);
    debug_assert_eq!(block.len(), n);
    if input.read_bit() == 0 {
        block.fill(0.0);
        return Ok(());
    }
    let emax = input.read_bits(E_BITS) as i32 - E_BIAS;
    // frexp exponents of finite doubles span [-1073, 1024]; anything
    // else cannot have come from `encode_block` and would drive the
    // ldexp reconstruction below out of pow2_small's domain.
    if !(-1073..=1024).contains(&emax) {
        return Err(DecodeError::Corrupt {
            what: "zfp block exponent",
        });
    }

    let mut uints = [0u64; 64];
    // lint:allow(no-index): n = 4^ndims <= 64 and uints is [u64; 64]
    decode_ints(&mut uints[..n], maxprec, input);

    let perm = sequency_perm(ndims);
    let mut ints = [0i64; 64];
    for i in 0..n {
        // lint:allow(no-index): i < n <= 64; perm values < n by construction
        ints[perm[i]] = uint2int(uints[i]);
    }
    // lint:allow(no-index): n = 4^ndims <= 64 and ints is [i64; 64]
    inv_xform(&mut ints[..n], ndims);

    let shift = emax - (INT_PREC as i32 - 2);
    for (i, v) in block.iter_mut().enumerate() {
        // lint:allow(no-index): i < block.len() = n <= 64 (debug-asserted above)
        *v = ldexp(ints[i] as f64, shift);
    }
    Ok(())
}

/// Length of the prefix of coefficients holding any set bit at plane `k`
/// or above. Encoder and decoder both derive `n` from this, keeping the
/// verbatim/run-length split in lock-step across planes.
fn significant_prefix(uints: &[u64], k: u32) -> usize {
    let mut n = 0;
    for (i, &u) in uints.iter().enumerate() {
        if u >> k != 0 {
            n = i + 1;
        }
    }
    n
}

/// Embedded coding of negabinary coefficients, `maxprec` planes from the
/// top.
fn encode_ints(uints: &[u64], maxprec: u32, out: &mut BitWriter) {
    let size = uints.len();
    let kmin = INT_PREC.saturating_sub(maxprec);
    let mut n = 0usize;
    for k in (kmin..INT_PREC).rev() {
        // Step 1: gather bit plane k (bit i of x = plane bit of coeff i).
        let mut x: u64 = 0;
        for (i, &u) in uints.iter().enumerate() {
            x |= ((u >> k) & 1) << i;
        }
        // Step 2: verbatim bits of already-significant coefficients.
        out.write_bits(x, n as u32);
        x = if n >= 64 { 0 } else { x >> n };
        // Step 3: unary run-length encode the remainder.
        let mut m = n;
        while m < size {
            let any = x != 0;
            out.write_bit(any as u64);
            if !any {
                break;
            }
            loop {
                if m == size - 1 {
                    // Only one coefficient remains and the group test said
                    // a one exists: its bit is implied.
                    m = size;
                    break;
                }
                let bit = x & 1;
                x >>= 1;
                m += 1;
                out.write_bit(bit);
                if bit == 1 {
                    break;
                }
            }
        }
        n = significant_prefix(uints, k);
    }
}

/// Inverse of [`encode_ints`].
fn decode_ints(uints: &mut [u64], maxprec: u32, input: &mut BitReader<'_>) {
    let size = uints.len();
    uints.fill(0);
    let kmin = INT_PREC.saturating_sub(maxprec);
    let mut n = 0usize;
    for k in (kmin..INT_PREC).rev() {
        let mut x = input.read_bits(n as u32);
        let mut m = n;
        while m < size {
            if input.read_bit() == 0 {
                break;
            }
            loop {
                if m == size - 1 {
                    x |= 1 << m;
                    m = size;
                    break;
                }
                let bit = input.read_bit();
                if bit == 1 {
                    x |= 1 << m;
                    m += 1;
                    break;
                }
                m += 1;
            }
        }
        for i in 0..size {
            // lint:allow(no-index): i < size = uints.len()
            uints[i] |= ((x >> i) & 1) << k;
        }
        n = significant_prefix(uints, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_ints(uints: &[u64], maxprec: u32) -> Vec<u64> {
        let mut w = BitWriter::new();
        encode_ints(uints, maxprec, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0u64; uints.len()];
        decode_ints(&mut out, maxprec, &mut r);
        out
    }

    #[test]
    fn ints_roundtrip_full_precision() {
        let mut rng = lrm_rng::Rng64::new(9);
        for _ in 0..50 {
            let uints: Vec<u64> = (0..16).map(|_| rng.next_u64() >> 2).collect();
            assert_eq!(roundtrip_ints(&uints, 64), uints);
        }
    }

    #[test]
    fn ints_roundtrip_truncated_zeroes_low_planes() {
        let uints = vec![0xFFFF_FFFF_FFFF_FFFCu64 >> 2; 4];
        let out = roundtrip_ints(&uints, 8);
        for (a, b) in uints.iter().zip(&out) {
            // Top 8 planes (bits 63..56) must match exactly.
            assert_eq!(a >> 56, b >> 56);
            // Lower planes are zeroed.
            assert_eq!(b & ((1 << 56) - 1), 0);
        }
    }

    #[test]
    fn ints_roundtrip_sparse() {
        let mut uints = vec![0u64; 64];
        uints[63] = 1 << 40; // only the final coefficient is significant
        assert_eq!(roundtrip_ints(&uints, 64), uints);
        uints[0] = u64::MAX >> 2;
        assert_eq!(roundtrip_ints(&uints, 64), uints);
    }

    #[test]
    fn ints_all_zero_is_compact() {
        let uints = vec![0u64; 64];
        let mut w = BitWriter::new();
        encode_ints(&uints, 16, &mut w);
        // One group-test zero bit per plane.
        assert_eq!(w.len_bits(), 16);
        assert_eq!(roundtrip_ints(&uints, 16), uints);
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [0i64, 1, -1, 42, -42, i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(uint2int(int2uint(x)), x);
        }
    }

    #[test]
    fn negabinary_small_magnitudes_have_few_bits() {
        assert_eq!(int2uint(0), 0);
        assert!(int2uint(1).leading_zeros() >= 60);
        assert!(int2uint(-1).leading_zeros() >= 60);
    }

    #[test]
    fn ldexp_extreme_exponents() {
        assert_eq!(ldexp(1.0, 10), 1024.0);
        assert_eq!(ldexp(1.0, 0), 1.0);
        assert_eq!(ldexp(4.0, -2), 1.0);
        // Would overflow if computed as x * 2^e in one step.
        let v = ldexp(1e-300, 1135);
        assert!(v.is_finite() && v > 0.0);
        assert!((ldexp(v, -1135) - 1e-300).abs() < 1e-310);
    }

    #[test]
    fn exponent_matches_frexp_semantics() {
        assert_eq!(exponent(1.0), 1); // 1.0 = 0.5 * 2^1
        assert_eq!(exponent(0.5), 0);
        assert_eq!(exponent(0.75), 0);
        assert_eq!(exponent(2.0), 2);
        assert_eq!(exponent(3.0), 2);
        assert_eq!(exponent(-4.0), 3);
        assert_eq!(exponent(0.0), i32::MIN);
    }

    #[test]
    fn full_precision_block_roundtrip_is_near_lossless() {
        let block: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut w = BitWriter::new();
        encode_block(&block, 2, 64, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0.0; 16];
        decode_block(2, 64, &mut r, &mut out).expect("decode");
        for (a, b) in block.iter().zip(&out) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_block_is_one_bit() {
        let block = vec![0.0; 64];
        let mut w = BitWriter::new();
        encode_block(&block, 3, 16, &mut w);
        assert_eq!(w.len_bits(), 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![1.0; 64];
        decode_block(3, 16, &mut r, &mut out).expect("decode");
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn precision_controls_error() {
        let block: Vec<f64> = (0..64)
            .map(|i| 100.0 * ((i % 4) as f64 * 0.31).cos() * ((i / 16) as f64 - 1.5))
            .collect();
        let mut errs = Vec::new();
        for &prec in &[8u32, 16, 32] {
            let mut w = BitWriter::new();
            encode_block(&block, 3, prec, &mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut out = vec![0.0; 64];
            decode_block(3, prec, &mut r, &mut out).expect("decode");
            let e: f64 = block
                .iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            errs.push(e);
        }
        assert!(errs[0] >= errs[1] && errs[1] >= errs[2], "errors {errs:?}");
        assert!(errs[2] < 1e-3);
    }

    #[test]
    fn nonfinite_block_decodes_to_zeros() {
        let mut block = vec![1.0; 16];
        block[3] = f64::NAN;
        let mut w = BitWriter::new();
        encode_block(&block, 2, 16, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![9.0; 16];
        decode_block(2, 16, &mut r, &mut out).expect("decode");
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn subnormal_block_roundtrips() {
        let block = vec![1e-310f64, -2e-310, 3e-310, 0.0];
        let mut w = BitWriter::new();
        encode_block(&block, 1, 64, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0.0; 4];
        decode_block(1, 64, &mut r, &mut out).expect("decode");
        for (a, b) in block.iter().zip(&out) {
            assert!((a - b).abs() < 1e-320, "{a} vs {b}");
        }
    }

    #[test]
    fn prop_ints_roundtrip_randomized() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let vals: Vec<u64> = (0..16).map(|_| rng.range_u64(1u64 << 62)).collect();
            assert_eq!(roundtrip_ints(&vals, 64), vals);
        }
    }

    #[test]
    fn prop_block_roundtrip_bounded_error() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let vals = rng.vec_f64(-1000.0, 1000.0, 64);
            let mut w = BitWriter::new();
            encode_block(&vals, 3, 40, &mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut out = vec![0.0; 64];
            decode_block(3, 40, &mut r, &mut out).expect("decode");
            let maxv = vals.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            for (a, b) in vals.iter().zip(&out) {
                assert!((a - b).abs() <= maxv * 1e-9 + 1e-12);
            }
        }
    }
}
