//! Gather/scatter of 4^d blocks from row-major fields, with edge padding.
//!
//! ZFP partitions a d-dimensional array into blocks of 4^d values and
//! compresses each block independently. Fields whose extents are not
//! multiples of 4 are padded by replicating the last in-range sample,
//! which keeps padded coefficients smooth (cheap to encode).

use crate::Shape;

/// Number of blocks along each dimension for `shape` (ceil(n/4), min 1 for
/// real dimensions).
pub fn block_grid(shape: Shape) -> [usize; 3] {
    let f = |n: usize| n.div_ceil(4).max(1);
    match shape.ndims() {
        1 => [f(shape.dims[0]), 1, 1],
        2 => [f(shape.dims[0]), f(shape.dims[1]), 1],
        _ => [f(shape.dims[0]), f(shape.dims[1]), f(shape.dims[2])],
    }
}

/// Total number of blocks in the field.
pub fn block_count(shape: Shape) -> usize {
    let g = block_grid(shape);
    g[0] * g[1] * g[2]
}

/// Extracts block `(bx, by, bz)` into `out` (length 4^d), replicating edge
/// samples where the block sticks out of the field.
pub fn gather(data: &[f64], shape: Shape, b: [usize; 3], out: &mut [f64]) {
    let ndims = shape.ndims();
    let n = 1usize << (2 * ndims);
    debug_assert_eq!(out.len(), n);
    let clamp = |v: usize, max: usize| v.min(max - 1);
    match ndims {
        1 => {
            for i in 0..4 {
                let x = clamp(b[0] * 4 + i, shape.dims[0]);
                out[i] = data[x];
            }
        }
        2 => {
            for j in 0..4 {
                let y = clamp(b[1] * 4 + j, shape.dims[1]);
                for i in 0..4 {
                    let x = clamp(b[0] * 4 + i, shape.dims[0]);
                    out[4 * j + i] = data[shape.idx(x, y, 0)];
                }
            }
        }
        _ => {
            for k in 0..4 {
                let z = clamp(b[2] * 4 + k, shape.dims[2]);
                for j in 0..4 {
                    let y = clamp(b[1] * 4 + j, shape.dims[1]);
                    for i in 0..4 {
                        let x = clamp(b[0] * 4 + i, shape.dims[0]);
                        out[16 * k + 4 * j + i] = data[shape.idx(x, y, z)];
                    }
                }
            }
        }
    }
}

/// Writes block `(bx, by, bz)` back into `data`, skipping padded samples.
pub fn scatter(block: &[f64], shape: Shape, b: [usize; 3], data: &mut [f64]) {
    let ndims = shape.ndims();
    match ndims {
        1 => {
            for i in 0..4 {
                let x = b[0] * 4 + i;
                if x < shape.dims[0] {
                    data[x] = block[i];
                }
            }
        }
        2 => {
            for j in 0..4 {
                let y = b[1] * 4 + j;
                if y >= shape.dims[1] {
                    continue;
                }
                for i in 0..4 {
                    let x = b[0] * 4 + i;
                    if x < shape.dims[0] {
                        data[shape.idx(x, y, 0)] = block[4 * j + i];
                    }
                }
            }
        }
        _ => {
            for k in 0..4 {
                let z = b[2] * 4 + k;
                if z >= shape.dims[2] {
                    continue;
                }
                for j in 0..4 {
                    let y = b[1] * 4 + j;
                    if y >= shape.dims[1] {
                        continue;
                    }
                    for i in 0..4 {
                        let x = b[0] * 4 + i;
                        if x < shape.dims[0] {
                            data[shape.idx(x, y, z)] = block[16 * k + 4 * j + i];
                        }
                    }
                }
            }
        }
    }
}

/// Iterates block coordinates in encode order (x fastest).
pub fn block_coords(shape: Shape) -> impl Iterator<Item = [usize; 3]> {
    let g = block_grid(shape);
    (0..g[2])
        .flat_map(move |bz| (0..g[1]).flat_map(move |by| (0..g[0]).map(move |bx| [bx, by, bz])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        assert_eq!(block_grid(Shape::d1(9)), [3, 1, 1]);
        assert_eq!(block_grid(Shape::d2(8, 5)), [2, 2, 1]);
        assert_eq!(block_grid(Shape::d3(4, 4, 4)), [1, 1, 1]);
        assert_eq!(block_count(Shape::d3(5, 5, 5)), 8);
    }

    #[test]
    fn gather_scatter_roundtrip_aligned() {
        let shape = Shape::d2(8, 8);
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut out = vec![0.0; 64];
        let mut block = vec![0.0; 16];
        for b in block_coords(shape) {
            gather(&data, shape, b, &mut block);
            scatter(&block, shape, b, &mut out);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn gather_scatter_roundtrip_unaligned_3d() {
        let shape = Shape::d3(5, 6, 7);
        let data: Vec<f64> = (0..shape.len()).map(|i| (i as f64).sin()).collect();
        let mut out = vec![0.0; shape.len()];
        let mut block = vec![0.0; 64];
        for b in block_coords(shape) {
            gather(&data, shape, b, &mut block);
            scatter(&block, shape, b, &mut out);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn gather_pads_by_replication() {
        let shape = Shape::d1(2);
        let data = [10.0, 20.0];
        let mut block = vec![0.0; 4];
        gather(&data, shape, [0, 0, 0], &mut block);
        assert_eq!(block, vec![10.0, 20.0, 20.0, 20.0]);
    }

    #[test]
    fn block_coords_order_and_count() {
        let shape = Shape::d2(5, 5);
        let coords: Vec<_> = block_coords(shape).collect();
        assert_eq!(coords.len(), 4);
        assert_eq!(coords[0], [0, 0, 0]);
        assert_eq!(coords[1], [1, 0, 0]); // x fastest
        assert_eq!(coords[2], [0, 1, 0]);
    }
}
