//! ZFP-like transform-based lossy compressor.
//!
//! Pipeline (per 4^d block, following Lindstrom's fixed-rate compressed
//! floating-point arrays): align block values to a common exponent,
//! convert to 62-bit fixed point, apply the reversible decorrelating
//! lifting transform, reorder by total sequency, map to negabinary, and
//! emit bit planes with embedded group-testing coding.
//!
//! The paper uses ZFP's **fixed-precision** mode: 16 bits of precision for
//! original data, 8 bits for deltas, and an 8..=32 sweep for the Fig. 11
//! rate-distortion comparison. [`ZfpMode::FixedPrecision`] reproduces
//! that; [`ZfpMode::FixedAccuracy`] additionally offers an absolute error
//! target by deriving the plane cutoff per block.

pub mod block;
pub mod codec;
pub mod transform;

use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};
use crate::lossless::varint::{decode_uvarint, encode_uvarint};
use crate::{Codec, Shape};
pub use codec::ldexp;

/// Operating mode of the [`Zfp`] codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Encode exactly this many bit planes per block (1..=64). This is the
    /// mode used throughout the paper's evaluation.
    FixedPrecision(u32),
    /// Encode enough planes that the per-value error is at most `tol`.
    FixedAccuracy(f64),
}

/// ZFP-like codec. See the module docs for the algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zfp {
    mode: ZfpMode,
}

impl Zfp {
    /// Creates a codec in fixed-precision mode with `bits` planes
    /// (clamped to 1..=64).
    pub fn fixed_precision(bits: u32) -> Self {
        Self {
            mode: ZfpMode::FixedPrecision(bits.clamp(1, 64)),
        }
    }

    /// Creates a codec in fixed-accuracy mode with absolute tolerance
    /// `tol` (> 0).
    pub fn fixed_accuracy(tol: f64) -> Self {
        assert!(tol > 0.0, "zfp: tolerance must be positive");
        Self {
            mode: ZfpMode::FixedAccuracy(tol),
        }
    }

    /// The codec's mode.
    pub fn mode(&self) -> ZfpMode {
        self.mode
    }

    /// Planes to encode for a block of dimensionality `d` given the mode.
    /// For fixed accuracy the cutoff is derived from the tolerance and the
    /// scale: coefficients live at scale 2^(emax-62), so encoding down to
    /// plane `k` leaves error ~2^(emax-62) * 2^k per coefficient.
    fn maxprec(&self, emax: i32, ndims: usize) -> u32 {
        match self.mode {
            ZfpMode::FixedPrecision(p) => p,
            ZfpMode::FixedAccuracy(tol) => {
                // Truncating below plane k leaves per-coefficient error
                // ~2^(emax - prec); the inverse transform amplifies it by
                // up to ~2^2 per dimension, plus negabinary slack.
                let log_tol = tol.log2().floor() as i32;
                let prec = emax - log_tol + 2 * ndims as i32 + 3;
                prec.clamp(1, 64) as u32
            }
        }
    }
}

impl Codec for Zfp {
    fn name(&self) -> &'static str {
        "ZFP"
    }

    fn compress(&self, data: &[f64], shape: Shape) -> Vec<u8> {
        assert_eq!(data.len(), shape.len(), "zfp: data/shape mismatch");
        let ndims = shape.ndims();
        let bsize = 1usize << (2 * ndims);
        let coords: Vec<[usize; 3]> = block::block_coords(shape).collect();

        // Encode groups of blocks in parallel into private writers, then
        // stitch the bitstreams (no alignment padding, so the output is
        // byte-identical to a serial encode).
        const GROUP: usize = 256;
        let group_inputs: Vec<&[[usize; 3]]> = coords.chunks(GROUP).collect();
        let groups: Vec<BitWriter> =
            lrm_parallel::WorkerPool::auto().run(group_inputs, |_, chunk| {
                let mut w = BitWriter::with_capacity_bits(chunk.len() * bsize * 20);
                let mut scratch = codec::BlockScratch::new();
                for &b in chunk {
                    block::gather(data, shape, b, &mut scratch.blk[..bsize]);
                    // Fixed-accuracy derives the plane budget per block;
                    // fixed precision is uniform. Either way the decoder
                    // recomputes it from the stored exponent, so nothing
                    // extra is stored.
                    let prec = match self.mode {
                        ZfpMode::FixedPrecision(p) => p,
                        ZfpMode::FixedAccuracy(_) => {
                            let emax = scratch.blk[..bsize]
                                .iter()
                                .filter(|v| **v != 0.0 && v.is_finite())
                                .map(|&v| {
                                    let bits = v.abs().to_bits();
                                    let raw = ((bits >> 52) & 0x7ff) as i32;
                                    if raw == 0 {
                                        let m = bits & 0xf_ffff_ffff_ffff;
                                        (63 - m.leading_zeros() as i32) - 1073
                                    } else {
                                        raw - 1022
                                    }
                                })
                                .max()
                                .unwrap_or(0);
                            self.maxprec(emax, ndims)
                        }
                    };
                    codec::encode_block_scratch(&mut scratch, ndims, prec, &mut w);
                }
                w
            });

        let total_bits: usize = groups.iter().map(|g| g.len_bits()).sum();
        let mut stream = BitWriter::with_capacity_bits(total_bits);
        for g in &groups {
            stream.append(g);
        }
        // Frame the stream with its exact bit length so the decoder can
        // tell a truncated stream apart from one whose tail planes are
        // legitimately zero (BitReader reads zeros past the end).
        let mut out = Vec::new();
        encode_uvarint(total_bits as u64, &mut out);
        out.extend_from_slice(&stream.into_bytes());
        out
    }

    fn decompress(&self, bytes: &[u8], shape: Shape) -> DecodeResult<Vec<f64>> {
        let mut pos = 0usize;
        let total_bits = decode_uvarint(bytes, &mut pos).ok_or(DecodeError::Truncated {
            what: "zfp bit-count header",
        })?;
        let payload = bytes.get(pos..).ok_or(DecodeError::Truncated {
            what: "zfp payload",
        })?;
        if (payload.len() as u64).saturating_mul(8) < total_bits {
            return Err(DecodeError::Truncated {
                what: "zfp bit stream",
            });
        }
        let ndims = shape.ndims();
        let bsize = 1usize << (2 * ndims);
        let mut reader = BitReader::new(payload);
        let mut data = vec![0.0f64; shape.len()];
        let mut scratch = codec::BlockScratch::new();
        for b in block::block_coords(shape) {
            match self.mode {
                ZfpMode::FixedPrecision(p) => {
                    codec::decode_block_scratch(&mut scratch, ndims, p, &mut reader)?;
                }
                ZfpMode::FixedAccuracy(_) => {
                    // Peek the zero flag and exponent to recompute the
                    // encoder's plane budget for this block.
                    let mut peek = reader.clone();
                    if peek.read_bit() == 0 {
                        reader.read_bit();
                        // bsize = 4^ndims <= 64 by construction, but the
                        // decode path stays panic-free via .get().
                        let blk = scratch.blk.get_mut(..bsize).ok_or(DecodeError::Corrupt {
                            what: "zfp block size exceeds scratch",
                        })?;
                        blk.fill(0.0);
                        block::scatter(blk, shape, b, &mut data);
                        continue;
                    }
                    let emax = peek.read_bits(12) as i32 - 1100;
                    let prec = self.maxprec(emax, ndims);
                    codec::decode_block_scratch(&mut scratch, ndims, prec, &mut reader)?;
                }
            }
            let blk = scratch.blk.get(..bsize).ok_or(DecodeError::Corrupt {
                what: "zfp block size exceeds scratch",
            })?;
            block::scatter(blk, shape, b, &mut data);
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field_2d(nx: usize, ny: usize) -> (Vec<f64>, Shape) {
        let shape = Shape::d2(nx, ny);
        let mut v = vec![0.0; shape.len()];
        for y in 0..ny {
            for x in 0..nx {
                v[shape.idx(x, y, 0)] =
                    ((x as f64) * 0.07).sin() * ((y as f64) * 0.05).cos() * 40.0 + 100.0;
            }
        }
        (v, shape)
    }

    #[test]
    fn roundtrip_2d_smooth_bounded_error() {
        let (v, shape) = smooth_field_2d(33, 29);
        let z = Zfp::fixed_precision(32);
        let c = z.compress(&v, shape);
        let d = z.decompress(&c, shape).expect("decode");
        let range = 80.0;
        for (a, b) in v.iter().zip(&d) {
            assert!((a - b).abs() < range * 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn smooth_data_compresses_well_at_16_bits() {
        let (v, shape) = smooth_field_2d(64, 64);
        let z = Zfp::fixed_precision(16);
        let ratio = z.ratio(&v, shape);
        // The paper's ZFP baseline gets ~4x on raw HPC data; smooth
        // synthetic data should beat that.
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn constant_field_compresses_extremely() {
        let shape = Shape::d3(16, 16, 16);
        let v = vec![0.0; shape.len()];
        let z = Zfp::fixed_precision(16);
        let c = z.compress(&v, shape);
        assert!(
            c.len() < 32,
            "all-zero field should be ~1 bit/block: {}",
            c.len()
        );
        assert_eq!(z.decompress(&c, shape).expect("decode"), v);
    }

    #[test]
    fn roundtrip_1d_and_3d() {
        let z = Zfp::fixed_precision(40);
        let s1 = Shape::d1(100);
        let v1: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let d1 = z.decompress(&z.compress(&v1, s1), s1).expect("decode");
        for (a, b) in v1.iter().zip(&d1) {
            assert!((a - b).abs() < 1e-8);
        }
        let s3 = Shape::d3(9, 10, 11);
        let v3: Vec<f64> = (0..s3.len())
            .map(|i| (i as f64 * 0.01).cos() * 5.0)
            .collect();
        let d3 = z.decompress(&z.compress(&v3, s3), s3).expect("decode");
        for (a, b) in v3.iter().zip(&d3) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn higher_precision_means_bigger_output_and_smaller_error() {
        let (v, shape) = smooth_field_2d(48, 48);
        let mut last_len = 0usize;
        let mut last_err = f64::INFINITY;
        for &p in &[8u32, 16, 24, 32] {
            let z = Zfp::fixed_precision(p);
            let c = z.compress(&v, shape);
            let d = z.decompress(&c, shape).expect("decode");
            let err = lrm_err(&v, &d);
            assert!(c.len() >= last_len, "precision {p}");
            assert!(err <= last_err * 1.01, "precision {p}: {err} vs {last_err}");
            last_len = c.len();
            last_err = err;
        }
    }

    fn lrm_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fixed_accuracy_meets_tolerance() {
        let (v, shape) = smooth_field_2d(40, 40);
        for &tol in &[1e-1, 1e-3, 1e-6] {
            let z = Zfp::fixed_accuracy(tol);
            let c = z.compress(&v, shape);
            let d = z.decompress(&c, shape).expect("decode");
            let err = lrm_err(&v, &d);
            assert!(err <= tol, "tol {tol}: err {err}");
        }
    }

    #[test]
    fn negative_and_mixed_sign_data_roundtrip() {
        let shape = Shape::d2(20, 20);
        let v: Vec<f64> = (0..400).map(|i| ((i as f64) - 200.0) * 0.3).collect();
        let z = Zfp::fixed_precision(48);
        let d = z.decompress(&z.compress(&v, shape), shape).expect("decode");
        for (a, b) in v.iter().zip(&d) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "data/shape mismatch")]
    fn compress_rejects_wrong_length() {
        Zfp::fixed_precision(16).compress(&[1.0, 2.0], Shape::d1(3));
    }

    #[test]
    fn parallel_group_stitching_roundtrips_across_group_boundaries() {
        // 40³ = 1000 blocks: several parallel encode groups must stitch
        // into one decodable stream.
        let shape = Shape::d3(40, 40, 40);
        let v: Vec<f64> = (0..shape.len())
            .map(|i| ((i % 977) as f64 * 0.13).sin() * 25.0 + (i / 1600) as f64)
            .collect();
        let z = Zfp::fixed_precision(32);
        let d = z.decompress(&z.compress(&v, shape), shape).expect("decode");
        let maxv = v.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for (a, b) in v.iter().zip(&d) {
            assert!((a - b).abs() <= maxv * 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn prop_roundtrip_error_bounded() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = 1 + rng.range_usize(199);
            let vals = rng.vec_f64(-1e6, 1e6, n);
            let shape = Shape::d1(vals.len());
            let z = Zfp::fixed_precision(48);
            let d = z
                .decompress(&z.compress(&vals, shape), shape)
                .expect("decode");
            let maxv = vals.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            for (a, b) in vals.iter().zip(&d) {
                assert!((a - b).abs() <= maxv * 1e-10 + 1e-12);
            }
        }
    }
}
