//! ZFP's reversible integer lifting transform and sequency ordering.
//!
//! The forward transform decorrelates a 4-element vector (applied along
//! each dimension of a 4^d block); it is the integer-lifted approximation
//! of a DCT-like orthogonal basis from Lindstrom's paper. The inverse
//! reverses each lifting step exactly, so transform+inverse is lossless
//! over `i64` coefficients.

/// Forward decorrelating lifting transform on one 4-vector.
///
/// Arithmetic wraps (as in the C reference) so that coefficients
/// reconstructed from truncated bit planes can never panic; in-range data
/// never actually wraps thanks to the two headroom bits the codec
/// reserves.
#[inline]
pub fn fwd_lift(p: &mut [i64], stride: usize) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[stride], p[2 * stride], p[3 * stride]);
    // Non-orthogonal transform (ZFP):
    //        ( 4  4  4  4) (x)
    // 1/16 * ( 5  1 -1 -5) (y)
    //        (-4  4  4 -4) (z)
    //        (-2  6 -6  2) (w)
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[0] = x;
    p[stride] = y;
    p[2 * stride] = z;
    p[3 * stride] = w;
}

/// Inverse of [`fwd_lift`] up to the truncation of its `>> 1` steps (the
/// transform is near-lossless: a forward/inverse roundtrip may perturb
/// each coefficient by a few units in the last place, exactly as in ZFP).
#[inline]
pub fn inv_lift(p: &mut [i64], stride: usize) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[stride], p[2 * stride], p[3 * stride]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w = w.wrapping_shl(1);
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z = z.wrapping_shl(1);
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(w);
    p[0] = x;
    p[stride] = y;
    p[2 * stride] = z;
    p[3 * stride] = w;
}

/// Forward transform of a full 4^d block (d = 1, 2, 3), in place.
pub fn fwd_xform(block: &mut [i64], ndims: usize) {
    match ndims {
        1 => fwd_lift(block, 1),
        2 => {
            for y in 0..4 {
                fwd_lift(&mut block[4 * y..], 1);
            }
            for x in 0..4 {
                fwd_lift(&mut block[x..], 4);
            }
        }
        3 => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift(&mut block[16 * z + 4 * y..], 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift(&mut block[16 * z + x..], 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift(&mut block[4 * y + x..], 16);
                }
            }
        }
        d => panic!("zfp transform: unsupported dimensionality {d}"),
    }
}

/// Inverse transform of a full 4^d block, in place (reverse order of
/// [`fwd_xform`]).
pub fn inv_xform(block: &mut [i64], ndims: usize) {
    match ndims {
        1 => inv_lift(block, 1),
        2 => {
            for x in 0..4 {
                inv_lift(&mut block[x..], 4);
            }
            for y in 0..4 {
                inv_lift(&mut block[4 * y..], 1);
            }
        }
        3 => {
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift(&mut block[4 * y + x..], 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift(&mut block[16 * z + x..], 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift(&mut block[16 * z + 4 * y..], 1);
                }
            }
        }
        d => panic!("zfp transform: unsupported dimensionality {d}"),
    }
}

/// Sequency permutation: coefficient indices ordered by total frequency
/// (sum of per-dimension indices), lowest first, matching ZFP's embedded
/// coding order. `perm[i]` is the block index of the i-th coefficient to
/// encode.
pub fn sequency_perm(ndims: usize) -> &'static [usize] {
    use std::sync::OnceLock;
    static P1: OnceLock<Vec<usize>> = OnceLock::new();
    static P2: OnceLock<Vec<usize>> = OnceLock::new();
    static P3: OnceLock<Vec<usize>> = OnceLock::new();
    let build = |d: usize| -> Vec<usize> {
        let n = 1usize << (2 * d);
        let mut idx: Vec<usize> = (0..n).collect();
        let key = move |i: usize| -> (usize, usize) {
            let (x, y, z) = (i % 4, (i / 4) % 4, i / 16);
            (x + y + z, i)
        };
        idx.sort_by_key(|&i| key(i));
        idx
    };
    match ndims {
        1 => P1.get_or_init(|| build(1)),
        2 => P2.get_or_init(|| build(2)),
        3 => P3.get_or_init(|| build(3)),
        d => panic!("zfp perm: unsupported dimensionality {d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range_i64(rng: &mut lrm_rng::Rng64, half: i64) -> i64 {
        rng.range_u64(2 * half as u64) as i64 - half
    }

    #[test]
    fn lift_roundtrip_near_lossless() {
        // The lifted transform truncates one bit per `>> 1` step, so a
        // forward/inverse roundtrip may perturb coefficients by a few ULPs
        // of the fixed-point representation (exactly as in ZFP).
        let mut rng = lrm_rng::Rng64::new(5);
        for _ in 0..1000 {
            let orig: Vec<i64> = (0..4).map(|_| range_i64(&mut rng, 1i64 << 50)).collect();
            let mut v = orig.clone();
            fwd_lift(&mut v, 1);
            inv_lift(&mut v, 1);
            for (a, b) in orig.iter().zip(&v) {
                assert!((a - b).abs() <= 8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn xform_roundtrip_near_lossless_2d_3d() {
        let mut rng = lrm_rng::Rng64::new(6);
        for &d in &[1usize, 2, 3] {
            let n = 1usize << (2 * d);
            let orig: Vec<i64> = (0..n).map(|_| range_i64(&mut rng, 1i64 << 50)).collect();
            let mut v = orig.clone();
            fwd_xform(&mut v, d);
            inv_xform(&mut v, d);
            for (a, b) in orig.iter().zip(&v) {
                let tol = 8i64 << (2 * d); // truncation compounds per pass
                assert!((a - b).abs() <= tol, "dim {d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn transform_decorrelates_smooth_ramp() {
        // A linear ramp should concentrate energy in low-sequency coeffs.
        let mut v: Vec<i64> = (0..4).map(|i| (i as i64) * 1000).collect();
        fwd_lift(&mut v, 1);
        // DC coefficient dominates; highest-frequency is small.
        assert!(v[0].abs() > v[3].abs());
    }

    #[test]
    fn perm_is_a_permutation() {
        for &d in &[1usize, 2, 3] {
            let p = sequency_perm(d);
            let n = 1usize << (2 * d);
            assert_eq!(p.len(), n);
            let mut seen = vec![false; n];
            for &i in p {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn perm_starts_with_dc() {
        assert_eq!(sequency_perm(1)[0], 0);
        assert_eq!(sequency_perm(2)[0], 0);
        assert_eq!(sequency_perm(3)[0], 0);
        // 2D: next two are the two sequency-1 coefficients (1,0) and (0,1).
        let p2 = sequency_perm(2);
        assert_eq!(&p2[1..3], &[1, 4]);
    }

    #[test]
    fn lift_bounded_growth() {
        // Values below 2^60 must not wrap through the 3-D transform (the
        // codec reserves 2 headroom bits; verify a safety margin).
        let mut v = vec![(1i64 << 60) - 1; 64];
        for (i, x) in v.iter_mut().enumerate() {
            if i % 2 == 0 {
                *x = -*x;
            }
        }
        let orig = v.clone();
        fwd_xform(&mut v, 3);
        inv_xform(&mut v, 3);
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() <= 8 << 6, "{a} vs {b}");
        }
    }
}
