//! Scalar reference kernels: the original bit-at-a-time implementations
//! of the bitstream, Huffman decoder, LZSS coder, and ZFP plane coder.
//!
//! The production kernels in [`crate::bitstream`], [`crate::lossless`],
//! and [`crate::zfp`] were rewritten as word-level loops for throughput;
//! the byte formats they produce are frozen, and this module preserves
//! the slow-but-obviously-correct originals as the oracle for the
//! differential test suite (`tests/kernel_equivalence.rs`): fast and
//! reference kernels must produce byte-identical streams and identical
//! decodes on random and dataset-derived inputs.
//!
//! Nothing here is part of the supported API; the module is public only
//! so integration tests can reach it.

use crate::error::{DecodeError, DecodeResult};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Bitstream (scalar): one bit per iteration, exactly the original code.
// ---------------------------------------------------------------------------

/// Append-only bit writer, scalar reference (one bit per push).
#[derive(Debug, Default, Clone)]
pub struct RefBitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0..8; 0 = none).
    bit_pos: u32,
}

impl RefBitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit (the LSB of `bit`).
    #[inline]
    pub fn write_bit(&mut self, bit: u64) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit & 1 != 0 {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << self.bit_pos;
            }
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Writes the low `n` bits of `value`, LSB first. `n` must be <= 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in 0..n {
            self.write_bit((value >> i) & 1);
        }
    }

    /// Total number of bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finishes the stream, zero-padding the last byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bit reader over a byte slice, scalar reference (one bit per read).
#[derive(Debug, Clone)]
pub struct RefBitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> RefBitReader<'a> {
    /// Creates a reader positioned at the first bit.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit; returns 0 past the end of the stream.
    #[inline]
    pub fn read_bit(&mut self) -> u64 {
        let byte = self.pos / 8;
        let bit = self.pos % 8;
        self.pos += 1;
        self.bytes.get(byte).map_or(0, |b| ((b >> bit) & 1) as u64)
    }

    /// Reads `n` bits (LSB first), zero-extended.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for i in 0..n {
            v |= self.read_bit() << i;
        }
        v
    }

    /// Absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

// ---------------------------------------------------------------------------
// Huffman (scalar decode): per-bit canonical first_code walk.
// ---------------------------------------------------------------------------

/// Maximum admitted code length (mirrors `lossless::huffman`).
const MAX_CODE_LEN: u32 = 48;

use crate::lossless::varint::{decode_uvarint, encode_uvarint};

/// Canonical code table: for each symbol its (code, length), with codes
/// assigned in (length, symbol) order.
fn canonical_codes(lengths: &HashMap<u64, u32>) -> Vec<(u64, u64, u32)> {
    let mut entries: Vec<(u64, u32)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
    entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut out = Vec::with_capacity(entries.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for (sym, len) in entries {
        code <<= len - prev_len;
        out.push((sym, code, len));
        code += 1;
        prev_len = len;
    }
    out
}

/// Scalar reference decoder for streams produced by
/// [`crate::lossless::huffman_encode`]: walks the canonical first_code
/// table one bit at a time.
pub fn huffman_decode_ref(data: &[u8]) -> DecodeResult<Vec<u64>> {
    const TRUNC: DecodeError = DecodeError::Truncated {
        what: "huffman header",
    };
    let mut pos = 0;
    let nsyms = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
    if nsyms > data.len() / 2 {
        return Err(DecodeError::Corrupt {
            what: "huffman symbol count exceeds stream",
        });
    }
    let mut lengths: HashMap<u64, u32> = HashMap::with_capacity(nsyms);
    for _ in 0..nsyms {
        let sym = decode_uvarint(data, &mut pos).ok_or(TRUNC)?;
        let len = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as u32;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(DecodeError::Corrupt {
                what: "huffman code length out of range",
            });
        }
        lengths.insert(sym, len);
    }
    let count = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
    let payload_len = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
    let payload = data
        .get(pos..pos.saturating_add(payload_len))
        .ok_or(DecodeError::Truncated {
            what: "huffman payload",
        })?;

    if count == 0 {
        return Ok(Vec::new());
    }
    if nsyms == 0 {
        return Err(DecodeError::Corrupt {
            what: "huffman symbols without a code table",
        });
    }
    if count > payload.len().saturating_mul(8) {
        return Err(DecodeError::Corrupt {
            what: "huffman symbol count exceeds payload bits",
        });
    }

    let table = canonical_codes(&lengths);
    let max_len = table
        .iter()
        .map(|&(_, _, l)| l)
        .max()
        .ok_or(DecodeError::Corrupt {
            what: "huffman empty code table",
        })?;
    let mut first_code = vec![0u64; (max_len + 2) as usize];
    let mut first_index = vec![0usize; (max_len + 2) as usize];
    let mut counts = vec![0usize; (max_len + 2) as usize];
    for &(_, _, l) in &table {
        // lint:allow(no-index): l <= max_len by construction; tables sized max_len + 2
        counts[l as usize] += 1;
    }
    {
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len {
            let li = l as usize;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            first_code[li] = code;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            first_index[li] = index;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            code = (code + counts[li] as u64) << 1;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            index += counts[li];
        }
    }
    let symbols_in_order: Vec<u64> = table.iter().map(|&(s, _, _)| s).collect();

    let mut reader = RefBitReader::new(payload);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            code = (code << 1) | reader.read_bit();
            len += 1;
            if len > max_len {
                return Err(DecodeError::Corrupt {
                    what: "huffman code exceeds max length",
                });
            }
            let l = len as usize;
            // lint:allow(no-index): l <= max_len and the tables were sized max_len + 2 above
            let (cnt, fc, fi) = (counts[l], first_code[l], first_index[l]);
            if cnt > 0 && code >= fc {
                let offset = (code - fc) as usize;
                if offset < cnt {
                    let sym = symbols_in_order
                        .get(fi + offset)
                        .ok_or(DecodeError::Corrupt {
                            what: "huffman canonical table overrun",
                        })?;
                    out.push(*sym);
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// Scalar reference Huffman code-length builder: the original
/// `HashMap`-based heap construction, bit-for-bit the pre-rewrite code.
fn code_lengths_ref(freqs: &HashMap<u64, u64>) -> HashMap<u64, u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: usize,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u64),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = HashMap::new();
    if freqs.is_empty() {
        return lengths;
    }
    if freqs.len() == 1 {
        if let Some(&s) = freqs.keys().next() {
            lengths.insert(s, 1);
        }
        return lengths;
    }

    let mut scale = 0u32;
    loop {
        let mut heap: std::collections::BinaryHeap<Node> = std::collections::BinaryHeap::new();
        let mut id = 0;
        let mut syms: Vec<(&u64, &u64)> = freqs.iter().collect();
        syms.sort(); // determinism across HashMap orderings
        for (&s, &w) in syms {
            heap.push(Node {
                weight: (w >> scale).max(1),
                id,
                kind: NodeKind::Leaf(s),
            });
            id += 1;
        }
        while heap.len() > 1 {
            let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
                break;
            };
            heap.push(Node {
                weight: a.weight + b.weight,
                id,
                kind: NodeKind::Internal(Box::new(a), Box::new(b)),
            });
            id += 1;
        }
        let Some(root) = heap.pop() else {
            return lengths;
        };
        lengths.clear();
        let mut max_depth = 0;
        // Iterative DFS to assign depths.
        let mut stack = vec![(&root, 0u32)];
        while let Some((node, depth)) = stack.pop() {
            match &node.kind {
                NodeKind::Leaf(s) => {
                    lengths.insert(*s, depth.max(1));
                    max_depth = max_depth.max(depth);
                }
                NodeKind::Internal(a, b) => {
                    stack.push((a, depth + 1));
                    stack.push((b, depth + 1));
                }
            }
        }
        if max_depth <= MAX_CODE_LEN {
            return lengths;
        }
        scale += 4; // flatten the distribution and retry
    }
}

/// Scalar reference encoder: `HashMap` frequency counting and per-bit
/// MSB-first code emission through [`RefBitWriter`]. The production
/// encoder must reproduce these bytes exactly.
pub fn huffman_encode_ref(symbols: &[u64]) -> Vec<u8> {
    let mut freqs: HashMap<u64, u64> = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    let lengths = code_lengths_ref(&freqs);
    let table = canonical_codes(&lengths);
    let codemap: HashMap<u64, (u64, u32)> = table.iter().map(|&(s, c, l)| (s, (c, l))).collect();

    let mut out = Vec::new();
    encode_uvarint(table.len() as u64, &mut out);
    for &(sym, _, len) in &table {
        encode_uvarint(sym, &mut out);
        encode_uvarint(len as u64, &mut out);
    }
    encode_uvarint(symbols.len() as u64, &mut out);

    let mut bits = RefBitWriter::new();
    for s in symbols {
        // Every input symbol was counted into `freqs`, so it has a code.
        let Some(&(code, len)) = codemap.get(s) else {
            debug_assert!(false, "symbol missing from code table");
            continue;
        };
        // Emit MSB-first so canonical decoding can walk bit by bit.
        for i in (0..len).rev() {
            bits.write_bit((code >> i) & 1);
        }
    }
    let payload = bits.into_bytes();
    encode_uvarint(payload.len() as u64, &mut out);
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// LZSS (scalar): byte-at-a-time match comparison and copy loops.
// ---------------------------------------------------------------------------

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Scalar reference for [`crate::lossless::lzss_compress`].
pub fn lzss_compress_ref(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];

    let mut i = 0;
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u32;

    macro_rules! bump_flags {
        () => {
            flag_bit += 1;
            if flag_bit == 8 {
                flag_bit = 0;
                flags_pos = out.len();
                out.push(0);
            }
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            out[flags_pos] |= 1 << flag_bit;
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            out.push(data[i]);
            i += 1;
        }
        bump_flags!();
    }
    out
}

/// Scalar reference for [`crate::lossless::lzss_decompress`]: copies
/// matches one byte at a time.
pub fn lzss_decompress_ref(data: &[u8]) -> DecodeResult<Vec<u8>> {
    let header: [u8; 4] =
        data.get(..4)
            .and_then(|s| s.try_into().ok())
            .ok_or(DecodeError::Truncated {
                what: "lzss length header",
            })?;
    let n = u32::from_le_bytes(header) as usize;
    let cap = n.min(data.len().saturating_mul(MAX_MATCH + 1));
    let mut out = Vec::with_capacity(cap);
    let mut pos = 4;
    let mut flags = 0u8;
    let mut flag_bit = 8u32;
    while out.len() < n {
        if flag_bit == 8 {
            flags = *data.get(pos).ok_or(DecodeError::Truncated {
                what: "lzss flag byte",
            })?;
            pos += 1;
            flag_bit = 0;
        }
        if flags & (1 << flag_bit) != 0 {
            let (dist, len) = match data.get(pos..pos.saturating_add(3)) {
                Some(&[d0, d1, l]) => (
                    u16::from_le_bytes([d0, d1]) as usize,
                    l as usize + MIN_MATCH,
                ),
                _ => {
                    return Err(DecodeError::Truncated {
                        what: "lzss match token",
                    })
                }
            };
            pos += 3;
            if dist < 1 || dist > out.len() {
                return Err(DecodeError::Corrupt {
                    what: "lzss match offset out of range",
                });
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = *out.get(start + k).ok_or(DecodeError::Corrupt {
                    what: "lzss match copy",
                })?;
                out.push(b);
            }
        } else {
            out.push(*data.get(pos).ok_or(DecodeError::Truncated {
                what: "lzss literal",
            })?);
            pos += 1;
        }
        flag_bit += 1;
    }
    if out.len() != n {
        return Err(DecodeError::Corrupt {
            what: "lzss decoded length mismatch",
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// ZFP plane coder (scalar): per-coefficient plane gather/scatter.
// ---------------------------------------------------------------------------

use crate::bitstream::{BitReader, BitWriter};

const INT_PREC: u32 = 64;

/// Length of the prefix of coefficients holding any set bit at plane `k`
/// or above.
fn significant_prefix(uints: &[u64], k: u32) -> usize {
    let mut n = 0;
    for (i, &u) in uints.iter().enumerate() {
        if u >> k != 0 {
            n = i + 1;
        }
    }
    n
}

/// Scalar reference for ZFP's embedded plane encoder
/// (`zfp::codec::encode_ints`): gathers each bit plane coefficient by
/// coefficient.
pub fn encode_ints_ref(uints: &[u64], maxprec: u32, out: &mut BitWriter) {
    let size = uints.len();
    let kmin = INT_PREC.saturating_sub(maxprec);
    let mut n = 0usize;
    for k in (kmin..INT_PREC).rev() {
        let mut x: u64 = 0;
        for (i, &u) in uints.iter().enumerate() {
            x |= ((u >> k) & 1) << i;
        }
        out.write_bits(x, n as u32);
        x = if n >= 64 { 0 } else { x >> n };
        let mut m = n;
        while m < size {
            let any = x != 0;
            out.write_bit(any as u64);
            if !any {
                break;
            }
            loop {
                if m == size - 1 {
                    m = size;
                    break;
                }
                let bit = x & 1;
                x >>= 1;
                m += 1;
                out.write_bit(bit);
                if bit == 1 {
                    break;
                }
            }
        }
        n = significant_prefix(uints, k);
    }
}

/// Scalar reference for ZFP's embedded plane decoder
/// (`zfp::codec::decode_ints`).
pub fn decode_ints_ref(uints: &mut [u64], maxprec: u32, input: &mut BitReader<'_>) {
    let size = uints.len();
    uints.fill(0);
    let kmin = INT_PREC.saturating_sub(maxprec);
    let mut n = 0usize;
    for k in (kmin..INT_PREC).rev() {
        let mut x = input.read_bits(n as u32);
        let mut m = n;
        while m < size {
            if input.read_bit() == 0 {
                break;
            }
            loop {
                if m == size - 1 {
                    x |= 1 << m;
                    m = size;
                    break;
                }
                let bit = input.read_bit();
                if bit == 1 {
                    x |= 1 << m;
                    m += 1;
                    break;
                }
                m += 1;
            }
        }
        for i in 0..size {
            // lint:allow(no-index): i < size = uints.len()
            uints[i] |= ((x >> i) & 1) << k;
        }
        n = significant_prefix(uints, k);
    }
}
