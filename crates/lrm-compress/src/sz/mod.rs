//! SZ-like prediction-based lossy compressor.
//!
//! Reproduces the SZ 1.4 pipeline (Di & Cappello, IPDPS 2016):
//!
//! 1. **Prediction** — each point is predicted by the Lorenzo predictor
//!    over already-reconstructed neighbors (so encoder and decoder stay in
//!    lock-step).
//! 2. **Linear-scaling quantization** — the prediction error is quantized
//!    to an `m`-bit code (default `m = 16`); a hit encodes the error as a
//!    bin index, guaranteeing the bound.
//! 3. **Binary representation analysis** — prediction misses store the
//!    value with exactly enough mantissa bits to honor the bound.
//! 4. **Entropy stages** — codes are Huffman-encoded and the result passes
//!    through an LZSS dictionary stage.
//!
//! Three bound modes are provided:
//!
//! * [`SzErrorBound::Abs`] — uniform absolute bound.
//! * [`SzErrorBound::BlockRel`] — SZ 1.4.11's **block-based point-wise
//!   relative** mode, the one the paper's evaluation uses (rel `1e-5` for
//!   originals, `1e-3` for deltas): the scan order is cut into blocks of
//!   [`BLOCK_LEN`] values and each block gets an absolute bound
//!   `2^⌊log2(rel · max|block|)⌋ ≤ rel · max|block|`. All-zero blocks are
//!   stored as a flag and reproduce **exactly** — important for sparse
//!   fields like the paper's *Fish*. This is how SZ keeps *deltas* cheap:
//!   blocks near the base plane have tiny magnitudes, hence tiny bounds,
//!   but blocks of small values embedded in large-scale structure are not
//!   penalized point by point.
//! * [`SzErrorBound::PointwiseRel`] — a *strict* per-point relative bound
//!   via logarithmic preprocessing (`log2 |v|` compressed under an
//!   absolute bound, signs and exact zeros on the side), as later SZ
//!   versions offer.

pub mod predictor;

use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};
use crate::lossless::varint::{decode_uvarint, encode_uvarint};
use crate::lossless::{huffman_encode, pipeline_compress, pipeline_decompress, HuffmanDecoder};
use crate::{Codec, Shape};
use predictor::{lorenzo_predict, lorenzo_predict_interior};

/// Scan-order block length for [`SzErrorBound::BlockRel`].
pub const BLOCK_LEN: usize = 256;

/// Sentinel exponent marking an all-zero block.
const ZERO_BLOCK: i16 = i16::MIN;

/// Error-bound mode for [`Sz`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SzErrorBound {
    /// Absolute bound: `|v' - v| <= e` for every point.
    Abs(f64),
    /// Block-based point-wise relative bound (SZ 1.4.11 semantics):
    /// `|v' - v| <= rel * max|block|` for every point, with exact
    /// reproduction of all-zero blocks.
    BlockRel(f64),
    /// Strict point-wise relative bound: `|v' - v| <= rel * |v|` for
    /// every point (exact zeros reproduced exactly).
    PointwiseRel(f64),
}

/// SZ-like codec; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sz {
    bound: SzErrorBound,
    quant_bits: u32,
}

impl Sz {
    /// Codec with an absolute error bound `e > 0`.
    pub fn absolute(e: f64) -> Self {
        assert!(e > 0.0 && e.is_finite(), "sz: bound must be positive");
        Self {
            bound: SzErrorBound::Abs(e),
            quant_bits: 16,
        }
    }

    /// Codec with SZ 1.4.11's block-based point-wise relative bound (the
    /// paper's mode; e.g. `1e-5`).
    pub fn block_rel(rel: f64) -> Self {
        assert!(rel > 0.0 && rel.is_finite(), "sz: bound must be positive");
        Self {
            bound: SzErrorBound::BlockRel(rel),
            quant_bits: 16,
        }
    }

    /// Codec with a strict per-point relative bound.
    pub fn pointwise_rel(rel: f64) -> Self {
        assert!(rel > 0.0 && rel.is_finite(), "sz: bound must be positive");
        Self {
            bound: SzErrorBound::PointwiseRel(rel),
            quant_bits: 16,
        }
    }

    /// Overrides the quantization-code width `m` (4..=30 bits,
    /// default 16). Larger widths trade entropy-coding efficiency for
    /// fewer prediction misses.
    pub fn with_quant_bits(mut self, m: u32) -> Self {
        assert!((4..=30).contains(&m), "sz: quant bits out of range");
        self.quant_bits = m;
        self
    }

    /// The configured error bound.
    pub fn bound(&self) -> SzErrorBound {
        self.bound
    }
}

/// Per-point bound source shared by encoder and decoder.
enum Bounds {
    Uniform(f64),
    /// Power-of-two bound exponents per scan-order block; `ZERO_BLOCK`
    /// marks an all-zero block.
    PerBlock(Vec<i16>),
}

impl Bounds {
    /// Bound for point `i`; `None` means "inside an all-zero block".
    #[inline]
    fn at(&self, i: usize) -> Option<f64> {
        match self {
            Bounds::Uniform(e) => Some(*e),
            Bounds::PerBlock(exps) => {
                // lint:allow(no-index): decoder validates the exponent-table
                // length against the shape before constructing PerBlock
                let e = exps[i / BLOCK_LEN];
                if e == ZERO_BLOCK {
                    None
                } else {
                    Some(exp2i(e))
                }
            }
        }
    }
}

/// Sequential-scan view of [`Bounds`]: the scan order visits indices in
/// increasing order, so the block bound is resolved once per [`BLOCK_LEN`]
/// run instead of per point (a divide, a match, and an `exp2` each time).
struct BoundCursor<'a> {
    bounds: &'a Bounds,
    cur: Option<f64>,
    /// `⌊log2 e⌋` for the current bound, cached because the outlier path
    /// needs it per miss and `f64::log2` is a libm call. For per-block
    /// bounds `e = 2^k` so this is the stored exponent itself.
    exp: i32,
    /// First index at which `cur` must be refreshed.
    until: usize,
}

impl<'a> BoundCursor<'a> {
    fn new(bounds: &'a Bounds) -> Self {
        Self {
            bounds,
            cur: None,
            exp: 0,
            until: 0,
        }
    }

    /// Bound for point `i`; `None` means "inside an all-zero block".
    /// Callers must present indices in non-decreasing order.
    #[inline]
    fn at(&mut self, i: usize) -> Option<f64> {
        if i >= self.until {
            self.cur = self.bounds.at(i);
            self.until = match self.bounds {
                Bounds::Uniform(_) => usize::MAX,
                Bounds::PerBlock(_) => (i / BLOCK_LEN + 1) * BLOCK_LEN,
            };
            self.exp = match (self.bounds, self.cur) {
                (Bounds::Uniform(e), _) => e.log2().floor() as i32,
                // exp2i(k) = 2^k exactly, so log2().floor() would
                // reproduce k; skip the libm round-trip.
                // lint:allow(no-index): same index Bounds::at just used
                (Bounds::PerBlock(exps), Some(_)) => exps[i / BLOCK_LEN] as i32,
                (Bounds::PerBlock(_), None) => 0, // zero block: never read
            };
        }
        self.cur
    }

    /// `⌊log2 e⌋` for the bound last returned by [`Self::at`]; only
    /// meaningful while that result was `Some`.
    #[inline]
    fn bound_exp(&self) -> i32 {
        self.exp
    }

    /// Exclusive end of the run over which the last [`Self::at`] result
    /// stays valid; lets the scan skip all-zero blocks wholesale.
    #[inline]
    fn run_end(&self) -> usize {
        self.until
    }
}

/// `2^e` for clamped exponents (always normal, never zero).
#[inline]
fn exp2i(e: i16) -> f64 {
    f64::from_bits(((e as i64 + 1023) as u64) << 52)
}

/// Per-block bound exponents for BlockRel mode.
fn block_exponents(data: &[f64], rel: f64) -> Vec<i16> {
    let nblocks = data.len().div_ceil(BLOCK_LEN);
    let mut exps = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let lo = b * BLOCK_LEN;
        let hi = (lo + BLOCK_LEN).min(data.len());
        let mut maxv = 0.0f64;
        for &v in &data[lo..hi] {
            if v.is_finite() {
                maxv = maxv.max(v.abs());
            } else {
                // Non-finite values force the outlier path; give the block
                // a generous bound so neighbors stay cheap.
                maxv = maxv.max(1.0);
            }
        }
        if maxv == 0.0 {
            exps.push(ZERO_BLOCK);
        } else {
            let e = (rel * maxv).log2().floor().clamp(-1020.0, 1020.0) as i16;
            exps.push(e);
        }
    }
    exps
}

/// Number of mantissa bits needed to store `v` with absolute error <= e/2,
/// given `ee = ⌊log2 e⌋` (cached per block by [`BoundCursor`]).
fn mantissa_bits_needed(v: f64, ee: i32) -> u32 {
    let bits = v.abs().to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    if raw_exp == 0x7ff || raw_exp == 0 {
        return 52; // non-finite or subnormal: store everything
    }
    let ev = raw_exp - 1023; // v in [2^ev, 2^(ev+1))
    (ev - ee + 1).clamp(0, 52) as u32
}

/// Core compressor over a shaped field with per-point bounds.
fn core_compress(data: &[f64], shape: Shape, bounds: &Bounds, quant_bits: u32) -> Vec<u8> {
    let radius: i64 = 1i64 << (quant_bits - 1);
    let mut codes: Vec<u64> = Vec::with_capacity(data.len());
    let mut outliers = BitWriter::new();
    let mut recon = vec![0.0f64; data.len()];
    let mut bounds = BoundCursor::new(bounds);

    let [nx, ny, nz] = shape.dims;
    let ndims = shape.ndims();
    let sxy = nx * ny;
    let xmin = if ndims == 1 { 2 } else { 1 };
    for z in 0..nz {
        for y in 0..ny {
            // Rows with a full complement of preceding neighbors take the
            // interior predictor (bit-identical, incremental indices).
            let row_interior = match ndims {
                1 => true,
                2 => y >= 1,
                _ => y >= 1 && z >= 1,
            };
            let base = shape.idx(0, y, z);
            let mut x = 0;
            while x < nx {
                let i = base + x;
                let Some(e) = bounds.at(i) else {
                    // All-zero block: nothing stored, recon stays 0 — skip
                    // the rest of the run (clamped to this row) wholesale.
                    x = bounds.run_end().min(base + nx) - base;
                    continue;
                };
                let v = data[i];
                let pred = if row_interior && x >= xmin {
                    lorenzo_predict_interior(&recon, i, nx, sxy, ndims)
                } else {
                    lorenzo_predict(&recon, shape, x, y, z)
                };
                let q = if v.is_finite() && pred.is_finite() {
                    ((v - pred) / (2.0 * e)).round()
                } else {
                    f64::INFINITY
                };
                let hit = q.is_finite() && q.abs() < (radius - 1) as f64 && {
                    let r = pred + q * 2.0 * e;
                    (r - v).abs() <= e
                };
                if hit {
                    let qi = q as i64;
                    codes.push((qi + radius) as u64);
                    recon[i] = pred + qi as f64 * 2.0 * e;
                } else {
                    // Prediction miss: binary-representation analysis.
                    codes.push(0);
                    let vb = v.to_bits();
                    let sign = vb >> 63;
                    let raw_exp = (vb >> 52) & 0x7ff;
                    let mb = mantissa_bits_needed(v, bounds.bound_exp());
                    outliers.write_bit(sign);
                    outliers.write_bits(raw_exp, 11);
                    // Store the TOP mb mantissa bits.
                    let mantissa = vb & 0xf_ffff_ffff_ffff;
                    outliers.write_bits(mantissa >> (52 - mb), mb);
                    let stored =
                        (sign << 63) | (raw_exp << 52) | ((mantissa >> (52 - mb)) << (52 - mb));
                    let sv = f64::from_bits(stored);
                    recon[i] = if sv.is_finite() { sv } else { 0.0 };
                }
                x += 1;
            }
        }
    }

    // Entropy stages: Huffman over codes, then LZSS over everything.
    let huff = huffman_encode(&codes);
    let outlier_bytes = outliers.into_bytes();
    let mut body = Vec::with_capacity(huff.len() + outlier_bytes.len() + 32);
    encode_uvarint(huff.len() as u64, &mut body);
    body.extend_from_slice(&huff);
    encode_uvarint(outlier_bytes.len() as u64, &mut body);
    body.extend_from_slice(&outlier_bytes);
    pipeline_compress(&body)
}

/// Inverse of [`core_compress`].
fn core_decompress(
    bytes: &[u8],
    shape: Shape,
    bounds: &Bounds,
    quant_bits: u32,
) -> DecodeResult<Vec<f64>> {
    let radius: i64 = 1i64 << (quant_bits - 1);
    let body = pipeline_decompress(bytes)?;
    let mut pos = 0usize;
    let hlen = decode_uvarint(&body, &mut pos).ok_or(DecodeError::Truncated {
        what: "sz huffman length",
    })? as usize;
    let huff = body
        .get(pos..pos.saturating_add(hlen))
        .ok_or(DecodeError::Truncated {
            what: "sz huffman block",
        })?;
    let mut codes = HuffmanDecoder::new(huff)?;
    pos += hlen;
    let olen = decode_uvarint(&body, &mut pos).ok_or(DecodeError::Truncated {
        what: "sz outlier length",
    })? as usize;
    let obytes = body
        .get(pos..pos.saturating_add(olen))
        .ok_or(DecodeError::Truncated {
            what: "sz outlier block",
        })?;
    let mut outliers = BitReader::new(obytes);

    let mut recon = vec![0.0f64; shape.len()];
    // The returned field differs from the reconstruction buffer only at
    // non-finite outliers (prediction must see 0.0 there); those rare
    // positions are patched in after the scan instead of maintaining a
    // second full-size output array.
    let mut patches: Vec<(usize, f64)> = Vec::new();
    let mut bounds = BoundCursor::new(bounds);
    let [nx, ny, nz] = shape.dims;
    let ndims = shape.ndims();
    let sxy = nx * ny;
    let xmin = if ndims == 1 { 2 } else { 1 };
    for z in 0..nz {
        for y in 0..ny {
            // Rows with a full complement of preceding neighbors take the
            // interior predictor (bit-identical, incremental indices).
            let row_interior = match ndims {
                1 => true,
                2 => y >= 1,
                _ => y >= 1 && z >= 1,
            };
            let base = shape.idx(0, y, z);
            let mut x = 0;
            while x < nx {
                let i = base + x;
                let Some(e) = bounds.at(i) else {
                    // All-zero block: skip the run (clamped to this row).
                    x = bounds.run_end().min(base + nx) - base;
                    continue;
                };
                if codes.remaining() == 0 {
                    return Err(DecodeError::Corrupt {
                        what: "sz quantization codes exhausted",
                    });
                }
                let code = codes.next_symbol()?;
                if code != 0 {
                    let q = (code as i64).wrapping_sub(radius);
                    let pred = if row_interior && x >= xmin {
                        lorenzo_predict_interior(&recon, i, nx, sxy, ndims)
                    } else {
                        lorenzo_predict(&recon, shape, x, y, z)
                    };
                    let v = pred + q as f64 * 2.0 * e;
                    // lint:allow(no-index): i = shape.idx(x, y, z) < shape.len() = recon.len()
                    recon[i] = v;
                } else {
                    let sign = outliers.read_bit();
                    let raw_exp = outliers.read_bits(11);
                    // Recompute mb from the exponent exactly as the encoder.
                    let mb = if raw_exp == 0x7ff || raw_exp == 0 {
                        52
                    } else {
                        let ev = raw_exp as i32 - 1023;
                        let ee = bounds.bound_exp();
                        (ev - ee + 1).clamp(0, 52) as u32
                    };
                    let top = outliers.read_bits(mb);
                    let vb = (sign << 63) | (raw_exp << 52) | (top << (52 - mb));
                    let v = f64::from_bits(vb);
                    if v.is_finite() {
                        // lint:allow(no-index): i = shape.idx(x, y, z) < shape.len() = recon.len()
                        recon[i] = v;
                    } else {
                        patches.push((i, v));
                    }
                }
                x += 1;
            }
        }
    }
    for &(i, v) in &patches {
        // lint:allow(no-index): i was produced by the scan loop above
        recon[i] = v;
    }
    Ok(recon)
}

/// Header tags for the bound modes.
const TAG_ABS: u8 = 0;
const TAG_PWREL: u8 = 1;
const TAG_BLOCKREL: u8 = 2;

impl Codec for Sz {
    fn name(&self) -> &'static str {
        "SZ"
    }

    fn compress(&self, data: &[f64], shape: Shape) -> Vec<u8> {
        assert_eq!(data.len(), shape.len(), "sz: data/shape mismatch");
        let mut out = Vec::new();
        match self.bound {
            SzErrorBound::Abs(e) => {
                out.push(TAG_ABS);
                out.extend_from_slice(&e.to_le_bytes());
                out.extend_from_slice(&core_compress(
                    data,
                    shape,
                    &Bounds::Uniform(e),
                    self.quant_bits,
                ));
            }
            SzErrorBound::BlockRel(rel) => {
                out.push(TAG_BLOCKREL);
                out.extend_from_slice(&rel.to_le_bytes());
                let exps = block_exponents(data, rel);
                // Exponent table, LZSS-compressed (it is highly regular).
                let mut raw = Vec::with_capacity(exps.len() * 2);
                for &e in &exps {
                    raw.extend_from_slice(&e.to_le_bytes());
                }
                let table = pipeline_compress(&raw);
                encode_uvarint(table.len() as u64, &mut out);
                out.extend_from_slice(&table);
                out.extend_from_slice(&core_compress(
                    data,
                    shape,
                    &Bounds::PerBlock(exps),
                    self.quant_bits,
                ));
            }
            SzErrorBound::PointwiseRel(rel) => {
                out.push(TAG_PWREL);
                out.extend_from_slice(&rel.to_le_bytes());
                // Log transform: t = log2|v|; zeros and signs on the side.
                let mut signs = BitWriter::new();
                let mut zeros = BitWriter::new();
                let mut logs = Vec::with_capacity(data.len());
                for &v in data {
                    zeros.write_bit((v == 0.0 || !v.is_finite()) as u64);
                    signs.write_bit((v.is_sign_negative()) as u64);
                    logs.push(if v == 0.0 || !v.is_finite() {
                        0.0
                    } else {
                        v.abs().log2()
                    });
                }
                let e_t = (1.0 + rel).log2() / 2.0;
                let body = core_compress(&logs, shape, &Bounds::Uniform(e_t), self.quant_bits);
                let sb = pipeline_compress(&signs.into_bytes());
                let zb = pipeline_compress(&zeros.into_bytes());
                encode_uvarint(sb.len() as u64, &mut out);
                out.extend_from_slice(&sb);
                encode_uvarint(zb.len() as u64, &mut out);
                out.extend_from_slice(&zb);
                out.extend_from_slice(&body);
            }
        }
        out
    }

    fn decompress(&self, bytes: &[u8], shape: Shape) -> DecodeResult<Vec<f64>> {
        let tag = *bytes.first().ok_or(DecodeError::Truncated {
            what: "sz mode tag",
        })?;
        let phead: [u8; 8] =
            bytes
                .get(1..9)
                .and_then(|s| s.try_into().ok())
                .ok_or(DecodeError::Truncated {
                    what: "sz bound parameter",
                })?;
        let param = f64::from_le_bytes(phead);
        match tag {
            TAG_ABS => {
                let body = bytes
                    .get(9..)
                    .ok_or(DecodeError::Truncated { what: "sz body" })?;
                core_decompress(body, shape, &Bounds::Uniform(param), self.quant_bits)
            }
            TAG_BLOCKREL => {
                let mut pos = 9usize;
                let tlen = decode_uvarint(bytes, &mut pos).ok_or(DecodeError::Truncated {
                    what: "sz exponent-table length",
                })? as usize;
                let table =
                    bytes
                        .get(pos..pos.saturating_add(tlen))
                        .ok_or(DecodeError::Truncated {
                            what: "sz exponent table",
                        })?;
                let raw = pipeline_decompress(table)?;
                pos += tlen;
                let exps: Vec<i16> = raw
                    .chunks_exact(2)
                    // lint:allow(no-index): chunks_exact(2) yields exactly 2-byte slices
                    .map(|c| i16::from_le_bytes([c[0], c[1]]))
                    .collect();
                // Bounds::at indexes this table blindly; reject any stream
                // whose table does not cover every scan-order block.
                if exps.len() != shape.len().div_ceil(BLOCK_LEN) {
                    return Err(DecodeError::Corrupt {
                        what: "sz exponent table size",
                    });
                }
                let body = bytes
                    .get(pos..)
                    .ok_or(DecodeError::Truncated { what: "sz body" })?;
                core_decompress(body, shape, &Bounds::PerBlock(exps), self.quant_bits)
            }
            TAG_PWREL => {
                let rel = param;
                let mut pos = 9usize;
                let sl = decode_uvarint(bytes, &mut pos).ok_or(DecodeError::Truncated {
                    what: "sz sign-stream length",
                })? as usize;
                let sb = bytes
                    .get(pos..pos.saturating_add(sl))
                    .ok_or(DecodeError::Truncated {
                        what: "sz sign stream",
                    })?;
                let signs_bytes = pipeline_decompress(sb)?;
                pos += sl;
                let zl = decode_uvarint(bytes, &mut pos).ok_or(DecodeError::Truncated {
                    what: "sz zero-stream length",
                })? as usize;
                let zb = bytes
                    .get(pos..pos.saturating_add(zl))
                    .ok_or(DecodeError::Truncated {
                        what: "sz zero stream",
                    })?;
                let zeros_bytes = pipeline_decompress(zb)?;
                pos += zl;
                let e_t = (1.0 + rel).log2() / 2.0;
                let body = bytes
                    .get(pos..)
                    .ok_or(DecodeError::Truncated { what: "sz body" })?;
                let logs = core_decompress(body, shape, &Bounds::Uniform(e_t), self.quant_bits)?;
                let mut signs = BitReader::new(&signs_bytes);
                let mut zeros = BitReader::new(&zeros_bytes);
                Ok(logs
                    .iter()
                    .map(|&t| {
                        let z = zeros.read_bit();
                        let s = signs.read_bit();
                        if z == 1 {
                            0.0
                        } else {
                            let mag = t.exp2();
                            if s == 1 {
                                -mag
                            } else {
                                mag
                            }
                        }
                    })
                    .collect())
            }
            tag => Err(DecodeError::UnknownTag {
                what: "sz mode",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_3d(n: usize) -> (Vec<f64>, Shape) {
        let shape = Shape::d3(n, n, n);
        let mut v = vec![0.0; shape.len()];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    v[shape.idx(x, y, z)] = 300.0
                        + 50.0
                            * ((x as f64 * 0.1).sin()
                                + (y as f64 * 0.13).cos()
                                + (z as f64 * 0.09).sin());
                }
            }
        }
        (v, shape)
    }

    #[test]
    fn abs_bound_is_honored() {
        let (v, shape) = smooth_3d(12);
        for &e in &[1e-1, 1e-3, 1e-6] {
            let sz = Sz::absolute(e);
            let d = sz
                .decompress(&sz.compress(&v, shape), shape)
                .expect("decode");
            for (a, b) in v.iter().zip(&d) {
                assert!((a - b).abs() <= e * 1.000001, "e={e}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn pointwise_rel_bound_is_honored() {
        let (v, shape) = smooth_3d(10);
        for &rel in &[1e-3, 1e-5] {
            let sz = Sz::pointwise_rel(rel);
            let d = sz
                .decompress(&sz.compress(&v, shape), shape)
                .expect("decode");
            for (a, b) in v.iter().zip(&d) {
                assert!(
                    (a - b).abs() <= rel * a.abs() * 1.000001,
                    "rel={rel}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn block_rel_bound_is_honored_blockwise() {
        let (v, shape) = smooth_3d(10);
        for &rel in &[1e-3, 1e-5] {
            let sz = Sz::block_rel(rel);
            let d = sz
                .decompress(&sz.compress(&v, shape), shape)
                .expect("decode");
            // Per-block guarantee: error <= rel * max|block|.
            for (b, chunk) in v.chunks(BLOCK_LEN).enumerate() {
                let maxv = chunk.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
                for (j, &a) in chunk.iter().enumerate() {
                    let got = d[b * BLOCK_LEN + j];
                    assert!(
                        (a - got).abs() <= rel * maxv * 1.000001,
                        "rel={rel}: {a} vs {got} (block max {maxv})"
                    );
                }
            }
        }
    }

    #[test]
    fn block_rel_preserves_all_zero_blocks_exactly() {
        let shape = Shape::d2(64, 16); // 1024 points = 4 blocks
        let mut v = vec![0.0; shape.len()];
        // Only the second block carries data.
        for i in BLOCK_LEN..2 * BLOCK_LEN {
            v[i] = (i as f64 * 0.1).sin() + 3.0;
        }
        let sz = Sz::block_rel(1e-4);
        let d = sz
            .decompress(&sz.compress(&v, shape), shape)
            .expect("decode");
        for i in 0..BLOCK_LEN {
            assert_eq!(d[i], 0.0);
        }
        for i in 2 * BLOCK_LEN..shape.len() {
            assert_eq!(d[i], 0.0);
        }
    }

    #[test]
    fn block_rel_compresses_deltas_better_than_strict_pointwise() {
        // The property the paper's preconditioning relies on: a delta field
        // (small magnitudes, sign changes, smooth structure) is cheap
        // under block-relative bounds.
        let shape = Shape::d3(12, 12, 12);
        let mut delta = vec![0.0; shape.len()];
        for z in 0..12 {
            for y in 0..12 {
                for x in 0..12 {
                    let zf = z as f64 / 11.0 - 0.5;
                    delta[shape.idx(x, y, z)] = zf * 10.0 + 1e-6 * ((x * y) as f64).sin();
                }
            }
        }
        let block = Sz::block_rel(1e-3).compress(&delta, shape).len();
        let strict = Sz::pointwise_rel(1e-3).compress(&delta, shape).len();
        assert!(block < strict, "block {block} vs strict {strict}");
    }

    #[test]
    fn exact_zeros_are_preserved_in_pointwise_mode() {
        // The Fish dataset contains many exact zeros; the strict mode must
        // reproduce them exactly.
        let shape = Shape::d2(10, 10);
        let mut v = vec![0.0; 100];
        for i in (0..100).step_by(3) {
            v[i] = (i as f64 * 0.7).sin() + 2.0;
        }
        let sz = Sz::pointwise_rel(1e-5);
        let d = sz
            .decompress(&sz.compress(&v, shape), shape)
            .expect("decode");
        for (a, b) in v.iter().zip(&d) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            }
        }
    }

    #[test]
    fn negative_values_keep_sign() {
        let shape = Shape::d1(50);
        let v: Vec<f64> = (0..50).map(|i| ((i as f64) - 25.0) * 1.3 - 0.5).collect();
        let sz = Sz::pointwise_rel(1e-4);
        let d = sz
            .decompress(&sz.compress(&v, shape), shape)
            .expect("decode");
        for (a, b) in v.iter().zip(&d) {
            assert_eq!(a.signum(), b.signum(), "{a} vs {b}");
            assert!((a - b).abs() <= 1e-4 * a.abs() * 1.01);
        }
    }

    #[test]
    fn smooth_data_beats_4x_at_1e5() {
        let (v, shape) = smooth_3d(24);
        let sz = Sz::block_rel(1e-5);
        let ratio = sz.ratio(&v, shape);
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn smoother_data_compresses_better() {
        // The premise of the whole paper: smoothness drives SZ ratios.
        let shape = Shape::d1(4096);
        let smooth: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.001).sin()).collect();
        let mut rng = lrm_rng::Rng64::new(2);
        let rough: Vec<f64> = rng.vec_f64(-1.0, 1.0, 4096);
        let sz = Sz::absolute(1e-6);
        assert!(sz.ratio(&smooth, shape) > 2.0 * sz.ratio(&rough, shape));
    }

    #[test]
    fn random_data_roundtrips_within_bound() {
        let mut rng = lrm_rng::Rng64::new(4);
        let shape = Shape::d2(37, 23);
        let v: Vec<f64> = rng.vec_f64(-1e9, 1e9, shape.len());
        let sz = Sz::absolute(0.5);
        let d = sz
            .decompress(&sz.compress(&v, shape), shape)
            .expect("decode");
        for (a, b) in v.iter().zip(&d) {
            assert!((a - b).abs() <= 0.5 * 1.000001, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_field_compresses_extremely() {
        let shape = Shape::d3(16, 16, 16);
        let v = vec![42.0; shape.len()];
        let sz = Sz::absolute(1e-9);
        let c = sz.compress(&v, shape);
        assert!(
            (v.len() * 8) as f64 / c.len() as f64 > 100.0,
            "constant field ratio too low: {}",
            (v.len() * 8) as f64 / c.len() as f64
        );
    }

    #[test]
    fn quant_bits_setting_roundtrips() {
        let (v, shape) = smooth_3d(8);
        for &m in &[8u32, 12, 20] {
            let sz = Sz::absolute(1e-4).with_quant_bits(m);
            let d = sz
                .decompress(&sz.compress(&v, shape), shape)
                .expect("decode");
            for (a, b) in v.iter().zip(&d) {
                assert!((a - b).abs() <= 1e-4 * 1.01, "m={m}");
            }
        }
    }

    #[test]
    fn prop_abs_bound() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = 1 + rng.range_usize(299);
            let vals = rng.vec_f64(-1e6, 1e6, n);
            let shape = Shape::d1(vals.len());
            let sz = Sz::absolute(1e-3);
            let d = sz
                .decompress(&sz.compress(&vals, shape), shape)
                .expect("decode");
            for (a, b) in vals.iter().zip(&d) {
                assert!((a - b).abs() <= 1e-3 * 1.000001);
            }
        }
    }

    #[test]
    fn prop_pointwise_rel_bound() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = 1 + rng.range_usize(199);
            let vals = rng.vec_f64(-1e6, 1e6, n);
            let shape = Shape::d1(vals.len());
            let sz = Sz::pointwise_rel(1e-4);
            let d = sz
                .decompress(&sz.compress(&vals, shape), shape)
                .expect("decode");
            for (a, b) in vals.iter().zip(&d) {
                assert!((a - b).abs() <= 1e-4 * a.abs() * 1.000001);
            }
        }
    }

    #[test]
    fn prop_block_rel_bound() {
        for seed in 0..32u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = 1 + rng.range_usize(599);
            let vals = rng.vec_f64(-1e3, 1e3, n);
            let shape = Shape::d1(vals.len());
            let sz = Sz::block_rel(1e-4);
            let d = sz
                .decompress(&sz.compress(&vals, shape), shape)
                .expect("decode");
            for (b, chunk) in vals.chunks(BLOCK_LEN).enumerate() {
                let maxv = chunk.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
                for (j, &a) in chunk.iter().enumerate() {
                    let got = d[b * BLOCK_LEN + j];
                    assert!((a - got).abs() <= 1e-4 * maxv * 1.000001);
                }
            }
        }
    }
}
