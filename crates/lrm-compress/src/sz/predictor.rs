//! Lorenzo predictors over reconstructed neighborhoods.
//!
//! SZ predicts each value from a polynomial combination of its
//! already-decoded neighbors. The d-dimensional Lorenzo predictor is the
//! inclusion–exclusion sum over the 2^d − 1 preceding corner neighbors;
//! with out-of-domain neighbors treated as zero it degrades gracefully to
//! the (d−1)-dimensional predictor on boundary faces.

use crate::Shape;

/// Lorenzo prediction for position `(x, y, z)` from the reconstruction
/// buffer `recon` (row-major, only positions strictly before the current
/// one in scan order are read).
#[inline]
pub fn lorenzo_predict(recon: &[f64], shape: Shape, x: usize, y: usize, z: usize) -> f64 {
    let g = |dx: usize, dy: usize, dz: usize| -> f64 {
        if x < dx || y < dy || z < dz {
            return 0.0;
        }
        recon[shape.idx(x - dx, y - dy, z - dz)]
    };
    match shape.ndims() {
        // 1-D uses linear extrapolation (SZ's "preceding neighbors" curve
        // fit): exact for linear signals, unlike the order-0 previous-value
        // predictor.
        1 => 2.0 * g(1, 0, 0) - g(2, 0, 0),
        2 => g(1, 0, 0) + g(0, 1, 0) - g(1, 1, 0),
        _ => {
            g(1, 0, 0) + g(0, 1, 0) + g(0, 0, 1) - g(1, 1, 0) - g(1, 0, 1) - g(0, 1, 1) + g(1, 1, 1)
        }
    }
}

/// Interior fast path of [`lorenzo_predict`]: same neighbors, same
/// floating-point evaluation order (so reconstructions are bit-identical),
/// but with the flat index `i` maintained incrementally by the caller
/// instead of seven `shape.idx` recomputations and boundary branches.
///
/// Caller contract: `i == shape.idx(x, y, z)` with `x >= 2` for 1-D
/// fields and `x >= 1, y >= 1` (and `z >= 1` in 3-D) otherwise, so every
/// neighbor index below is in range. `nx` is `dims[0]`, `sxy` is
/// `dims[0] * dims[1]`.
#[inline]
pub fn lorenzo_predict_interior(
    recon: &[f64],
    i: usize,
    nx: usize,
    sxy: usize,
    ndims: usize,
) -> f64 {
    match ndims {
        1 => 2.0 * recon[i - 1] - recon[i - 2],
        2 => recon[i - 1] + recon[i - nx] - recon[i - nx - 1],
        _ => {
            recon[i - 1] + recon[i - nx] + recon[i - sxy]
                - recon[i - nx - 1]
                - recon[i - sxy - 1]
                - recon[i - sxy - nx]
                + recon[i - sxy - nx - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_constant_field_exactly_in_interior() {
        let shape = Shape::d2(4, 4);
        let recon = vec![5.0; 16];
        // Interior: 5 + 5 - 5 = 5.
        assert_eq!(lorenzo_predict(&recon, shape, 2, 2, 0), 5.0);
    }

    #[test]
    fn predicts_linear_field_exactly() {
        // Lorenzo order-1 reproduces any (multi)linear field exactly in the
        // interior: f(x,y) = 3x + 2y + 1.
        let shape = Shape::d2(5, 5);
        let mut recon = vec![0.0; 25];
        for y in 0..5 {
            for x in 0..5 {
                recon[shape.idx(x, y, 0)] = 3.0 * x as f64 + 2.0 * y as f64 + 1.0;
            }
        }
        for y in 1..5 {
            for x in 1..5 {
                let p = lorenzo_predict(&recon, shape, x, y, 0);
                let actual = recon[shape.idx(x, y, 0)];
                assert!((p - actual).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn origin_predicts_zero() {
        let shape = Shape::d3(3, 3, 3);
        let recon = vec![7.0; 27];
        assert_eq!(lorenzo_predict(&recon, shape, 0, 0, 0), 0.0);
    }

    #[test]
    fn boundary_degrades_to_lower_dimension() {
        let shape = Shape::d2(4, 4);
        let mut recon = vec![0.0; 16];
        for x in 0..4 {
            recon[shape.idx(x, 0, 0)] = x as f64 * 10.0;
        }
        // Row 0 behaves like a 1-D predictor: pred(x=2,y=0) = recon[1,0].
        assert_eq!(lorenzo_predict(&recon, shape, 2, 0, 0), 10.0);
    }

    #[test]
    fn interior_fast_path_is_bit_identical_to_general() {
        let mut rng = lrm_rng::Rng64::new(0x10E);
        for shape in [Shape::d1(64), Shape::d2(9, 7), Shape::d3(6, 5, 4)] {
            let recon = rng.vec_f64(-1e9, 1e9, shape.len());
            let [nx, ny, nz] = shape.dims;
            let ndims = shape.ndims();
            let sxy = nx * ny;
            let xmin = if ndims == 1 { 2 } else { 1 };
            for z in (nz > 1) as usize..nz {
                for y in (ny > 1) as usize..ny {
                    for x in xmin..nx {
                        let i = shape.idx(x, y, z);
                        let fast = lorenzo_predict_interior(&recon, i, nx, sxy, ndims);
                        let general = lorenzo_predict(&recon, shape, x, y, z);
                        assert_eq!(fast.to_bits(), general.to_bits(), "{shape:?} ({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn predicts_trilinear_field_exactly_3d() {
        let shape = Shape::d3(4, 4, 4);
        let mut recon = vec![0.0; 64];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    recon[shape.idx(x, y, z)] =
                        1.0 + 2.0 * x as f64 - 3.0 * y as f64 + 0.5 * z as f64;
                }
            }
        }
        for z in 1..4 {
            for y in 1..4 {
                for x in 1..4 {
                    let p = lorenzo_predict(&recon, shape, x, y, z);
                    assert!((p - recon[shape.idx(x, y, z)]).abs() < 1e-12);
                }
            }
        }
    }
}
