//! Canonical Huffman coding over `u64` symbol streams.
//!
//! SZ encodes its quantization factors with Huffman coding; the alphabet is
//! sparse (most codes cluster around the zero-delta bin), so we build the
//! tree only over observed symbols and ship a compact (symbol, code-length)
//! table in the header.

use super::varint::{decode_uvarint, encode_uvarint};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Maximum admitted code length. Frequencies are flattened and the tree is
/// rebuilt if this depth is exceeded (only possible for pathological
/// distributions over huge alphabets).
const MAX_CODE_LEN: u32 = 48;

/// Computes Huffman code lengths for `freqs` (symbol → count) using a
/// standard two-queue/heap construction.
fn code_lengths(freqs: &HashMap<u64, u64>) -> HashMap<u64, u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: usize,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u64),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = HashMap::new();
    if freqs.is_empty() {
        return lengths;
    }
    if freqs.len() == 1 {
        if let Some(&s) = freqs.keys().next() {
            lengths.insert(s, 1);
        }
        return lengths;
    }

    let mut scale = 0u32;
    loop {
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        let mut id = 0;
        let mut syms: Vec<(&u64, &u64)> = freqs.iter().collect();
        syms.sort(); // determinism across HashMap orderings
        for (&s, &w) in syms {
            heap.push(Node {
                weight: (w >> scale).max(1),
                id,
                kind: NodeKind::Leaf(s),
            });
            id += 1;
        }
        while heap.len() > 1 {
            let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
                break;
            };
            heap.push(Node {
                weight: a.weight + b.weight,
                id,
                kind: NodeKind::Internal(Box::new(a), Box::new(b)),
            });
            id += 1;
        }
        let Some(root) = heap.pop() else {
            return lengths;
        };
        lengths.clear();
        let mut max_depth = 0;
        // Iterative DFS to assign depths.
        let mut stack = vec![(&root, 0u32)];
        while let Some((node, depth)) = stack.pop() {
            match &node.kind {
                NodeKind::Leaf(s) => {
                    lengths.insert(*s, depth.max(1));
                    max_depth = max_depth.max(depth);
                }
                NodeKind::Internal(a, b) => {
                    stack.push((a, depth + 1));
                    stack.push((b, depth + 1));
                }
            }
        }
        if max_depth <= MAX_CODE_LEN {
            return lengths;
        }
        scale += 4; // flatten the distribution and retry
    }
}

/// Canonical code table: for each symbol its (code, length), with codes
/// assigned in (length, symbol) order.
fn canonical_codes(lengths: &HashMap<u64, u32>) -> Vec<(u64, u64, u32)> {
    let mut entries: Vec<(u64, u32)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
    entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut out = Vec::with_capacity(entries.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for (sym, len) in entries {
        code <<= len - prev_len;
        out.push((sym, code, len));
        code += 1;
        prev_len = len;
    }
    out
}

/// Encodes `symbols` into a self-describing Huffman stream.
///
/// Layout: `nsyms` uvarint, then `nsyms` × (symbol uvarint, length uvarint),
/// then `count` uvarint, then the bit-packed code stream.
pub fn huffman_encode(symbols: &[u64]) -> Vec<u8> {
    let mut freqs: HashMap<u64, u64> = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    let lengths = code_lengths(&freqs);
    let table = canonical_codes(&lengths);
    let codemap: HashMap<u64, (u64, u32)> = table.iter().map(|&(s, c, l)| (s, (c, l))).collect();

    let mut out = Vec::new();
    encode_uvarint(table.len() as u64, &mut out);
    for &(sym, _, len) in &table {
        encode_uvarint(sym, &mut out);
        encode_uvarint(len as u64, &mut out);
    }
    encode_uvarint(symbols.len() as u64, &mut out);

    let mut bits = BitWriter::new();
    for s in symbols {
        // Every input symbol was counted into `freqs`, so it has a code.
        let Some(&(code, len)) = codemap.get(s) else {
            debug_assert!(false, "symbol missing from code table");
            continue;
        };
        // Emit MSB-first so canonical decoding can walk bit by bit.
        for i in (0..len).rev() {
            bits.write_bit((code >> i) & 1);
        }
    }
    let payload = bits.into_bytes();
    encode_uvarint(payload.len() as u64, &mut out);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a stream produced by [`huffman_encode`]. Returns a
/// [`DecodeError`] on corrupt or truncated input; never panics.
pub fn huffman_decode(data: &[u8]) -> DecodeResult<Vec<u64>> {
    const TRUNC: DecodeError = DecodeError::Truncated {
        what: "huffman header",
    };
    let mut pos = 0;
    let nsyms = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
    // Each table entry occupies at least two bytes (two uvarints), so a
    // count past data.len()/2 is unsatisfiable — reject before allocating.
    if nsyms > data.len() / 2 {
        return Err(DecodeError::Corrupt {
            what: "huffman symbol count exceeds stream",
        });
    }
    let mut lengths: HashMap<u64, u32> = HashMap::with_capacity(nsyms);
    for _ in 0..nsyms {
        let sym = decode_uvarint(data, &mut pos).ok_or(TRUNC)?;
        let len = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as u32;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(DecodeError::Corrupt {
                what: "huffman code length out of range",
            });
        }
        lengths.insert(sym, len);
    }
    let count = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
    let payload_len = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
    let payload = data
        .get(pos..pos.saturating_add(payload_len))
        .ok_or(DecodeError::Truncated {
            what: "huffman payload",
        })?;

    if count == 0 {
        return Ok(Vec::new());
    }
    if nsyms == 0 {
        return Err(DecodeError::Corrupt {
            what: "huffman symbols without a code table",
        });
    }
    // Every symbol consumes at least one payload bit.
    if count > payload.len().saturating_mul(8) {
        return Err(DecodeError::Corrupt {
            what: "huffman symbol count exceeds payload bits",
        });
    }

    let table = canonical_codes(&lengths);
    // Group by length for canonical decoding: first_code and symbols per len.
    let max_len = table
        .iter()
        .map(|&(_, _, l)| l)
        .max()
        .ok_or(DecodeError::Corrupt {
            what: "huffman empty code table",
        })?;
    let mut first_code = vec![0u64; (max_len + 2) as usize];
    let mut first_index = vec![0usize; (max_len + 2) as usize];
    let mut counts = vec![0usize; (max_len + 2) as usize];
    for &(_, _, l) in &table {
        // lint:allow(no-index): l <= max_len by construction; tables sized max_len + 2
        counts[l as usize] += 1;
    }
    {
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len {
            let li = l as usize;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            first_code[li] = code;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            first_index[li] = index;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            code = (code + counts[li] as u64) << 1;
            // lint:allow(no-index): li <= max_len; tables sized max_len + 2
            index += counts[li];
        }
    }
    let symbols_in_order: Vec<u64> = table.iter().map(|&(s, _, _)| s).collect();

    let mut reader = BitReader::new(payload);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            code = (code << 1) | reader.read_bit();
            len += 1;
            if len > max_len {
                return Err(DecodeError::Corrupt {
                    what: "huffman code exceeds max length",
                });
            }
            let l = len as usize;
            // lint:allow(no-index): l <= max_len and the tables were sized max_len + 2 above
            let (cnt, fc, fi) = (counts[l], first_code[l], first_index[l]);
            if cnt > 0 && code >= fc {
                let offset = (code - fc) as usize;
                if offset < cnt {
                    let sym = symbols_in_order
                        .get(fi + offset)
                        .ok_or(DecodeError::Corrupt {
                            what: "huffman canonical table overrun",
                        })?;
                    out.push(*sym);
                    break;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_skewed_distribution() {
        // SZ-like: mostly the central bin with occasional excursions.
        let mut s = vec![32768u64; 5000];
        for i in 0..200 {
            s[i * 25] = 32768 + (i % 7) as u64 - 3;
        }
        let e = huffman_encode(&s);
        assert_eq!(huffman_decode(&e), Ok(s.clone()));
        // Should beat 2 bytes/symbol trivially.
        assert!(e.len() < s.len());
    }

    #[test]
    fn roundtrip_single_symbol() {
        let s = vec![7u64; 1000];
        let e = huffman_encode(&s);
        assert_eq!(huffman_decode(&e), Ok(s.clone()));
        assert!(
            e.len() < 200,
            "single-symbol stream should be ~bits: {}",
            e.len()
        );
    }

    #[test]
    fn roundtrip_empty() {
        let e = huffman_encode(&[]);
        assert_eq!(huffman_decode(&e), Ok(vec![]));
    }

    #[test]
    fn roundtrip_uniform_alphabet() {
        let s: Vec<u64> = (0..4096).map(|i| i % 256).collect();
        assert_eq!(huffman_decode(&huffman_encode(&s)), Ok(s));
    }

    #[test]
    fn roundtrip_large_symbol_values() {
        let s = vec![u64::MAX, 0, u64::MAX / 2, u64::MAX, 1];
        assert_eq!(huffman_decode(&huffman_encode(&s)), Ok(s));
    }

    #[test]
    fn decode_rejects_truncation() {
        let s: Vec<u64> = (0..100).collect();
        let e = huffman_encode(&s);
        assert!(huffman_decode(&e[..3]).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let s: Vec<u64> = (0..1000).map(|i| (i * i) % 50).collect();
        assert_eq!(huffman_encode(&s), huffman_encode(&s));
    }

    #[test]
    fn two_symbol_alphabet_uses_one_bit_each() {
        let s: Vec<u64> = (0..8000).map(|i| i % 2).collect();
        let e = huffman_encode(&s);
        // ~1000 bytes payload + small header.
        assert!(e.len() < 1100, "got {}", e.len());
        assert_eq!(huffman_decode(&e), Ok(s));
    }

    #[test]
    fn prop_roundtrip_random_symbols() {
        for seed in 0..48u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = rng.range_usize(2000);
            let s: Vec<u64> = (0..n).map(|_| rng.range_u64(500)).collect();
            assert_eq!(huffman_decode(&huffman_encode(&s)), Ok(s));
        }
    }
}
