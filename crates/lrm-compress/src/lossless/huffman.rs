//! Canonical Huffman coding over `u64` symbol streams.
//!
//! SZ encodes its quantization factors with Huffman coding; the alphabet is
//! sparse (most codes cluster around the zero-delta bin), so we build the
//! tree only over observed symbols and ship a compact (symbol, code-length)
//! table in the header.
//!
//! Hot-path engineering (byte layout unchanged; the scalar decoder is
//! preserved as [`crate::reference::huffman_decode_ref`] and the two are
//! held byte-identical by the `kernel_equivalence` suite):
//!
//! * frequencies are counted in a dense array when the alphabet is small
//!   (the SZ quant-code case: symbols fit in `2^quant_bits + 1`), with a
//!   `HashMap` fallback for arbitrary `u64` symbols;
//! * codes are pre-reversed once so each symbol is emitted with a single
//!   `write_bits` call instead of a per-bit loop (the wire stays MSB-first
//!   within each code, as before);
//! * decode uses a primary [`TABLE_BITS`]-bit lookup table — one peek,
//!   one table load, one consume per symbol — falling back to the
//!   canonical per-length walk only for codes longer than the table or
//!   for corrupt (non-canonical) shipped tables.

use super::varint::{decode_uvarint, encode_uvarint};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Maximum admitted code length. Frequencies are flattened and the tree is
/// rebuilt if this depth is exceeded (only possible for pathological
/// distributions over huge alphabets).
const MAX_CODE_LEN: u32 = 48;

/// Width of the primary decode lookup table. 2^11 packed-u32 entries is
/// 8 KiB — resident in L1 — and covers every code the SZ quantizer emits
/// in practice (the hot central bins are 1..~12 bits long).
const TABLE_BITS: u32 = 11;

/// Alphabets whose max symbol is below this use dense-array frequency
/// counting and a dense symbol→code map (SZ quant codes max out at
/// `2^16 + 1` under the default 16-bit quantizer, well within range).
const DENSE_LIMIT: u64 = 1 << 17;

/// Reverses the low `len` (>= 1) bits of `code`. Codes are assigned
/// MSB-first by the canonical construction but the bitstream is packed
/// LSB-first, so both the single-call emitter and the lookup-table index
/// need the bit-reversed image.
#[inline]
fn rev_code(code: u64, len: u32) -> u64 {
    debug_assert!((1..=64).contains(&len));
    code.reverse_bits() >> (64 - len)
}

/// Computes Huffman code lengths for `freqs` (symbol, count) pairs sorted
/// by symbol, using a standard heap construction. Sorted input keeps the
/// heap tie-break ids — and therefore the emitted bytes — deterministic.
fn code_lengths(freqs: &[(u64, u64)]) -> Vec<(u64, u32)> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: usize,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u64),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    debug_assert!(freqs.windows(2).all(|w| w[0].0 < w[1].0));
    let mut lengths = Vec::new();
    if freqs.is_empty() {
        return lengths;
    }
    if let [(s, _)] = freqs {
        lengths.push((*s, 1));
        return lengths;
    }

    let mut scale = 0u32;
    loop {
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        let mut id = 0;
        for &(s, w) in freqs {
            heap.push(Node {
                weight: (w >> scale).max(1),
                id,
                kind: NodeKind::Leaf(s),
            });
            id += 1;
        }
        while heap.len() > 1 {
            let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
                break;
            };
            heap.push(Node {
                weight: a.weight + b.weight,
                id,
                kind: NodeKind::Internal(Box::new(a), Box::new(b)),
            });
            id += 1;
        }
        let Some(root) = heap.pop() else {
            return lengths;
        };
        lengths.clear();
        let mut max_depth = 0;
        // Iterative DFS to assign depths.
        let mut stack = vec![(&root, 0u32)];
        while let Some((node, depth)) = stack.pop() {
            match &node.kind {
                NodeKind::Leaf(s) => {
                    lengths.push((*s, depth.max(1)));
                    max_depth = max_depth.max(depth);
                }
                NodeKind::Internal(a, b) => {
                    stack.push((a, depth + 1));
                    stack.push((b, depth + 1));
                }
            }
        }
        if max_depth <= MAX_CODE_LEN {
            return lengths;
        }
        scale += 4; // flatten the distribution and retry
    }
}

/// Canonical code table: for each symbol its (code, length), with codes
/// assigned in (length, symbol) order.
fn canonical_codes(lengths: &[(u64, u32)]) -> Vec<(u64, u64, u32)> {
    let mut entries: Vec<(u64, u32)> = lengths.to_vec();
    entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut out = Vec::with_capacity(entries.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for (sym, len) in entries {
        code <<= len - prev_len;
        out.push((sym, code, len));
        code += 1;
        prev_len = len;
    }
    out
}

/// Encodes `symbols` into a self-describing Huffman stream.
///
/// Layout: `nsyms` uvarint, then `nsyms` × (symbol uvarint, length uvarint),
/// then `count` uvarint, then the bit-packed code stream.
pub fn huffman_encode(symbols: &[u64]) -> Vec<u8> {
    // Frequency counting, sorted by symbol either way: dense array for
    // small alphabets (the SZ quant-code path), HashMap for arbitrary u64.
    let max_sym = symbols.iter().copied().max();
    let freqs: Vec<(u64, u64)> = match max_sym {
        None => Vec::new(),
        Some(max_sym) if max_sym < DENSE_LIMIT => {
            let mut counts = vec![0u64; max_sym as usize + 1];
            for &s in symbols {
                // lint:allow(no-index): s <= max_sym by the max() scan above
                counts[s as usize] += 1;
            }
            counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s as u64, c))
                .collect()
        }
        Some(_) => {
            let mut map: HashMap<u64, u64> = HashMap::new();
            for &s in symbols {
                *map.entry(s).or_insert(0) += 1;
            }
            let mut v: Vec<(u64, u64)> = map.into_iter().collect();
            v.sort_unstable();
            v
        }
    };
    let lengths = code_lengths(&freqs);
    let table = canonical_codes(&lengths);

    let mut out = Vec::new();
    encode_uvarint(table.len() as u64, &mut out);
    for &(sym, _, len) in &table {
        encode_uvarint(sym, &mut out);
        encode_uvarint(len as u64, &mut out);
    }
    encode_uvarint(symbols.len() as u64, &mut out);

    // Symbol → (bit-reversed code, length), dense-indexed when possible so
    // the emission loop is a load plus one write_bits call per symbol.
    let dense_map: Option<Vec<(u64, u32)>> = match max_sym {
        Some(max_sym) if max_sym < DENSE_LIMIT => {
            let mut m = vec![(0u64, 0u32); max_sym as usize + 1];
            for &(s, c, l) in &table {
                // lint:allow(no-index): s <= max_sym: only observed symbols enter the table
                m[s as usize] = (rev_code(c, l), l);
            }
            Some(m)
        }
        _ => None,
    };
    let sparse_map: HashMap<u64, (u64, u32)> = if dense_map.is_none() {
        table
            .iter()
            .map(|&(s, c, l)| (s, (rev_code(c, l), l)))
            .collect()
    } else {
        HashMap::new()
    };

    let mut bits = BitWriter::with_capacity_bits(symbols.len() * 4);
    for &s in symbols {
        let (rc, len) = match &dense_map {
            // lint:allow(no-index): s <= max_sym by the max() scan above
            Some(m) => m[s as usize],
            None => sparse_map.get(&s).copied().unwrap_or((0, 0)),
        };
        // Every input symbol was counted into `freqs`, so it has a code.
        debug_assert!(len > 0, "symbol missing from code table");
        bits.write_bits(rc, len);
    }
    let payload = bits.into_bytes();
    encode_uvarint(payload.len() as u64, &mut out);
    out.extend_from_slice(&payload);
    out
}

/// Canonical per-length walk, shared by the table-miss path (seeded with
/// the already-consumed prefix) and the corrupt-table fallback (seeded
/// with `code = 0, len = 0`). Returns the index into the (length,
/// symbol)-ordered table. Byte-for-byte the reference decoder's loop.
/// Kept out of line so the inlined table-hit path in
/// [`HuffmanDecoder::next_symbol`] stays small.
#[cold]
#[inline(never)]
fn walk_decode(
    reader: &mut BitReader<'_>,
    mut code: u64,
    mut len: u32,
    max_len: u32,
    counts: &[usize],
    first_code: &[u64],
    first_index: &[usize],
) -> DecodeResult<usize> {
    loop {
        code = (code << 1) | reader.read_bit();
        len += 1;
        if len > max_len {
            return Err(DecodeError::Corrupt {
                what: "huffman code exceeds max length",
            });
        }
        let l = len as usize;
        let (Some(&cnt), Some(&fc), Some(&fi)) =
            (counts.get(l), first_code.get(l), first_index.get(l))
        else {
            return Err(DecodeError::Corrupt {
                what: "huffman canonical table overrun",
            });
        };
        if cnt > 0 && code >= fc {
            let offset = (code - fc) as usize;
            if offset < cnt {
                return Ok(fi + offset);
            }
        }
    }
}

/// Streaming decoder over a [`huffman_encode`] stream: parses the header
/// and builds the decode tables once, then yields symbols one at a time.
///
/// [`huffman_decode`] is a thin collect-all wrapper around this type; SZ
/// decode drives it directly so quantization codes feed the Lorenzo
/// reconstruction as they are decoded, without materializing the full
/// `Vec<u64>` (for a 64^3 field that intermediate is 2 MiB written and
/// immediately re-read).
pub struct HuffmanDecoder<'a> {
    reader: BitReader<'a>,
    /// Symbols left to decode; [`Self::next_symbol`] past this errors.
    remaining: usize,
    table_ok: bool,
    tbits: u32,
    max_len: u32,
    counts: Vec<usize>,
    first_code: Vec<u64>,
    first_index: Vec<usize>,
    symbols_in_order: Vec<u64>,
    lut: Vec<u32>,
}

impl<'a> HuffmanDecoder<'a> {
    /// Parses the header and builds the decode tables. Error cases and
    /// ordering match the historical monolithic decoder exactly.
    pub fn new(data: &'a [u8]) -> DecodeResult<Self> {
        const TRUNC: DecodeError = DecodeError::Truncated {
            what: "huffman header",
        };
        let mut pos = 0;
        let nsyms = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
        // Each table entry occupies at least two bytes (two uvarints), so a
        // count past data.len()/2 is unsatisfiable — reject before allocating.
        if nsyms > data.len() / 2 {
            return Err(DecodeError::Corrupt {
                what: "huffman symbol count exceeds stream",
            });
        }
        let mut lengths: HashMap<u64, u32> = HashMap::with_capacity(nsyms);
        for _ in 0..nsyms {
            let sym = decode_uvarint(data, &mut pos).ok_or(TRUNC)?;
            let len = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as u32;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(DecodeError::Corrupt {
                    what: "huffman code length out of range",
                });
            }
            lengths.insert(sym, len);
        }
        let count = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
        let payload_len = decode_uvarint(data, &mut pos).ok_or(TRUNC)? as usize;
        let payload =
            data.get(pos..pos.saturating_add(payload_len))
                .ok_or(DecodeError::Truncated {
                    what: "huffman payload",
                })?;

        if count == 0 {
            // Empty stream: no tables needed, `next_symbol` is never legal.
            return Ok(Self {
                reader: BitReader::new(payload),
                remaining: 0,
                table_ok: true,
                tbits: 0,
                max_len: 0,
                counts: Vec::new(),
                first_code: Vec::new(),
                first_index: Vec::new(),
                symbols_in_order: Vec::new(),
                lut: Vec::new(),
            });
        }
        if nsyms == 0 {
            return Err(DecodeError::Corrupt {
                what: "huffman symbols without a code table",
            });
        }
        // Every symbol consumes at least one payload bit.
        if count > payload.len().saturating_mul(8) {
            return Err(DecodeError::Corrupt {
                what: "huffman symbol count exceeds payload bits",
            });
        }

        let length_pairs: Vec<(u64, u32)> = lengths.into_iter().collect();
        let table = canonical_codes(&length_pairs);
        // Group by length for canonical decoding: first_code and symbols per len.
        let max_len = table
            .iter()
            .map(|&(_, _, l)| l)
            .max()
            .ok_or(DecodeError::Corrupt {
                what: "huffman empty code table",
            })?;
        let mut first_code = vec![0u64; (max_len + 2) as usize];
        let mut first_index = vec![0usize; (max_len + 2) as usize];
        let mut counts = vec![0usize; (max_len + 2) as usize];
        for &(_, _, l) in &table {
            // lint:allow(no-index): l <= max_len by construction; tables sized max_len + 2
            counts[l as usize] += 1;
        }
        {
            let mut code = 0u64;
            let mut index = 0usize;
            for l in 1..=max_len {
                let li = l as usize;
                // lint:allow(no-index): li <= max_len; tables sized max_len + 2
                first_code[li] = code;
                // lint:allow(no-index): li <= max_len; tables sized max_len + 2
                first_index[li] = index;
                // lint:allow(no-index): li <= max_len; tables sized max_len + 2
                code = (code + counts[li] as u64) << 1;
                // lint:allow(no-index): li <= max_len; tables sized max_len + 2
                index += counts[li];
            }
        }
        let symbols_in_order: Vec<u64> = table.iter().map(|&(s, _, _)| s).collect();

        // Primary lookup table over the peeked next `tbits` stream bits
        // (LSB-first, so codes are bit-reversed into the index). Each packed
        // entry is `(table_index << 6) | code_len`; 0 means "no code of
        // length <= tbits matches" (valid because code_len >= 1). A code of
        // length L fills every index whose low L bits equal its reversed
        // image. A shipped table that is not a prefix code can overflow the
        // canonical assignment (code >= 2^len); in that case the table is
        // abandoned and the per-length walk — whose behaviour on such input
        // is the reference semantics — handles the whole payload.
        let tbits = max_len.min(TABLE_BITS);
        let mut lut = vec![0u32; 1usize << tbits];
        let mut table_ok = true;
        for (i, &(_, code, len)) in table.iter().enumerate() {
            if len > tbits {
                break; // table is (length, symbol)-sorted
            }
            if code >> len != 0 {
                table_ok = false;
                break;
            }
            let entry = ((i as u32) << 6) | len;
            let mut fill = rev_code(code, len) as usize;
            let step = 1usize << len;
            while let Some(slot) = lut.get_mut(fill) {
                *slot = entry;
                fill += step;
            }
        }

        Ok(Self {
            reader: BitReader::new(payload),
            remaining: count,
            table_ok,
            tbits,
            max_len,
            counts,
            first_code,
            first_index,
            symbols_in_order,
            lut,
        })
    }

    /// Symbols not yet decoded.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Decodes the next symbol. Calling past [`Self::remaining`] is a
    /// [`DecodeError::Corrupt`]; the caller decides how many of the
    /// encoded symbols it actually needs.
    ///
    /// `inline(always)` so the reader's bit buffer lives in registers
    /// across a caller's decode loop; the cold walk paths are out of
    /// line, keeping the inlined body to peek/lookup/consume.
    #[inline(always)]
    pub fn next_symbol(&mut self) -> DecodeResult<u64> {
        if self.remaining == 0 {
            return Err(DecodeError::Corrupt {
                what: "huffman payload exhausted",
            });
        }
        self.remaining -= 1;
        let table_index = if self.table_ok {
            let peeked = self.reader.peek_bits(self.tbits);
            let entry = self.lut.get(peeked as usize).copied().unwrap_or(0);
            if entry != 0 {
                self.reader.consume_bits(entry & 63);
                (entry >> 6) as usize
            } else {
                // Longer than the table: seed the walk with the peeked
                // prefix (re-reversed into MSB-first code order).
                self.reader.consume_bits(self.tbits);
                walk_decode(
                    &mut self.reader,
                    rev_code(peeked, self.tbits),
                    self.tbits,
                    self.max_len,
                    &self.counts,
                    &self.first_code,
                    &self.first_index,
                )?
            }
        } else {
            walk_decode(
                &mut self.reader,
                0,
                0,
                self.max_len,
                &self.counts,
                &self.first_code,
                &self.first_index,
            )?
        };
        self.symbols_in_order
            .get(table_index)
            .copied()
            .ok_or(DecodeError::Corrupt {
                what: "huffman canonical table overrun",
            })
    }
}

/// Decodes a stream produced by [`huffman_encode`]. Returns a
/// [`DecodeError`] on corrupt or truncated input; never panics.
pub fn huffman_decode(data: &[u8]) -> DecodeResult<Vec<u64>> {
    let mut dec = HuffmanDecoder::new(data)?;
    let mut out = Vec::with_capacity(dec.remaining());
    while dec.remaining() > 0 {
        out.push(dec.next_symbol()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{huffman_decode_ref, huffman_encode_ref};

    #[test]
    fn roundtrip_skewed_distribution() {
        // SZ-like: mostly the central bin with occasional excursions.
        let mut s = vec![32768u64; 5000];
        for i in 0..200 {
            s[i * 25] = 32768 + (i % 7) as u64 - 3;
        }
        let e = huffman_encode(&s);
        assert_eq!(huffman_decode(&e), Ok(s.clone()));
        // Should beat 2 bytes/symbol trivially.
        assert!(e.len() < s.len());
    }

    #[test]
    fn roundtrip_single_symbol() {
        let s = vec![7u64; 1000];
        let e = huffman_encode(&s);
        assert_eq!(huffman_decode(&e), Ok(s.clone()));
        assert!(
            e.len() < 200,
            "single-symbol stream should be ~bits: {}",
            e.len()
        );
    }

    #[test]
    fn roundtrip_empty() {
        let e = huffman_encode(&[]);
        assert_eq!(huffman_decode(&e), Ok(vec![]));
    }

    #[test]
    fn roundtrip_uniform_alphabet() {
        let s: Vec<u64> = (0..4096).map(|i| i % 256).collect();
        assert_eq!(huffman_decode(&huffman_encode(&s)), Ok(s));
    }

    #[test]
    fn roundtrip_large_symbol_values() {
        let s = vec![u64::MAX, 0, u64::MAX / 2, u64::MAX, 1];
        assert_eq!(huffman_decode(&huffman_encode(&s)), Ok(s));
    }

    #[test]
    fn decode_rejects_truncation() {
        let s: Vec<u64> = (0..100).collect();
        let e = huffman_encode(&s);
        assert!(huffman_decode(&e[..3]).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let s: Vec<u64> = (0..1000).map(|i| (i * i) % 50).collect();
        assert_eq!(huffman_encode(&s), huffman_encode(&s));
    }

    #[test]
    fn two_symbol_alphabet_uses_one_bit_each() {
        let s: Vec<u64> = (0..8000).map(|i| i % 2).collect();
        let e = huffman_encode(&s);
        // ~1000 bytes payload + small header.
        assert!(e.len() < 1100, "got {}", e.len());
        assert_eq!(huffman_decode(&e), Ok(s));
    }

    #[test]
    fn prop_roundtrip_random_symbols() {
        for seed in 0..48u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = rng.range_usize(2000);
            let s: Vec<u64> = (0..n).map(|_| rng.range_u64(500)).collect();
            assert_eq!(huffman_decode(&huffman_encode(&s)), Ok(s));
        }
    }

    #[test]
    fn encode_matches_reference_bytes() {
        // Dense path (small alphabet), sparse path (huge symbols), and
        // the degenerate cases must all keep the original byte layout.
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![7; 321],
            (0..4096).map(|i| i % 256).collect(),
            vec![u64::MAX, 0, u64::MAX / 2, u64::MAX, 1, 1, 1],
            (0..3000).map(|i| 32768 + (i * i) % 13).collect(),
        ];
        for s in cases {
            assert_eq!(huffman_encode(&s), huffman_encode_ref(&s));
        }
        for seed in 0..16u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = rng.range_usize(3000);
            let s: Vec<u64> = (0..n).map(|_| rng.range_u64(700)).collect();
            assert_eq!(huffman_encode(&s), huffman_encode_ref(&s));
        }
    }

    #[test]
    fn decode_matches_reference_including_long_codes() {
        // Fibonacci-ish weights force a deep, skewed tree whose long
        // codes exceed TABLE_BITS and exercise the walk fallback.
        let mut s = Vec::new();
        let mut w = 1u64;
        for sym in 0..24u64 {
            for _ in 0..w.min(100_000) {
                s.push(sym);
            }
            w = w.saturating_mul(2);
        }
        let e = huffman_encode(&s);
        let fast = huffman_decode(&e);
        let slow = huffman_decode_ref(&e);
        assert_eq!(fast, slow);
        assert_eq!(fast, Ok(s));
    }

    #[test]
    fn corrupt_streams_agree_with_reference() {
        let s: Vec<u64> = (0..600).map(|i| (i * 31) % 90).collect();
        let e = huffman_encode(&s);
        let mut rng = lrm_rng::Rng64::new(9);
        for _ in 0..400 {
            let mut bad = e.clone();
            let i = rng.range_usize(bad.len());
            bad[i] ^= 1 << rng.range_u64(8);
            assert_eq!(huffman_decode(&bad), huffman_decode_ref(&bad));
        }
        for cut in 0..e.len() {
            assert_eq!(huffman_decode(&e[..cut]), huffman_decode_ref(&e[..cut]));
        }
    }
}
