//! Shared lossless substrate: entropy coding and dictionary compression.
//!
//! SZ 1.4 post-processes its quantization codes with Huffman coding and a
//! dictionary compressor; this module provides both stages plus the small
//! primitives (varints, zigzag, run-length) the codecs share.

use crate::error::{DecodeError, DecodeResult};

pub mod huffman;
pub mod lzss;
pub mod rle;
pub mod varint;

pub use huffman::{huffman_decode, huffman_encode, HuffmanDecoder};
pub use lzss::{lzss_compress, lzss_decompress};
pub use rle::{rle_decode_zeros, rle_encode_zeros};
pub use varint::{decode_uvarint, encode_uvarint, zigzag_decode, zigzag_encode};

/// Compresses a byte buffer with the full lossless pipeline used as SZ's
/// final stage: LZSS dictionary compression. Returns whichever of
/// {raw, lzss} is smaller, prefixed with a 1-byte tag.
pub fn pipeline_compress(data: &[u8]) -> Vec<u8> {
    let lz = lzss_compress(data);
    if lz.len() + 1 < data.len() + 1 {
        let mut out = Vec::with_capacity(lz.len() + 1);
        out.push(1u8);
        out.extend_from_slice(&lz);
        out
    } else {
        let mut out = Vec::with_capacity(data.len() + 1);
        out.push(0u8);
        out.extend_from_slice(data);
        out
    }
}

/// Inverse of [`pipeline_compress`]. An empty buffer or unknown tag
/// byte yields a [`DecodeError`]; never panics.
pub fn pipeline_decompress(data: &[u8]) -> DecodeResult<Vec<u8>> {
    let (&tag, rest) = data.split_first().ok_or(DecodeError::Truncated {
        what: "lossless pipeline tag",
    })?;
    match tag {
        0 => Ok(rest.to_vec()),
        1 => lzss_decompress(rest),
        tag => Err(DecodeError::UnknownTag {
            what: "lossless pipeline",
            tag,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_roundtrip_compressible() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 7) as u8).collect();
        let c = pipeline_compress(&data);
        assert!(c.len() < data.len());
        assert_eq!(pipeline_decompress(&c).expect("decode"), data);
    }

    #[test]
    fn pipeline_roundtrip_incompressible() {
        let mut rng = lrm_rng::Rng64::new(3);
        let data: Vec<u8> = rng.vec_u8(4096);
        let c = pipeline_compress(&data);
        assert_eq!(pipeline_decompress(&c).expect("decode"), data);
        // Never expands by more than the tag byte plus LZSS worst case guard.
        assert!(c.len() <= data.len() + 1);
    }

    #[test]
    fn pipeline_roundtrip_empty() {
        let c = pipeline_compress(&[]);
        assert_eq!(pipeline_decompress(&c).expect("decode"), Vec::<u8>::new());
    }

    #[test]
    fn pipeline_empty_stream_is_truncated_error() {
        // Regression: this used to panic via split_first().expect(...).
        assert_eq!(
            pipeline_decompress(&[]),
            Err(DecodeError::Truncated {
                what: "lossless pipeline tag"
            })
        );
    }

    #[test]
    fn pipeline_unknown_tag_is_error() {
        assert!(matches!(
            pipeline_decompress(&[9, 1, 2, 3]),
            Err(DecodeError::UnknownTag { tag: 9, .. })
        ));
    }
}
