//! LEB128 variable-length integers and zigzag mapping for signed values.

/// Appends `v` to `out` as an unsigned LEB128 varint.
pub fn encode_uvarint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes an unsigned LEB128 varint starting at `data[pos]`, advancing
/// `pos`. Returns `None` on truncated or over-long (>10 byte) input.
pub fn decode_uvarint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed integer to an unsigned one with small magnitudes staying
/// small: 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode_uvarint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_small_values_are_one_byte() {
        let mut buf = Vec::new();
        encode_uvarint(127, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn uvarint_truncated_returns_none() {
        let mut pos = 0;
        assert_eq!(decode_uvarint(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(decode_uvarint(&[], &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 42, -4096] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn multiple_varints_in_sequence() {
        let mut buf = Vec::new();
        for v in 0..100u64 {
            encode_uvarint(v * v, &mut buf);
        }
        let mut pos = 0;
        for v in 0..100u64 {
            assert_eq!(decode_uvarint(&buf, &mut pos), Some(v * v));
        }
        assert_eq!(pos, buf.len());
    }
}
