//! Zero-run-length coding for sparse symbol streams.
//!
//! The Wavelet preconditioner produces matrices dominated by exact zeros
//! after thresholding; encoding runs of zeros compactly is what makes its
//! "sparse matrix" representation (Table III) pay off.

use super::varint::{decode_uvarint, encode_uvarint};

/// Hard ceiling on the symbol count a stream may declare: 2^27 symbols
/// is a 1 GiB `u64` buffer, far beyond any matrix this workspace
/// produces. A corrupt or hostile varint cannot commit the decoder to
/// more than this, no matter what the header claims.
const MAX_DECODED_SYMBOLS: usize = 1 << 27;

/// Encodes a `u64` symbol stream as alternating (zero-run-length,
/// literal-run) segments, each varint-prefixed.
///
/// Layout: repeat { zrun: uvarint, nlit: uvarint, nlit literals } until
/// all symbols are covered.
pub fn rle_encode_zeros(symbols: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_uvarint(symbols.len() as u64, &mut out);
    let mut i = 0;
    while i < symbols.len() {
        let run_start = i;
        while i < symbols.len() && symbols[i] == 0 {
            i += 1;
        }
        let zrun = (i - run_start) as u64;
        let lit_start = i;
        while i < symbols.len() && symbols[i] != 0 {
            i += 1;
        }
        encode_uvarint(zrun, &mut out);
        encode_uvarint((i - lit_start) as u64, &mut out);
        for &s in &symbols[lit_start..i] {
            encode_uvarint(s, &mut out);
        }
    }
    out
}

/// Inverse of [`rle_encode_zeros`]. Returns `None` on corrupt input,
/// including a declared symbol count above [`MAX_DECODED_SYMBOLS`].
pub fn rle_decode_zeros(data: &[u8]) -> Option<Vec<u64>> {
    let mut pos = 0;
    let total = decode_uvarint(data, &mut pos)? as usize;
    if total > MAX_DECODED_SYMBOLS {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let zrun = decode_uvarint(data, &mut pos)? as usize;
        let nlit = decode_uvarint(data, &mut pos)? as usize;
        if out.len() + zrun + nlit > total {
            return None;
        }
        out.resize(out.len() + zrun, 0);
        for _ in 0..nlit {
            out.push(decode_uvarint(data, &mut pos)?);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let s = vec![0, 0, 0, 5, 7, 0, 0, 1, 0, 0, 0, 0, 9];
        assert_eq!(rle_decode_zeros(&rle_encode_zeros(&s)), Some(s));
    }

    #[test]
    fn roundtrip_all_zeros_is_tiny() {
        let s = vec![0u64; 100_000];
        let e = rle_encode_zeros(&s);
        assert!(
            e.len() < 16,
            "all-zero stream should be a few bytes, got {}",
            e.len()
        );
        assert_eq!(rle_decode_zeros(&e), Some(s));
    }

    #[test]
    fn roundtrip_no_zeros() {
        let s: Vec<u64> = (1..=500).collect();
        assert_eq!(rle_decode_zeros(&rle_encode_zeros(&s)), Some(s));
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(rle_decode_zeros(&rle_encode_zeros(&[])), Some(vec![]));
    }

    #[test]
    fn corrupt_input_returns_none() {
        assert_eq!(rle_decode_zeros(&[0x80]), None);
        // Claims 10 symbols but provides none.
        let mut buf = Vec::new();
        encode_uvarint(10, &mut buf);
        assert_eq!(rle_decode_zeros(&buf), None);
    }

    #[test]
    fn absurd_declared_total_is_rejected_before_allocating() {
        // A few bytes claiming u64::MAX symbols must fail fast, not
        // commit the decoder to a giant buffer.
        let mut buf = Vec::new();
        encode_uvarint(u64::MAX, &mut buf);
        encode_uvarint(u64::MAX, &mut buf); // zrun
        encode_uvarint(0, &mut buf); // nlit
        assert_eq!(rle_decode_zeros(&buf), None);
    }

    #[test]
    fn sparse_stream_compresses() {
        let mut s = vec![0u64; 10_000];
        for i in (0..10_000).step_by(503) {
            s[i] = i as u64;
        }
        let e = rle_encode_zeros(&s);
        assert!(e.len() < 500);
        assert_eq!(rle_decode_zeros(&e), Some(s));
    }
}
