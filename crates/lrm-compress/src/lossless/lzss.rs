//! LZSS dictionary compression (the LZ77 stage of SZ's pipeline).
//!
//! Byte-oriented, 64 KiB sliding window, greedy hash-chain matching.
//! Token format: groups of 8 tokens share a flag byte (bit i set = token i
//! is a match). A literal is one byte; a match is a little-endian `u16`
//! offset (1-based distance) followed by a length byte storing
//! `length - MIN_MATCH`.

use crate::error::{DecodeError, DecodeResult};

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Unaligned little-endian load of 8 bytes at `i`; zero-fills if fewer
/// than 8 bytes remain (callers only rely on fully in-bounds loads).
#[inline]
fn load_u64(data: &[u8], i: usize) -> u64 {
    let mut w = [0u8; 8];
    if let Some(s) = data.get(i..i.saturating_add(8)) {
        w.copy_from_slice(s);
    }
    u64::from_le_bytes(w)
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `limit`. Compares 8 bytes per step — XOR plus `trailing_zeros` finds
/// the first differing byte — with a scalar tail. Both `a + limit` and
/// `b + limit` must be within `data` (the caller derives `limit` from
/// `data.len()`), so the word loads never cross the end.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, limit: usize) -> usize {
    let mut l = 0;
    while l + 8 <= limit {
        let x = load_u64(data, a + l) ^ load_u64(data, b + l);
        if x != 0 {
            return l + (x.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < limit && data.get(a + l) == data.get(b + l) {
        l += 1;
    }
    l
}

/// Compresses `data`. The output begins with the original length as a
/// little-endian `u32`.
pub fn lzss_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];

    let mut i = 0;
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u32;

    macro_rules! bump_flags {
        () => {
            flag_bit += 1;
            if flag_bit == 8 {
                flag_bit = 0;
                flags_pos = out.len();
                out.push(0);
            }
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let l = match_len(data, cand, i, limit);
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            out[flags_pos] |= 1 << flag_bit;
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index the skipped positions so later matches can refer back.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            out.push(data[i]);
            i += 1;
        }
        bump_flags!();
    }
    out
}

/// Inverse of [`lzss_compress`]. Returns a [`DecodeError`] on corrupt
/// input (out-of-range offsets or truncated stream); never panics.
pub fn lzss_decompress(data: &[u8]) -> DecodeResult<Vec<u8>> {
    let header: [u8; 4] =
        data.get(..4)
            .and_then(|s| s.try_into().ok())
            .ok_or(DecodeError::Truncated {
                what: "lzss length header",
            })?;
    let n = u32::from_le_bytes(header) as usize;
    // Each output byte costs at least 1/8 of a flag bit plus (amortized)
    // one token byte per literal or per MIN_MATCH matched bytes, so a
    // valid stream of payload p bytes never decodes past p * (MAX_MATCH+1)
    // outputs. Cap the pre-allocation by that bound to keep a corrupt
    // length field from triggering a huge allocation up front.
    let cap = n.min(data.len().saturating_mul(MAX_MATCH + 1));
    let mut out = Vec::with_capacity(cap);
    let mut pos = 4;
    let mut flags = 0u8;
    let mut flag_bit = 8u32; // force read of first flag byte
    while out.len() < n {
        if flag_bit == 8 {
            flags = *data.get(pos).ok_or(DecodeError::Truncated {
                what: "lzss flag byte",
            })?;
            pos += 1;
            flag_bit = 0;
        }
        if flags & (1 << flag_bit) != 0 {
            let (dist, len) = match data.get(pos..pos.saturating_add(3)) {
                Some(&[d0, d1, l]) => (
                    u16::from_le_bytes([d0, d1]) as usize,
                    l as usize + MIN_MATCH,
                ),
                _ => {
                    return Err(DecodeError::Truncated {
                        what: "lzss match token",
                    })
                }
            };
            pos += 3;
            if dist < 1 || dist > out.len() {
                return Err(DecodeError::Corrupt {
                    what: "lzss match offset out of range",
                });
            }
            let start = out.len() - dist;
            if dist >= len {
                // Non-overlapping: one chunked copy (memcpy-class).
                let stop = start + len; // <= out.len() because len <= dist
                out.extend_from_within(start..stop);
            } else {
                // Overlapping run with period `dist`: each pass copies the
                // whole materialized tail, doubling the run per iteration
                // instead of pushing byte by byte.
                let mut remaining = len;
                while remaining > 0 {
                    let chunk = (out.len() - start).min(remaining);
                    let stop = start + chunk; // <= out.len() by the min above
                    out.extend_from_within(start..stop);
                    remaining -= chunk;
                }
            }
        } else {
            out.push(*data.get(pos).ok_or(DecodeError::Truncated {
                what: "lzss literal",
            })?);
            pos += 1;
        }
        flag_bit += 1;
    }
    if out.len() != n {
        return Err(DecodeError::Corrupt {
            what: "lzss decoded length mismatch",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_repetitive() {
        let data: Vec<u8> = b"abcabcabcabcabcabc".repeat(100);
        let c = lzss_compress(&data);
        assert!(c.len() < data.len() / 4);
        assert_eq!(lzss_decompress(&c).expect("decode"), data);
    }

    #[test]
    fn roundtrip_empty() {
        let c = lzss_compress(&[]);
        assert_eq!(lzss_decompress(&c).expect("decode"), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_short_inputs() {
        for n in 0..16usize {
            let data: Vec<u8> = (0..n as u8).collect();
            assert_eq!(
                lzss_decompress(&lzss_compress(&data)).expect("decode"),
                data
            );
        }
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = lrm_rng::Rng64::new(11);
        let data: Vec<u8> = rng.vec_u8(50_000);
        assert_eq!(
            lzss_decompress(&lzss_compress(&data)).expect("decode"),
            data
        );
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // Runs force overlapping copies (dist < len).
        let data = vec![7u8; 1000];
        let c = lzss_compress(&data);
        assert!(c.len() < 40);
        assert_eq!(lzss_decompress(&c).expect("decode"), data);
    }

    #[test]
    fn roundtrip_long_range_match() {
        let mut data = vec![0u8; 40_000];
        for i in 0..1000 {
            data[i] = (i % 251) as u8;
            data[30_000 + i] = (i % 251) as u8;
        }
        assert_eq!(
            lzss_decompress(&lzss_compress(&data)).expect("decode"),
            data
        );
    }

    #[test]
    fn matches_scalar_reference_bytes() {
        use crate::reference::{lzss_compress_ref, lzss_decompress_ref};
        let mut rng = lrm_rng::Rng64::new(21);
        for _ in 0..20 {
            let n = rng.range_usize(20_000);
            // Mixed regime: runs, structure, and noise.
            let data: Vec<u8> = (0..n)
                .map(|j| {
                    if rng.bool(0.5) {
                        (j % 17) as u8
                    } else {
                        rng.range_u64(5) as u8
                    }
                })
                .collect();
            let fast = lzss_compress(&data);
            assert_eq!(fast, lzss_compress_ref(&data));
            assert_eq!(
                lzss_decompress(&fast).expect("decode"),
                lzss_decompress_ref(&fast).expect("ref decode")
            );
        }
    }

    #[test]
    fn prop_roundtrip_small_alphabet() {
        // Small alphabets maximize match density; sweep lengths 0..4000.
        for seed in 0..48u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = rng.range_usize(4000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(8) as u8).collect();
            assert_eq!(
                lzss_decompress(&lzss_compress(&data)).expect("decode"),
                data
            );
        }
    }
}
