//! Floating-point compressors reproducing the paper's substrate.
//!
//! The paper evaluates its preconditioning strategies against three
//! compressors, all reimplemented here from their published algorithms:
//!
//! * [`Zfp`] — transform-based lossy compressor (Lindstrom, TVCG 2014):
//!   4^d blocks, common-exponent block-float conversion, lifted
//!   decorrelating transform, negabinary, embedded bit-plane coding.
//!   Supports the fixed-precision mode the paper uses (16 bits for
//!   original data, 8 bits for deltas; 8..=32 for the Fig. 11 sweep).
//! * [`Sz`] — prediction-based lossy compressor (Di & Cappello, IPDPS
//!   2016): Lorenzo prediction, linear-scaling quantization, Huffman +
//!   LZSS entropy stages, with point-wise relative and absolute error
//!   bounds (the paper uses rel 1e-5 for original data, 1e-3 for deltas).
//! * [`Fpc`] — lossless double compressor (Burtscher & Ratanaworabhan,
//!   TC 2009): FCM/DFCM predictors + leading-zero-byte encoding
//!   (the paper uses level 20 with a 2^24-byte table).
//!
//! All codecs implement [`Codec`] over a [`Shape`]-annotated `f64` slice.

// Index-symmetric loops read more clearly than iterator chains in
// numerical kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]
// Decode paths consume untrusted bytes and must surface failures as
// `DecodeError`, never abort. Promoted per the decode-path contract in
// DESIGN.md; test code may still panic freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bitstream;
pub mod error;
pub mod fpc;
pub mod lossless;
#[doc(hidden)]
pub mod reference;
pub mod sz;
pub mod zfp;

pub use error::{DecodeError, DecodeResult};
pub use fpc::Fpc;
pub use sz::{Sz, SzErrorBound};
pub use zfp::{Zfp, ZfpMode};

/// Logical shape of a 1-D/2-D/3-D scalar field stored in row-major
/// (x fastest) order. Higher dimensions hold size 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Extents `[nx, ny, nz]`; unused trailing dimensions are 1.
    pub dims: [usize; 3],
}

impl Shape {
    /// 1-D shape of length `nx`.
    pub fn d1(nx: usize) -> Self {
        Self { dims: [nx, 1, 1] }
    }
    /// 2-D shape `nx × ny` (x fastest).
    pub fn d2(nx: usize, ny: usize) -> Self {
        Self { dims: [nx, ny, 1] }
    }
    /// 3-D shape `nx × ny × nz` (x fastest).
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        Self { dims: [nx, ny, nz] }
    }
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }
    /// True when the field holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Dimensionality: 1, 2, or 3 (a trailing extent of 1 is not counted,
    /// except that a fully scalar shape reports 1).
    pub fn ndims(&self) -> usize {
        if self.dims[2] > 1 {
            3
        } else if self.dims[1] > 1 {
            2
        } else {
            1
        }
    }
    /// Row-major linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.dims[1] + y) * self.dims[0] + x
    }
}

/// A lossy or lossless compressor for shaped `f64` fields.
pub trait Codec {
    /// Human-readable codec name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Compresses `data`, which must contain exactly `shape.len()` values.
    fn compress(&self, data: &[f64], shape: Shape) -> Vec<u8>;

    /// Decompresses a buffer produced by [`Codec::compress`] with the same
    /// `shape`. Malformed or truncated input yields a [`DecodeError`];
    /// decoders must never panic on untrusted bytes.
    fn decompress(&self, bytes: &[u8], shape: Shape) -> DecodeResult<Vec<f64>>;

    /// Compression ratio achieved on `data`: original bytes / compressed
    /// bytes.
    fn ratio(&self, data: &[f64], shape: Shape) -> f64 {
        let c = self.compress(data, shape);
        (data.len() * 8) as f64 / c.len().max(1) as f64
    }
}

/// Enumeration of the three compressors for experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressorKind {
    /// SZ-like prediction-based lossy compressor.
    Sz,
    /// ZFP-like transform-based lossy compressor.
    Zfp,
    /// FPC lossless compressor.
    Fpc,
}

impl CompressorKind {
    /// All three kinds, in the order the paper's figures list them.
    pub const ALL: [CompressorKind; 3] =
        [CompressorKind::Sz, CompressorKind::Zfp, CompressorKind::Fpc];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CompressorKind::Sz => "SZ",
            CompressorKind::Zfp => "ZFP",
            CompressorKind::Fpc => "FPC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_idx() {
        let s = Shape::d3(4, 3, 2);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndims(), 3);
        assert_eq!(s.idx(0, 0, 0), 0);
        assert_eq!(s.idx(3, 2, 1), 23);
        assert_eq!(s.idx(1, 1, 1), 12 + 4 + 1);
    }

    #[test]
    fn shape_ndims() {
        assert_eq!(Shape::d1(10).ndims(), 1);
        assert_eq!(Shape::d2(10, 2).ndims(), 2);
        assert_eq!(Shape::d3(10, 1, 2).ndims(), 3);
        assert_eq!(Shape::d1(1).ndims(), 1);
    }

    #[test]
    fn compressor_kind_names() {
        assert_eq!(CompressorKind::Sz.name(), "SZ");
        assert_eq!(CompressorKind::ALL.len(), 3);
    }
}
