//! FPC: lossless compressor for IEEE-754 doubles.
//!
//! Reimplements Burtscher & Ratanaworabhan (IEEE TC 2009): each double is
//! predicted by two hash-table predictors — **FCM** (finite context on
//! recent values) and **DFCM** (finite context on recent deltas) — the
//! closer prediction is XORed with the true value, and the residual is
//! stored as a 4-bit header (1 predictor-selector bit + 3-bit
//! leading-zero-byte count) plus the non-zero low bytes.
//!
//! The paper runs FPC at *level 20 with a 2^24-byte table*; [`Fpc::new`]
//! takes the same level parameter (log2 of table entries).

use crate::error::{DecodeError, DecodeResult};
use crate::{Codec, Shape};

/// FPC codec with a configurable table size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fpc {
    /// log2 of the number of entries in each predictor table.
    level: u32,
}

impl Default for Fpc {
    fn default() -> Self {
        Self::new(20)
    }
}

impl Fpc {
    /// Creates an FPC codec. `level` is the log2 of predictor-table
    /// entries, clamped to 4..=24 (level 20 matches the paper's setup:
    /// 2^20 entries x 8 bytes = 2^23 bytes per table, two tables = 2^24
    /// bytes total).
    pub fn new(level: u32) -> Self {
        Self {
            level: level.clamp(4, 24),
        }
    }

    fn table_entries(&self) -> usize {
        1usize << self.level
    }
}

struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
    mask: usize,
}

impl Predictors {
    fn new(entries: usize) -> Self {
        Self {
            fcm: vec![0; entries],
            dfcm: vec![0; entries],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
            mask: entries - 1,
        }
    }

    /// Returns (fcm prediction, dfcm prediction) for the next value.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Feeds the true value through both predictors (identical on encode
    /// and decode paths).
    #[inline]
    fn update(&mut self, val: u64) {
        self.fcm[self.fcm_hash] = val;
        self.fcm_hash = ((self.fcm_hash << 6) ^ (val >> 48) as usize) & self.mask;
        let delta = val.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40) as usize) & self.mask;
        self.last = val;
    }
}

/// Encodes a leading-zero-byte count (0..=8, 4 excluded) into 3 bits.
#[inline]
fn encode_lzb(cnt: u32) -> u32 {
    let cnt = if cnt == 4 { 3 } else { cnt };
    if cnt > 4 {
        cnt - 1
    } else {
        cnt
    }
}

/// Inverse of [`encode_lzb`].
#[inline]
fn decode_lzb(code: u32) -> u32 {
    if code > 3 {
        code + 1
    } else {
        code
    }
}

impl Codec for Fpc {
    fn name(&self) -> &'static str {
        "FPC"
    }

    fn compress(&self, data: &[f64], shape: Shape) -> Vec<u8> {
        assert_eq!(data.len(), shape.len(), "fpc: data/shape mismatch");
        let n = data.len();
        let mut pred = Predictors::new(self.table_entries());

        let header_len = n.div_ceil(2);
        let mut headers = vec![0u8; header_len];
        let mut residuals: Vec<u8> = Vec::with_capacity(n * 4);

        for (i, &v) in data.iter().enumerate() {
            let val = v.to_bits();
            let (p1, p2) = pred.predict();
            let x1 = val ^ p1;
            let x2 = val ^ p2;
            let (sel, xor) = if x1 <= x2 { (0u8, x1) } else { (1u8, x2) };
            let lzb = (xor.leading_zeros() / 8).min(8);
            let code = encode_lzb(lzb);
            let nbytes = 8 - decode_lzb(code); // bytes actually stored
            let nibble = (sel << 3) | code as u8;
            if i % 2 == 0 {
                headers[i / 2] = nibble << 4;
            } else {
                headers[i / 2] |= nibble;
            }
            // Store the low `nbytes` bytes, most significant first.
            for b in (0..nbytes).rev() {
                residuals.push((xor >> (8 * b)) as u8);
            }
            pred.update(val);
        }

        let mut out = Vec::with_capacity(8 + headers.len() + residuals.len());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&headers);
        out.extend_from_slice(&residuals);
        out
    }

    fn decompress(&self, bytes: &[u8], shape: Shape) -> DecodeResult<Vec<f64>> {
        let head: [u8; 8] = bytes
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or(DecodeError::Truncated { what: "fpc header" })?;
        let n64 = u64::from_le_bytes(head);
        if n64 != shape.len() as u64 {
            return Err(DecodeError::ShapeMismatch {
                expected: shape.len(),
                found: usize::try_from(n64).unwrap_or(usize::MAX),
            });
        }
        let n = shape.len();
        let header_len = n.div_ceil(2);
        let headers =
            bytes
                .get(8..8usize.saturating_add(header_len))
                .ok_or(DecodeError::Truncated {
                    what: "fpc nibble headers",
                })?;
        let mut rpos = 8 + header_len;

        let mut pred = Predictors::new(self.table_entries());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let nibble = if i % 2 == 0 {
                // lint:allow(no-index): i / 2 < header_len = ceil(n / 2) by construction
                headers[i / 2] >> 4
            } else {
                // lint:allow(no-index): i / 2 < header_len = ceil(n / 2) by construction
                headers[i / 2] & 0xf
            };
            let sel = (nibble >> 3) & 1;
            let code = (nibble & 0x7) as u32;
            let nbytes = (8 - decode_lzb(code)) as usize;
            let mut xor = 0u64;
            for _ in 0..nbytes {
                let b = *bytes.get(rpos).ok_or(DecodeError::Truncated {
                    what: "fpc residual bytes",
                })?;
                xor = (xor << 8) | b as u64;
                rpos += 1;
            }
            let (p1, p2) = pred.predict();
            let p = if sel == 0 { p1 } else { p2 };
            let val = xor ^ p;
            out.push(f64::from_bits(val));
            pred.update(val);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) {
        let shape = Shape::d1(data.len());
        let f = Fpc::new(16);
        let c = f.compress(data, shape);
        let d = f.decompress(&c, shape).expect("decode");
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_is_bit_exact_on_smooth_data() {
        let data: Vec<f64> = (0..5000)
            .map(|i| (i as f64 * 0.001).sin() * 100.0)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_handles_special_values() {
        roundtrip(&[
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            1e-310, // subnormal
            f64::MAX,
        ]);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[42.0]);
    }

    #[test]
    fn roundtrip_random_bits() {
        let mut rng = lrm_rng::Rng64::new(13);
        let data: Vec<f64> = (0..2000).map(|_| rng.any_f64_bits()).collect();
        roundtrip(&data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<f64> = (0..8000).map(|i| (i % 16) as f64).collect();
        let f = Fpc::new(16);
        let ratio = f.ratio(&data, Shape::d1(data.len()));
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn random_data_does_not_explode() {
        let mut rng = lrm_rng::Rng64::new(14);
        let data: Vec<f64> = rng.vec_f64(-1.0, 1.0, 4000);
        let f = Fpc::default();
        let c = f.compress(&data, Shape::d1(data.len()));
        // Worst case: 0.5 header byte + 8 residual bytes per value + 8.
        assert!(c.len() <= data.len() * 9 + 8);
    }

    #[test]
    fn short_input_is_truncated_error() {
        let f = Fpc::new(12);
        for len in 0..8 {
            let r = f.decompress(&vec![0u8; len], Shape::d1(4));
            assert_eq!(
                r,
                Err(DecodeError::Truncated { what: "fpc header" }),
                "len {len}"
            );
        }
    }

    #[test]
    fn count_mismatch_is_shape_error() {
        let f = Fpc::new(12);
        let data = [1.0, 2.0, 3.0];
        let c = f.compress(&data, Shape::d1(3));
        assert_eq!(
            f.decompress(&c, Shape::d1(5)),
            Err(DecodeError::ShapeMismatch {
                expected: 5,
                found: 3,
            })
        );
    }

    #[test]
    fn truncated_residuals_are_error_not_panic() {
        let f = Fpc::new(12);
        let data: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        let shape = Shape::d1(data.len());
        let c = f.compress(&data, shape);
        for cut in 0..c.len() {
            assert!(f.decompress(&c[..cut], shape).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn lzb_code_roundtrip() {
        for cnt in [0u32, 1, 2, 3, 5, 6, 7, 8] {
            assert_eq!(decode_lzb(encode_lzb(cnt)), cnt);
        }
        // Count 4 is stored as 3 (one extra zero byte stored).
        assert_eq!(decode_lzb(encode_lzb(4)), 3);
    }

    #[test]
    fn level_is_clamped() {
        assert_eq!(Fpc::new(0).table_entries(), 16);
        assert_eq!(Fpc::new(99).table_entries(), 1 << 24);
        assert_eq!(Fpc::new(20).table_entries(), 1 << 20);
    }

    #[test]
    fn smoother_deltas_compress_better() {
        // Constant-step ramp: DFCM predicts perfectly after warm-up.
        let ramp: Vec<f64> = (0..4000).map(|i| i as f64).collect();
        let mut rng = lrm_rng::Rng64::new(15);
        let noise: Vec<f64> = rng.vec_f64(0.0, 4000.0, 4000);
        let f = Fpc::new(18);
        let shape = Shape::d1(4000);
        assert!(f.ratio(&ramp, shape) > 1.5 * f.ratio(&noise, shape));
    }

    #[test]
    fn prop_bit_exact_roundtrip_any_bits() {
        // Full IEEE-754 domain: subnormals, infinities, NaNs included.
        for seed in 0..48u64 {
            let mut rng = lrm_rng::Rng64::new(seed);
            let n = rng.range_usize(500);
            let data: Vec<f64> = (0..n).map(|_| rng.any_f64_bits()).collect();
            let shape = Shape::d1(data.len());
            let f = Fpc::new(12);
            let d = f
                .decompress(&f.compress(&data, shape), shape)
                .expect("decode");
            for (a, b) in data.iter().zip(&d) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
