//! Typed decode failures shared by every decoder in the workspace.
//!
//! Decoders in this workspace consume untrusted bytes (artifacts read
//! back from disk, streams received over the wire), so they must never
//! panic on malformed input. Every decode path returns
//! [`DecodeResult`]; the `lrm-lint` tool (see `lint.toml` at the repo
//! root) statically enforces that registered decode modules contain no
//! `unwrap`/`expect`/`panic!`/unchecked indexing.

use std::fmt;

/// Why a decode failed. Carries `&'static str` context so constructing
/// an error never allocates on the (possibly adversarial) failure path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before a required field or payload.
    Truncated {
        /// What was being read when the stream ran out.
        what: &'static str,
    },
    /// A field held a value no encoder produces (bad magic, impossible
    /// count, out-of-range distance, ...).
    Corrupt {
        /// Which invariant the stream violated.
        what: &'static str,
    },
    /// A tag/discriminant byte outside the known set.
    UnknownTag {
        /// Which tag field was being decoded.
        what: &'static str,
        /// The unrecognized value.
        tag: u8,
    },
    /// A container version newer than this decoder understands.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u8,
        /// Newest version this build decodes.
        supported: u8,
    },
    /// The caller-supplied shape disagrees with the encoded element
    /// count.
    ShapeMismatch {
        /// Elements implied by the caller's shape.
        expected: usize,
        /// Elements recorded in the stream.
        found: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { what } => {
                write!(f, "truncated stream while reading {what}")
            }
            DecodeError::Corrupt { what } => write!(f, "corrupt stream: {what}"),
            DecodeError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag}")
            }
            DecodeError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build decodes <= {supported})"
                )
            }
            DecodeError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "shape mismatch: caller expects {expected} elements, stream holds {found}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Convenience alias used by every decode path.
pub type DecodeResult<T> = Result<T, DecodeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            DecodeError::Truncated { what: "header" }.to_string(),
            DecodeError::Corrupt { what: "bad magic" }.to_string(),
            DecodeError::UnknownTag {
                what: "codec",
                tag: 9,
            }
            .to_string(),
            DecodeError::UnsupportedVersion {
                found: 3,
                supported: 1,
            }
            .to_string(),
            DecodeError::ShapeMismatch {
                expected: 8,
                found: 4,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("header"));
        assert!(msgs[1].contains("bad magic"));
        assert!(msgs[2].contains('9'));
        assert!(msgs[3].contains('3') && msgs[3].contains('1'));
        assert!(msgs[4].contains('8') && msgs[4].contains('4'));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(DecodeError::Truncated { what: "x" });
        assert!(e.to_string().contains("truncated"));
    }
}
