//! Corruption-robustness harness for the codec layer.
//!
//! The decode-path contract (DESIGN.md, enforced statically by
//! `lrm-lint`) says corrupt or truncated input maps to a `DecodeError`,
//! never a panic, abort, or unbounded allocation. This suite drives the
//! dynamic side of that contract: every codec decodes
//!
//! * **every strict prefix** of a valid stream (must be `Err` — each
//!   format either length-prefixes its payload or pins the element
//!   count, so losing any tail byte is detectable), and
//! * **≥ 1000 deterministically mutated streams** (random byte flips
//!   from `lrm-rng`) plus pure-garbage streams, which may decode to
//!   nonsense (`Ok`) or fail (`Err`) but must never panic.

use lrm_compress::lossless::{pipeline_compress, pipeline_decompress};
use lrm_compress::{Codec, Fpc, Shape, Sz, Zfp};
use lrm_rng::Rng64;

const FLIP_TRIALS: usize = 1200;
const GARBAGE_TRIALS: usize = 500;

/// Every codec configuration the workspace ships, under one trait.
fn codecs() -> Vec<(&'static str, Box<dyn Codec>)> {
    vec![
        ("sz-abs", Box::new(Sz::absolute(1e-3))),
        ("sz-blockrel", Box::new(Sz::block_rel(1e-4))),
        ("sz-pwrel", Box::new(Sz::pointwise_rel(1e-4))),
        ("zfp-precision", Box::new(Zfp::fixed_precision(16))),
        ("zfp-accuracy", Box::new(Zfp::fixed_accuracy(1e-6))),
        ("fpc", Box::new(Fpc::new(16))),
    ]
}

/// Smooth field plus noise: realistic enough that every codec exercises
/// its full encode path (runs, literals, exponent spread).
fn test_field(rng: &mut Rng64, shape: Shape) -> Vec<f64> {
    (0..shape.len())
        .map(|i| {
            let x = i as f64 * 0.07;
            (x.sin() * 40.0) + (x * 0.35).cos() * 9.0 + rng.range_f64(-0.5, 0.5)
        })
        .collect()
}

/// Mutates 1–4 bytes of `stream` in place with non-zero xor masks.
fn flip_bytes(rng: &mut Rng64, stream: &mut [u8]) {
    if stream.is_empty() {
        return;
    }
    for _ in 0..1 + rng.range_usize(4) {
        let at = rng.range_usize(stream.len());
        let mask = 1 + rng.range_usize(255) as u8;
        stream[at] ^= mask;
    }
}

#[test]
fn every_prefix_truncation_is_an_error() {
    let shape = Shape::d3(7, 6, 5);
    let mut rng = Rng64::new(0xC0_FFEE);
    let data = test_field(&mut rng, shape);
    for (name, codec) in codecs() {
        let stream = codec.compress(&data, shape);
        for cut in 0..stream.len() {
            assert!(
                codec.decompress(&stream[..cut], shape).is_err(),
                "{name}: prefix of {cut}/{} bytes decoded Ok",
                stream.len()
            );
        }
        // The intact stream still decodes, so the loop above really did
        // exercise the success path's neighborhood.
        assert!(
            codec.decompress(&stream, shape).is_ok(),
            "{name}: intact stream"
        );
    }
}

#[test]
fn thousand_byte_flipped_streams_never_panic() {
    let shape = Shape::d3(6, 5, 4);
    let mut rng = Rng64::new(0xBAD_5EED);
    let data = test_field(&mut rng, shape);
    for (name, codec) in codecs() {
        let stream = codec.compress(&data, shape);
        for trial in 0..FLIP_TRIALS {
            let mut mutated = stream.clone();
            flip_bytes(&mut rng, &mut mutated);
            // Ok-with-garbage and Err are both acceptable; a panic or
            // wrong-length success is not.
            if let Ok(out) = codec.decompress(&mutated, shape) {
                assert_eq!(
                    out.len(),
                    shape.len(),
                    "{name}: trial {trial} decoded to the wrong length"
                );
            }
        }
    }
}

#[test]
fn pure_garbage_streams_never_panic() {
    let shape = Shape::d2(16, 16);
    let mut rng = Rng64::new(0xD15EA5E);
    for (name, codec) in codecs() {
        for trial in 0..GARBAGE_TRIALS {
            let len = rng.range_usize(512);
            let garbage = rng.vec_u8(len);
            if let Ok(out) = codec.decompress(&garbage, shape) {
                assert_eq!(
                    out.len(),
                    shape.len(),
                    "{name}: garbage trial {trial} decoded to the wrong length"
                );
            }
        }
    }
}

#[test]
fn lossless_pipeline_survives_truncation_and_flips() {
    let mut rng = Rng64::new(0x10_55);
    // Compressible payload so the LZSS branch (tag 1) is exercised…
    let compressible: Vec<u8> = (0..4096).map(|i| (i % 9) as u8).collect();
    // …and incompressible so the raw branch (tag 0) is too.
    let incompressible = rng.vec_u8(2048);
    for data in [compressible, incompressible] {
        let stream = pipeline_compress(&data);
        for cut in 0..stream.len() {
            // The raw branch stores bytes verbatim, so a truncated
            // stream legitimately decodes to a strict prefix of the
            // original payload — but never to anything else.
            if let Ok(out) = pipeline_decompress(&stream[..cut]) {
                assert!(out.len() < data.len(), "prefix decoded to full length");
                assert_eq!(out.as_slice(), &data[..out.len()]);
            }
        }
        for _ in 0..FLIP_TRIALS {
            let mut mutated = stream.clone();
            flip_bytes(&mut rng, &mut mutated);
            let _ = pipeline_decompress(&mutated);
        }
    }
}
