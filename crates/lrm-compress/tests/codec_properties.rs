//! Cross-codec property tests: every codec honors its contract on
//! arbitrary shaped data, including adversarial shapes.

use lrm_compress::{Codec, Fpc, Shape, Sz, Zfp};
use lrm_rng::Rng64;

/// Random data with a random 1-D/2-D/3-D shape — same distribution the
/// original proptest strategy produced.
fn shaped_data(rng: &mut Rng64) -> (Vec<f64>, Shape) {
    let shape = match rng.range_usize(3) {
        0 => Shape::d1(1 + rng.range_usize(399)),
        1 => Shape::d2(1 + rng.range_usize(23), 1 + rng.range_usize(23)),
        _ => Shape::d3(
            1 + rng.range_usize(9),
            1 + rng.range_usize(9),
            2 + rng.range_usize(8),
        ),
    };
    let data = rng.vec_f64(-1e4, 1e4, shape.len());
    (data, shape)
}

const CASES: u64 = 32;

#[test]
fn fpc_is_lossless_on_any_shape() {
    for seed in 0..CASES {
        let (data, shape) = shaped_data(&mut Rng64::new(seed));
        let f = Fpc::new(12);
        let d = f
            .decompress(&f.compress(&data, shape), shape)
            .expect("decode");
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn sz_abs_bound_holds_on_any_shape() {
    for seed in 0..CASES {
        let (data, shape) = shaped_data(&mut Rng64::new(seed));
        let sz = Sz::absolute(1e-2);
        let d = sz
            .decompress(&sz.compress(&data, shape), shape)
            .expect("decode");
        for (a, b) in data.iter().zip(&d) {
            assert!((a - b).abs() <= 1e-2 * 1.000001, "{} vs {}", a, b);
        }
    }
}

#[test]
fn zfp_error_scales_with_magnitude_on_any_shape() {
    for seed in 0..CASES {
        let (data, shape) = shaped_data(&mut Rng64::new(seed));
        let z = Zfp::fixed_precision(40);
        let d = z
            .decompress(&z.compress(&data, shape), shape)
            .expect("decode");
        let maxv = data.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (a, b) in data.iter().zip(&d) {
            assert!((a - b).abs() <= maxv * 1e-8 + 1e-12, "{} vs {}", a, b);
        }
    }
}

#[test]
fn compressed_sizes_are_deterministic() {
    for seed in 0..CASES {
        let (data, shape) = shaped_data(&mut Rng64::new(seed));
        let sz = Sz::block_rel(1e-4);
        assert_eq!(sz.compress(&data, shape), sz.compress(&data, shape));
        let z = Zfp::fixed_precision(16);
        assert_eq!(z.compress(&data, shape), z.compress(&data, shape));
    }
}

#[test]
fn all_codecs_handle_single_value_fields() {
    let shape = Shape::d1(1);
    let data = [42.125f64];
    for c in [
        Box::new(Sz::absolute(1e-6)) as Box<dyn Codec>,
        Box::new(Sz::block_rel(1e-6)),
        Box::new(Sz::pointwise_rel(1e-6)),
        Box::new(Zfp::fixed_precision(52)),
        Box::new(Fpc::new(8)),
    ] {
        let d = c
            .decompress(&c.compress(&data, shape), shape)
            .expect("decode");
        assert!((d[0] - 42.125).abs() < 1e-3, "{}: {}", c.name(), d[0]);
    }
}

#[test]
fn all_codecs_handle_all_zero_fields() {
    let shape = Shape::d3(6, 5, 4);
    let data = vec![0.0f64; shape.len()];
    for c in [
        Box::new(Sz::absolute(1e-6)) as Box<dyn Codec>,
        Box::new(Sz::block_rel(1e-6)),
        Box::new(Sz::pointwise_rel(1e-6)),
        Box::new(Zfp::fixed_precision(16)),
        Box::new(Fpc::new(8)),
    ] {
        let bytes = c.compress(&data, shape);
        let d = c.decompress(&bytes, shape).expect("decode");
        assert!(d.iter().all(|&v| v == 0.0), "{}", c.name());
        assert!(
            bytes.len() < data.len(),
            "{} did not compress zeros",
            c.name()
        );
    }
}

#[test]
fn mixed_magnitudes_respect_block_rel_semantics() {
    // A field spanning 12 orders of magnitude: each scan block's error
    // must key off its own maximum, not the global one.
    let n = 2048usize;
    let shape = Shape::d1(n);
    let data: Vec<f64> = (0..n)
        .map(|i| {
            let block = i / 256;
            10f64.powi(block as i32 - 6) * ((i % 256) as f64 * 0.1).sin()
        })
        .collect();
    let sz = Sz::block_rel(1e-4);
    let d = sz
        .decompress(&sz.compress(&data, shape), shape)
        .expect("decode");
    for (b, chunk) in data.chunks(256).enumerate() {
        let maxv = chunk.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (j, &a) in chunk.iter().enumerate() {
            let got = d[b * 256 + j];
            assert!(
                (a - got).abs() <= 1e-4 * maxv * 1.01,
                "block {b}: {a} vs {got} (max {maxv})"
            );
        }
    }
}
