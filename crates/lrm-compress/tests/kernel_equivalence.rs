//! Differential suite: the word-level hot-path kernels must be
//! byte-identical to the retained scalar references in
//! `lrm_compress::reference` — on random streams and on chunks of the
//! nine paper datasets. Any divergence here means the rewritten kernels
//! changed the frozen bitstream formats.

use lrm_compress::bitstream::{BitReader, BitWriter};
use lrm_compress::lossless::{huffman_decode, huffman_encode, lzss_compress, lzss_decompress};
use lrm_compress::reference::{
    decode_ints_ref, encode_ints_ref, huffman_decode_ref, huffman_encode_ref, lzss_compress_ref,
    lzss_decompress_ref, RefBitReader, RefBitWriter,
};
use lrm_compress::zfp::codec::{decode_ints, encode_ints, int2uint};
use lrm_datasets::registry::{generate, DatasetKind, SizeClass};
use lrm_rng::Rng64;

// ---------------------------------------------------------------------------
// Bitstream: random op sequences, fast vs scalar, byte-identical.
// ---------------------------------------------------------------------------

#[test]
fn bitstream_writer_matches_reference_on_1k_random_streams() {
    let mut rng = Rng64::new(0xB17);
    for _ in 0..1000 {
        let mut fast = BitWriter::new();
        let mut slow = RefBitWriter::new();
        let ops = 1 + rng.range_usize(120);
        for _ in 0..ops {
            if rng.bool(0.25) {
                let b = rng.range_u64(2);
                fast.write_bit(b);
                slow.write_bit(b);
            } else {
                let n = rng.range_u64(65) as u32;
                let v = rng.next_u64();
                fast.write_bits(v, n);
                slow.write_bits(v, n);
            }
            assert_eq!(fast.len_bits(), slow.len_bits());
        }
        assert_eq!(fast.into_bytes(), slow.into_bytes());
    }
}

#[test]
fn bitstream_reader_matches_reference_on_1k_random_streams() {
    let mut rng = Rng64::new(0xB18);
    for _ in 0..1000 {
        let len = rng.range_usize(48);
        let bytes = rng.vec_u8(len);
        let mut fast = BitReader::new(&bytes);
        let mut slow = RefBitReader::new(&bytes);
        // Deliberately read ~25% past the end to cover zero-extension.
        let mut budget = bytes.len() * 10 + 80;
        while budget > 0 {
            let n = rng.range_u64(65) as u32;
            assert_eq!(fast.read_bits(n), slow.read_bits(n));
            assert_eq!(fast.bit_pos(), slow.bit_pos());
            budget = budget.saturating_sub(n.max(1) as usize);
        }
    }
}

#[test]
fn bitstream_append_matches_reference_stitching() {
    // The ZFP compressor stitches parallel block groups with append();
    // the joined stream must match bit-by-bit re-emission.
    let mut rng = Rng64::new(0xB19);
    for _ in 0..200 {
        let mut parts: Vec<Vec<(u64, u32)>> = Vec::new();
        for _ in 0..1 + rng.range_usize(4) {
            let vals = (0..rng.range_usize(60))
                .map(|_| (rng.next_u64(), 1 + rng.range_u64(64) as u32))
                .collect();
            parts.push(vals);
        }
        let mut stitched = BitWriter::new();
        let mut flat = RefBitWriter::new();
        for part in &parts {
            let mut w = BitWriter::new();
            for &(v, n) in part {
                w.write_bits(v, n);
                flat.write_bits(v, n);
            }
            stitched.append(&w);
        }
        assert_eq!(stitched.into_bytes(), flat.into_bytes());
    }
}

// ---------------------------------------------------------------------------
// Huffman: encode bytes and decode results, fast vs scalar.
// ---------------------------------------------------------------------------

#[test]
fn huffman_matches_reference_on_1k_random_streams() {
    let mut rng = Rng64::new(0x4F);
    for i in 0..1000 {
        // Sweep alphabet regimes: tiny, SZ-like dense, and sparse-huge.
        let syms: Vec<u64> = match i % 3 {
            0 => (0..rng.range_usize(400))
                .map(|_| rng.range_u64(4))
                .collect(),
            1 => (0..rng.range_usize(400))
                .map(|_| 32768 + rng.range_u64(200))
                .collect(),
            _ => (0..rng.range_usize(100))
                .map(|_| rng.next_u64() >> rng.range_u64(60))
                .collect(),
        };
        let fast = huffman_encode(&syms);
        assert_eq!(fast, huffman_encode_ref(&syms), "stream {i}");
        assert_eq!(huffman_decode(&fast), huffman_decode_ref(&fast));
        assert_eq!(huffman_decode(&fast), Ok(syms));
    }
}

#[test]
fn huffman_decode_matches_reference_on_corrupted_streams() {
    let syms: Vec<u64> = (0..2000).map(|i| (i * i) % 97).collect();
    let good = huffman_encode(&syms);
    let mut rng = Rng64::new(0x50);
    for _ in 0..600 {
        let mut bad = good.clone();
        for _ in 0..1 + rng.range_usize(3) {
            let i = rng.range_usize(bad.len());
            bad[i] ^= 1 << rng.range_u64(8);
        }
        assert_eq!(huffman_decode(&bad), huffman_decode_ref(&bad));
    }
    for cut in 0..good.len().min(300) {
        assert_eq!(
            huffman_decode(&good[..cut]),
            huffman_decode_ref(&good[..cut])
        );
    }
}

// ---------------------------------------------------------------------------
// LZSS: compressed bytes and decode results, fast vs scalar.
// ---------------------------------------------------------------------------

#[test]
fn lzss_matches_reference_on_1k_random_streams() {
    let mut rng = Rng64::new(0x17);
    for i in 0..1000 {
        let n = rng.range_usize(3000);
        let data: Vec<u8> = match i % 3 {
            0 => rng.vec_u8(n),                                      // noise
            1 => (0..n).map(|j| (j % (1 + i % 40)) as u8).collect(), // periodic
            _ => (0..n).map(|_| rng.range_u64(4) as u8).collect(),   // tiny alphabet
        };
        let fast = lzss_compress(&data);
        assert_eq!(fast, lzss_compress_ref(&data), "stream {i}");
        assert_eq!(lzss_decompress(&fast), lzss_decompress_ref(&fast));
        assert_eq!(lzss_decompress(&fast), Ok(data));
    }
}

// ---------------------------------------------------------------------------
// ZFP plane coder: encoded planes and decoded coefficients, fast vs scalar.
// ---------------------------------------------------------------------------

#[test]
fn zfp_plane_coder_matches_reference_on_1k_random_blocks() {
    let mut rng = Rng64::new(0x2F);
    for i in 0..1000 {
        let size = [4usize, 16, 64][i % 3];
        // Negabinary-mapped 62-bit fixed-point values, with occasional
        // all-zero and sparse blocks.
        let uints: Vec<u64> = (0..size)
            .map(|_| {
                if rng.bool(0.2) {
                    0
                } else {
                    int2uint((rng.next_u64() >> rng.range_u64(62)) as i64)
                }
            })
            .collect();
        let maxprec = 1 + rng.range_u64(64) as u32;

        let mut fast_w = BitWriter::new();
        encode_ints(&uints, maxprec, &mut fast_w);
        let mut ref_w = BitWriter::new();
        encode_ints_ref(&uints, maxprec, &mut ref_w);
        assert_eq!(fast_w.len_bits(), ref_w.len_bits(), "block {i}");
        let bytes = fast_w.into_bytes();
        assert_eq!(bytes, ref_w.into_bytes(), "block {i}");

        let mut fast_out = vec![0u64; size];
        decode_ints(&mut fast_out, maxprec, &mut BitReader::new(&bytes));
        let mut ref_out = vec![0u64; size];
        decode_ints_ref(&mut ref_out, maxprec, &mut BitReader::new(&bytes));
        assert_eq!(fast_out, ref_out, "block {i}");
    }
}

// ---------------------------------------------------------------------------
// Real dataset chunks: every kernel family over the paper's nine fields.
// ---------------------------------------------------------------------------

#[test]
fn kernels_match_reference_on_dataset_chunks() {
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Tiny).full;

        // LZSS over the raw little-endian bytes of the field (the shape
        // SZ's final stage sees after Huffman).
        let bytes: Vec<u8> = field
            .data
            .iter()
            .take(4096)
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let fast = lzss_compress(&bytes);
        assert_eq!(fast, lzss_compress_ref(&bytes), "{kind:?} lzss");
        assert_eq!(lzss_decompress(&fast), lzss_decompress_ref(&fast));

        // Huffman over SZ-like quantization codes derived from the field.
        let lo = field.data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = field.data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let scale = if hi > lo { 65535.0 / (hi - lo) } else { 0.0 };
        let codes: Vec<u64> = field
            .data
            .iter()
            .take(8192)
            .map(|v| ((v - lo) * scale) as u64)
            .collect();
        let fast = huffman_encode(&codes);
        assert_eq!(fast, huffman_encode_ref(&codes), "{kind:?} huffman");
        assert_eq!(huffman_decode(&fast), huffman_decode_ref(&fast));
        assert_eq!(huffman_decode(&fast), Ok(codes));

        // ZFP plane coder over gathered 4^d blocks of the field.
        let ndims = field.shape.ndims();
        let bsize = 1usize << (2 * ndims);
        let mut blk = vec![0.0f64; bsize];
        let mut fast_w = BitWriter::new();
        let mut ref_w = BitWriter::new();
        for b in lrm_compress::zfp::block::block_coords(field.shape).take(64) {
            lrm_compress::zfp::block::gather(&field.data, field.shape, b, &mut blk);
            // Same fixed-point mapping encode_block uses, with a nominal
            // block exponent: the plane coder only sees integers.
            let uints: Vec<u64> = blk.iter().map(|&v| int2uint((v * 1e6) as i64)).collect();
            encode_ints(&uints, 16, &mut fast_w);
            encode_ints_ref(&uints, 16, &mut ref_w);
        }
        let fast_bytes = fast_w.into_bytes();
        assert_eq!(fast_bytes, ref_w.into_bytes(), "{kind:?} zfp planes");
    }
}

// ---------------------------------------------------------------------------
// Whole-codec safety net: artifacts encoded by the word-level kernels
// still decode through the public Codec API on every dataset.
// ---------------------------------------------------------------------------

#[test]
fn codecs_roundtrip_every_dataset_after_rewrite() {
    use lrm_compress::{Codec, Fpc, Sz, Zfp};
    for kind in DatasetKind::ALL {
        let field = generate(kind, SizeClass::Tiny).full;
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(Sz::block_rel(1e-5)),
            Box::new(Zfp::fixed_precision(16)),
            Box::new(Fpc::new(20)),
        ];
        for c in &codecs {
            let enc = c.compress(&field.data, field.shape);
            let dec = c
                .decompress(&enc, field.shape)
                .unwrap_or_else(|e| panic!("{kind:?}/{}: {e:?}", c.name()));
            assert_eq!(dec.len(), field.data.len(), "{kind:?}/{}", c.name());
        }
    }
}
