//! Deterministic pseudo-random numbers with zero dependencies.
//!
//! The workspace needs randomness in two places: the randomized-SVD
//! sketch (`lrm-linalg`) and the synthetic dataset generators
//! (`lrm-datasets`), plus seeded random inputs across the test suites.
//! This crate provides a small, reproducible generator —
//! **xoshiro256++** (Blackman & Vigna) seeded through **SplitMix64** —
//! so the whole repository builds without the `rand` crate and every
//! random sequence is stable across platforms and releases.

/// A seeded xoshiro256++ generator.
///
/// The same seed always yields the same sequence; distinct seeds yield
/// statistically independent streams for any practical purpose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<u64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion guarantees a non-zero xoshiro state even
        // for seed 0 and decorrelates nearby seeds.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64: empty range");
        // Widening-multiply rejection (Lemire); bias-free.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`. `n` must be non-zero.
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal (mean 0, variance 1) via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return f64::from_bits(bits);
        }
        // Draw in (0, 1] for u1 so ln(u1) is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// A vector of `len` uniform doubles in `[lo, hi)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.range_f64(lo, hi)).collect()
    }

    /// A vector of `len` uniform bytes.
    pub fn vec_u8(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// An `f64` with fully random bits — may be subnormal, infinite, or
    /// NaN. Used to exercise lossless codecs over the entire IEEE-754
    /// domain.
    pub fn any_f64_bits(&mut self) -> f64 {
        f64::from_bits(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(first.iter().any(|&v| v != 0));
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut r = Rng64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_is_bounded_and_covers() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range_u64(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = Rng64::new(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let v = r.range_f64(-3.0, 17.0);
            assert!((-3.0..17.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::new(1).range_u64(0);
    }
}
