//! Property-based tests of the linear-algebra invariants the
//! preconditioners rely on.

use lrm_linalg::{svd, symmetric_eigen, Matrix, Pca};
use lrm_rng::Rng64;

/// Random matrix with dimensions in `[2, max_m) × [2, max_n)` and
/// entries uniform in `[-100, 100)`.
fn random_matrix(rng: &mut Rng64, max_m: usize, max_n: usize) -> Matrix {
    let m = 2 + rng.range_usize(max_m - 2);
    let n = 2 + rng.range_usize(max_n - 2);
    let data = rng.vec_f64(-100.0, 100.0, m * n);
    Matrix::from_vec(m, n, data)
}

const CASES: u64 = 24;

#[test]
fn transpose_reverses_matmul() {
    // (A·B)ᵀ = Bᵀ·Aᵀ
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_matrix(&mut rng, 8, 8);
        let b_cols = 2 + rng.range_usize(4);
        let b = Matrix::from_fn(a.cols(), b_cols, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        assert!(ab_t.sub(&bt_at).fro_norm() < 1e-9 * (1.0 + ab_t.fro_norm()));
    }
}

#[test]
fn matmul_is_associative() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_matrix(&mut rng, 6, 5);
        let b = Matrix::from_fn(a.cols(), 4, |r, c| (r + 2 * c) as f64 * 0.5 - 2.0);
        let c = Matrix::from_fn(4, 3, |r, c| (r * c) as f64 * 0.25 + 1.0);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.sub(&right).fro_norm() < 1e-8 * (1.0 + left.fro_norm()));
    }
}

#[test]
fn eigen_reconstructs_any_symmetric_matrix() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_matrix(&mut rng, 7, 7);
        // Symmetrize.
        let n = a.rows().min(a.cols());
        let s = Matrix::from_fn(n, n, |r, c| 0.5 * (a.get(r, c) + a.get(c, r)));
        let e = symmetric_eigen(&s);
        let d = Matrix::from_fn(n, n, |r, c| if r == c { e.values[r] } else { 0.0 });
        let rec = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        assert!(s.sub(&rec).fro_norm() < 1e-7 * (1.0 + s.fro_norm()));
    }
}

#[test]
fn svd_singular_values_bound_the_spectral_content() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_matrix(&mut rng, 10, 6);
        let d = svd(&a);
        // ‖A‖_F² = Σ σᵢ².
        let fro2: f64 = a.fro_norm().powi(2);
        let sig2: f64 = d.sigma.iter().map(|s| s * s).sum();
        assert!((fro2 - sig2).abs() < 1e-7 * (1.0 + fro2));
        // The largest singular value dominates every entry: σ₁ >= max |a_ij|.
        let max_entry = a.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(d.sigma[0] + 1e-9 >= max_entry);
    }
}

#[test]
fn pca_reconstruction_error_is_tail_variance() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_matrix(&mut rng, 12, 5);
        // Full-rank PCA reconstruction is exact.
        let pca = Pca::fit(&a);
        let k = a.cols();
        let rec = pca.inverse_transform(&pca.transform(&a, k));
        assert!(a.sub(&rec).fro_norm() < 1e-7 * (1.0 + a.fro_norm()));
    }
}

#[test]
fn svd_truncation_error_matches_discarded_sigma() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_matrix(&mut rng, 9, 5);
        let d = svd(&a);
        for k in 1..d.sigma.len() {
            let rec = d.reconstruct(k);
            let err2 = a.sub(&rec).fro_norm().powi(2);
            let tail2: f64 = d.sigma[k..].iter().map(|s| s * s).sum();
            assert!((err2 - tail2).abs() < 1e-6 * (1.0 + tail2));
        }
    }
}
