//! Dense linear algebra for the dimension-reduction preconditioners.
//!
//! The paper's PCA and SVD reduced models (Section V) need:
//!
//! * a dense [`Matrix`] with parallel products,
//! * a symmetric eigensolver ([`eigen::symmetric_eigen`], cyclic Jacobi)
//!   for PCA's covariance matrices,
//! * a singular value decomposition ([`svd::svd`], one-sided Jacobi) for
//!   the SVD preconditioner,
//! * [`pca::Pca`] tying them together with the 95 %-variance component
//!   rule the paper uses to select `k`.

pub mod eigen;
pub mod matrix;
pub mod pca;
pub mod qr;
pub mod rsvd;
pub mod svd;

pub use eigen::{symmetric_eigen, EigenDecomposition};
pub use matrix::Matrix;
pub use pca::Pca;
pub use qr::qr;
pub use rsvd::{randomized_svd, RsvdConfig};
pub use svd::{svd, Svd};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pca_and_svd_agree_on_dominant_subspace() {
        // For centered data, PCA eigenvalues = (singular values)^2 / (m-1).
        let m = 40;
        let data = Matrix::from_fn(m, 5, |r, c| {
            ((r as f64) * 0.21).sin() * (c as f64 + 1.0) + 0.05 * ((r * c) as f64).cos()
        });
        let pca = Pca::fit(&data);
        let centered = Matrix::from_fn(m, 5, |r, c| data.get(r, c) - pca.means[c]);
        let s = svd(&centered);
        for i in 0..5 {
            let from_svd = s.sigma[i] * s.sigma[i] / (m as f64 - 1.0);
            assert!(
                (pca.variances[i] - from_svd).abs() < 1e-9 * (1.0 + from_svd),
                "component {i}: {} vs {}",
                pca.variances[i],
                from_svd
            );
        }
    }
}
