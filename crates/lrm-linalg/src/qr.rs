//! Thin QR factorization by modified Gram–Schmidt.
//!
//! The randomized SVD needs an orthonormal basis of a sketch matrix's
//! column space; MGS is numerically adequate for the well-conditioned
//! Gaussian sketches it is applied to and keeps the implementation
//! dependency-free.

use crate::matrix::Matrix;

/// Thin QR: `a = Q · R` with `Q` (m×n) column-orthonormal and `R` (n×n)
/// upper triangular. Rank-deficient columns yield zero columns in `Q`
/// (and zero rows in `R`), which downstream truncation tolerates.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = (a.rows(), a.cols());
    let mut q = a.clone();
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        let orig_norm: f64 = (0..m).map(|row| q.get(row, j).powi(2)).sum::<f64>().sqrt();
        // Orthogonalize column j against the previous ones; a second pass
        // ("twice is enough") keeps Q orthonormal even when columns are
        // nearly dependent, which Gaussian sketches of low-rank matrices
        // routinely produce.
        for _pass in 0..2 {
            for i in 0..j {
                let mut dot = 0.0;
                for row in 0..m {
                    dot += q.get(row, i) * q.get(row, j);
                }
                r.set(i, j, r.get(i, j) + dot);
                for row in 0..m {
                    let v = q.get(row, j) - dot * q.get(row, i);
                    q.set(row, j, v);
                }
            }
        }
        let norm: f64 = (0..m).map(|row| q.get(row, j).powi(2)).sum::<f64>().sqrt();
        // Rank test relative to the column's original magnitude: what is
        // left after projection must be a real new direction, not noise.
        if norm > 1e-10 * orig_norm.max(1e-300) {
            r.set(j, j, norm);
            for row in 0..m {
                let v = q.get(row, j) / norm;
                q.set(row, j, v);
            }
        } else {
            r.set(j, j, 0.0);
            for row in 0..m {
                q.set(row, j, 0.0);
            }
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_fn(8, 5, |r, c| ((r * 3 + c * 7) as f64 * 0.19).sin() + 0.1);
        let (q, r) = qr(&a);
        let rec = q.matmul(&r);
        assert!(a.sub(&rec).fro_norm() < 1e-10 * (1.0 + a.fro_norm()));
    }

    #[test]
    fn q_is_column_orthonormal() {
        // Full-rank: distinct frequencies per column.
        let a = Matrix::from_fn(10, 4, |r, c| {
            ((r as f64 + 1.0) * (c as f64 + 1.0) * 0.37).cos()
        });
        let (q, _) = qr(&a);
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.sub(&Matrix::identity(4)).fro_norm() < 1e-10);
    }

    #[test]
    fn nearly_dependent_columns_stay_orthonormal_or_zero() {
        // Columns spanning a rank-2 space: surviving columns must be
        // orthonormal; the rest exactly zero.
        let a = Matrix::from_fn(12, 5, |r, c| (r as f64 - 2.0 * c as f64).cos());
        let (q, _) = qr(&a);
        let qtq = q.transpose().matmul(&q);
        for i in 0..5 {
            for j in 0..5 {
                let v = qtq.get(i, j);
                let want_one = i == j && qtq.get(i, i) > 0.5;
                if want_one {
                    assert!((v - 1.0).abs() < 1e-10, "({i},{j}) = {v}");
                } else if i != j {
                    assert!(v.abs() < 1e-10, "({i},{j}) = {v}");
                }
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(6, 6, |r, c| ((r + c * 2) as f64).sqrt() + 1.0);
        let (_, r) = qr(&a);
        for i in 1..6 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn rank_deficient_columns_become_zero() {
        // Third column = first + second.
        let a = Matrix::from_fn(5, 3, |r, c| match c {
            0 => r as f64,
            1 => 1.0,
            _ => r as f64 + 1.0,
        });
        let (q, r) = qr(&a);
        assert!(r.get(2, 2).abs() < 1e-10);
        // Reconstruction still holds.
        let rec = q.matmul(&r);
        assert!(a.sub(&rec).fro_norm() < 1e-9);
    }
}
