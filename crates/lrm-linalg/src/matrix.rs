//! Dense row-major matrices with the operations the reduction pipeline
//! needs: products (row-parallel on the workspace worker pool),
//! transposition, norms, and column-block extraction.

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given size.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * rhs`, parallelized over output rows on the
    /// workspace worker pool.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f64; m * n];
        let rows: Vec<&mut [f64]> = out.chunks_mut(n.max(1)).collect();
        lrm_parallel::WorkerPool::auto().run(rows, |r, out_row| {
            let a_row = &self.data[r * k..(r + 1) * k];
            // ikj order over the rhs rows keeps access contiguous.
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        Matrix {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// `self * v` for a column vector `v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Sub-matrix of the first `k` columns.
    pub fn take_cols(&self, k: usize) -> Matrix {
        assert!(k <= self.cols, "take_cols: k out of range");
        Matrix::from_fn(self.rows, k, |r, c| self.get(r, c))
    }

    /// Sub-matrix of the first `k` rows.
    pub fn take_rows(&self, k: usize) -> Matrix {
        assert!(k <= self.rows, "take_rows: k out of range");
        Matrix::from_fn(k, self.cols, |r, c| self.get(r, c))
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 7, |r, c| (r * 13 + c * 7) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_dims() {
        let a = Matrix::zeros(2, 5);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (5, 2));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f64);
        let v = vec![1.0, -1.0, 2.0, 0.5];
        let got = a.matvec(&v);
        let vm = Matrix::from_vec(4, 1, v);
        let want = a.matmul(&vm);
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn fro_norm_known() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn take_cols_and_rows() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let c = a.take_cols(2);
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert_eq!(c.row(1), &[3.0, 4.0]);
        let r = a.take_rows(1);
        assert_eq!(r.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn sub_and_scale() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        assert_eq!(a.sub(&b).as_slice(), &[0.5, 1.5, 2.5]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn parallel_matmul_matches_serial_reference() {
        let a = Matrix::from_fn(17, 23, |r, c| ((r * 31 + c * 17) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(23, 9, |r, c| ((r * 7 + c * 3) % 13) as f64 - 6.0);
        let c = a.matmul(&b);
        for r in 0..17 {
            for cc in 0..9 {
                let mut s = 0.0;
                for k in 0..23 {
                    s += a.get(r, k) * b.get(k, cc);
                }
                assert!((c.get(r, cc) - s).abs() < 1e-9);
            }
        }
    }
}
