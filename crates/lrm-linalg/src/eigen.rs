//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! PCA needs the eigenpairs of an `n × n` covariance matrix where `n` is a
//! grid extent (tens to a few hundred), well inside Jacobi's sweet spot.
//! The method applies Givens rotations to annihilate off-diagonal entries
//! until the off-diagonal Frobenius norm is negligible; it is
//! unconditionally stable for symmetric input.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ` with
/// eigenvalues sorted in descending order and eigenvectors as the columns
/// of `vectors` in matching order.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors (column i pairs with `values[i]`).
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// # Panics
/// Panics if `a` is not square or not (numerically) symmetric.
pub fn symmetric_eigen(a: &Matrix) -> EigenDecomposition {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigen: matrix must be square");
    let scale = a.fro_norm().max(1.0);
    for r in 0..n {
        for c in (r + 1)..n {
            assert!(
                (a.get(r, c) - a.get(c, r)).abs() <= 1e-8 * scale,
                "eigen: matrix must be symmetric"
            );
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;
    let tol = 1e-14 * scale;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m.get(r, c) * m.get(r, c);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle: tan(2θ) = 2 a_pq / (a_pp - a_qq).
                let theta = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = theta.sin_cos();
                // Apply Jᵀ M J on rows/cols p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp + s * mkq);
                    m.set(k, q, -s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk + s * mqk);
                    m.set(q, k, -s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp + s * vkq);
                    v.set(k, q, -s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract eigenpairs and sort by descending eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let values: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v.get(r, pairs[c].1));
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        let n = e.values.len();
        let d = Matrix::from_fn(n, n, |r, c| if r == c { e.values[r] } else { 0.0 });
        e.vectors.matmul(&d).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_entries() {
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { [2.0, 5.0, 1.0][r] } else { 0.0 });
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_fn(8, 8, |r, c| {
            let x = (r as f64 - c as f64).abs();
            (-x / 3.0).exp() + if r == c { 2.0 } else { 0.0 }
        });
        let e = symmetric_eigen(&a);
        let r = reconstruct(&e);
        assert!(a.sub(&r).fro_norm() < 1e-9 * a.fro_norm());
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(6, 6, |r, c| {
            ((r * c) as f64 * 0.3).sin() + ((c * r) as f64 * 0.3).sin()
        });
        let e = symmetric_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        let i = Matrix::identity(6);
        assert!(vtv.sub(&i).fro_norm() < 1e-9);
    }

    #[test]
    fn eigenvalues_descend() {
        let a = Matrix::from_fn(10, 10, |r, c| 1.0 / (1.0 + (r as f64 - c as f64).abs()));
        let e = symmetric_eigen(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_fn(7, 7, |r, c| if r == c { r as f64 + 1.0 } else { 0.1 });
        let e = symmetric_eigen(&a);
        let trace: f64 = (0..7).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be symmetric")]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        symmetric_eigen(&a);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rejects_non_square() {
        symmetric_eigen(&Matrix::zeros(2, 3));
    }
}
