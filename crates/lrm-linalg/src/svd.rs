//! Singular value decomposition by one-sided Jacobi.
//!
//! The SVD preconditioner (Section V-A2 of the paper) retains the `k`
//! largest singular values together with the matching `k` columns of `U`
//! and rows of `Vᵀ`. One-sided Jacobi orthogonalizes the columns of `A`
//! in place; it is accurate for the tall skinny matrices our reshaped
//! fields produce (rows = ny·nz, cols = nx).

use crate::matrix::Matrix;

/// `A = U · diag(σ) · Vᵀ` with `σ` descending, `U` (m×r) and `V` (n×r)
/// column-orthonormal, `r = min(m, n)`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (m × r).
    pub u: Matrix,
    /// Singular values, descending (length r).
    pub sigma: Vec<f64>,
    /// Right singular vectors (n × r); `Vᵀ` rows pair with `σ`.
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs the (possibly truncated) product `U Σ Vᵀ` using the
    /// top `k` singular triplets.
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..k {
            let s = self.sigma[t];
            if s == 0.0 {
                continue;
            }
            for r in 0..m {
                let us = self.u.get(r, t) * s;
                if us == 0.0 {
                    continue;
                }
                for c in 0..n {
                    out.set(r, c, out.get(r, c) + us * self.v.get(c, t));
                }
            }
        }
        out
    }

    /// Smallest `k` with `Σ_{i<k} σᵢ / Σ σᵢ >= fraction` (the paper's 95 %
    /// rule, applied to singular values). Returns at least 1 when any
    /// singular value is nonzero.
    pub fn rank_for_energy(&self, fraction: f64) -> usize {
        let total: f64 = self.sigma.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, &s) in self.sigma.iter().enumerate() {
            acc += s;
            if acc / total >= fraction {
                return i + 1;
            }
        }
        self.sigma.len()
    }

    /// Proportions `σᵢ / Σ σⱼ` (the series Fig. 8 plots).
    pub fn proportions(&self) -> Vec<f64> {
        let total: f64 = self.sigma.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.sigma.len()];
        }
        self.sigma.iter().map(|&s| s / total).collect()
    }
}

/// Computes the thin SVD of `a` by one-sided Jacobi.
pub fn svd(a: &Matrix) -> Svd {
    if a.rows() < a.cols() {
        // Work on the transpose and swap the factors back.
        let t = svd(&a.transpose());
        return Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        };
    }
    let (m, n) = (a.rows(), a.cols());
    let mut w = a.clone(); // columns will be orthogonalized in place
    let mut v = Matrix::identity(n);
    let eps = 1e-15;
    let max_sweeps = 60;

    for _ in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for r in 0..m {
                    let wp = w.get(r, p);
                    let wq = w.get(r, q);
                    alpha += wp * wp;
                    beta += wq * wq;
                    gamma += wp * wq;
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let wp = w.get(r, p);
                    let wq = w.get(r, q);
                    w.set(r, p, c * wp - s * wq);
                    w.set(r, q, s * wp + c * wq);
                }
                for r in 0..n {
                    let vp = v.get(r, p);
                    let vq = v.get(r, q);
                    v.set(r, p, c * vp - s * vq);
                    v.set(r, q, s * vp + c * vq);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values.
    let mut triplets: Vec<(f64, usize)> = (0..n)
        .map(|c| {
            let norm: f64 = (0..m)
                .map(|r| w.get(r, c) * w.get(r, c))
                .sum::<f64>()
                .sqrt();
            (norm, c)
        })
        .collect();
    triplets.sort_by(|a, b| b.0.total_cmp(&a.0));

    let sigma: Vec<f64> = triplets.iter().map(|&(s, _)| s).collect();
    let u = Matrix::from_fn(m, n, |r, c| {
        let (s, col) = triplets[c];
        if s > 0.0 {
            w.get(r, col) / s
        } else {
            0.0
        }
    });
    let vv = Matrix::from_fn(n, n, |r, c| v.get(r, triplets[c].1));
    Svd { u, sigma, v: vv }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.sub(b).fro_norm() <= tol * a.fro_norm().max(1.0),
            "matrices differ: {} vs tol {tol}",
            a.sub(b).fro_norm()
        );
    }

    #[test]
    fn full_reconstruction_is_exact() {
        let a = Matrix::from_fn(10, 4, |r, c| ((r * 3 + c * 5) as f64 * 0.17).sin());
        let d = svd(&a);
        assert_close(&a, &d.reconstruct(4), 1e-10);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let a = Matrix::from_fn(3, 8, |r, c| (r as f64 + 1.0) * (c as f64 - 3.0));
        let d = svd(&a);
        assert_eq!(d.u.rows(), 3);
        assert_eq!(d.v.rows(), 8);
        assert_close(&a, &d.reconstruct(3), 1e-10);
    }

    #[test]
    fn singular_values_descend_and_match_known_case() {
        // diag(3, 2) embedded in a 4x2: singular values 3, 2.
        let mut a = Matrix::zeros(4, 2);
        a.set(0, 0, 3.0);
        a.set(1, 1, 2.0);
        let d = svd(&a);
        assert!((d.sigma[0] - 3.0).abs() < 1e-12);
        assert!((d.sigma[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rank1_matrix_has_one_singular_value() {
        let a = Matrix::from_fn(6, 5, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0));
        let d = svd(&a);
        assert!(d.sigma[0] > 1.0);
        for &s in &d.sigma[1..] {
            assert!(s < 1e-10 * d.sigma[0], "sigma {s}");
        }
        // Rank-1 truncation reconstructs exactly.
        assert_close(&a, &d.reconstruct(1), 1e-10);
    }

    #[test]
    fn u_and_v_are_column_orthonormal() {
        let a = Matrix::from_fn(9, 5, |r, c| ((r * r + 2 * c) as f64).sqrt());
        let d = svd(&a);
        let utu = d.u.transpose().matmul(&d.u);
        let vtv = d.v.transpose().matmul(&d.v);
        assert_close(&utu, &Matrix::identity(5), 1e-9);
        assert_close(&vtv, &Matrix::identity(5), 1e-9);
    }

    #[test]
    fn truncation_error_decreases_with_k() {
        let a = Matrix::from_fn(20, 10, |r, c| {
            ((r as f64) * 0.3).sin() * ((c as f64) * 0.2).cos()
                + 0.1 * ((r * c) as f64 * 0.05).sin()
        });
        let d = svd(&a);
        let mut last = f64::INFINITY;
        for k in 1..=10 {
            let e = a.sub(&d.reconstruct(k)).fro_norm();
            assert!(e <= last + 1e-12, "k={k}");
            last = e;
        }
        assert!(last < 1e-10);
    }

    #[test]
    fn energy_rule_selects_dominant_rank() {
        // One dominant direction (99% energy) -> k = 1 at 95%.
        let mut a = Matrix::zeros(8, 3);
        a.set(0, 0, 100.0);
        a.set(1, 1, 1.0);
        a.set(2, 2, 0.5);
        let d = svd(&a);
        assert_eq!(d.rank_for_energy(0.95), 1);
        assert_eq!(d.rank_for_energy(0.999), 3);
    }

    #[test]
    fn proportions_sum_to_one() {
        let a = Matrix::from_fn(12, 6, |r, c| ((r + 2 * c) as f64 * 0.21).cos());
        let d = svd(&a);
        let p = d.proportions();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in p.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn zero_matrix_is_handled() {
        let a = Matrix::zeros(5, 3);
        let d = svd(&a);
        assert!(d.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(d.rank_for_energy(0.95), 0);
        assert_close(&a, &d.reconstruct(3), 1e-15);
    }
}
