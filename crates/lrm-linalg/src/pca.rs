//! Principal component analysis for the PCA preconditioner.
//!
//! Following Section V-A1 of the paper: the eigenvectors and eigenvalues
//! of the column covariance matrix are computed, the `k` eigenvectors with
//! the largest eigenvalues are selected (the paper's rule: smallest `k`
//! whose cumulative variance proportion reaches 95 %), and the data are
//! projected onto them. The *reduced representation* is the score matrix
//! (m × k) plus the eigenvector matrix (n × k) plus the column means.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;

/// A fitted PCA model: projection basis, per-component variances, and the
/// column means removed before projection.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (length n).
    pub means: Vec<f64>,
    /// Eigenvectors as columns, sorted by descending eigenvalue (n × n).
    pub components: Matrix,
    /// Eigenvalues (variances along each component), descending.
    pub variances: Vec<f64>,
}

impl Pca {
    /// Fits a PCA on the rows of `data` (m observations × n variables).
    ///
    /// # Panics
    /// Panics when `data` has no rows or no columns.
    pub fn fit(data: &Matrix) -> Self {
        let (m, n) = (data.rows(), data.cols());
        assert!(m > 0 && n > 0, "pca: empty data");
        let means: Vec<f64> = (0..n)
            .map(|c| (0..m).map(|r| data.get(r, c)).sum::<f64>() / m as f64)
            .collect();
        // Covariance = Xcᵀ Xc / (m - 1)   (population form for m == 1).
        let denom = (m.max(2) - 1) as f64;
        let mut cov = Matrix::zeros(n, n);
        for r in 0..m {
            let row = data.row(r);
            for i in 0..n {
                let di = row[i] - means[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..n {
                    let v = cov.get(i, j) + di * (row[j] - means[j]);
                    cov.set(i, j, v);
                }
            }
        }
        for i in 0..n {
            for j in i..n {
                let v = cov.get(i, j) / denom;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        let e = symmetric_eigen(&cov);
        // Covariance eigenvalues are >= 0 up to round-off.
        let variances = e.values.iter().map(|&l| l.max(0.0)).collect();
        Self {
            means,
            components: e.vectors,
            variances,
        }
    }

    /// Projects `data` onto the first `k` components, returning the m × k
    /// score matrix.
    pub fn transform(&self, data: &Matrix, k: usize) -> Matrix {
        let k = k.min(self.components.cols());
        let basis = self.components.take_cols(k);
        let centered = Matrix::from_fn(data.rows(), data.cols(), |r, c| {
            data.get(r, c) - self.means[c]
        });
        centered.matmul(&basis)
    }

    /// Reconstructs data from `k`-component scores: `scores · basisᵀ + μ`.
    pub fn inverse_transform(&self, scores: &Matrix) -> Matrix {
        let k = scores.cols();
        let basis = self.components.take_cols(k);
        let approx = scores.matmul(&basis.transpose());
        Matrix::from_fn(approx.rows(), approx.cols(), |r, c| {
            approx.get(r, c) + self.means[c]
        })
    }

    /// Smallest `k` with cumulative variance proportion `>= fraction`
    /// (the paper uses 0.95). Returns 0 for zero-variance data.
    pub fn components_for_variance(&self, fraction: f64) -> usize {
        let total: f64 = self.variances.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, &v) in self.variances.iter().enumerate() {
            acc += v;
            if acc / total >= fraction {
                return i + 1;
            }
        }
        self.variances.len()
    }

    /// Variance proportions per component (the series Fig. 7 plots).
    pub fn proportions(&self) -> Vec<f64> {
        let total: f64 = self.variances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.variances.len()];
        }
        self.variances.iter().map(|&v| v / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_correlated(m: usize) -> Matrix {
        // Two strongly correlated columns plus small noise-like wiggle.
        Matrix::from_fn(m, 2, |r, c| {
            let t = r as f64 * 0.1;
            if c == 0 {
                t
            } else {
                2.0 * t + 0.01 * (r as f64 * 1.7).sin()
            }
        })
    }

    #[test]
    fn first_component_captures_correlated_variance() {
        let data = toy_correlated(200);
        let pca = Pca::fit(&data);
        let p = pca.proportions();
        assert!(p[0] > 0.999, "first PC proportion {p:?}");
        assert_eq!(pca.components_for_variance(0.95), 1);
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let data = Matrix::from_fn(50, 4, |r, c| ((r * (c + 1)) as f64 * 0.13).sin());
        let pca = Pca::fit(&data);
        let scores = pca.transform(&data, 4);
        let rec = pca.inverse_transform(&scores);
        assert!(data.sub(&rec).fro_norm() < 1e-9);
    }

    #[test]
    fn truncated_reconstruction_error_decreases_with_k() {
        let data = Matrix::from_fn(80, 6, |r, c| {
            ((r as f64) * 0.05).sin() * (c as f64 + 1.0) + 0.1 * ((r * c) as f64 * 0.3).cos()
        });
        let pca = Pca::fit(&data);
        let mut last = f64::INFINITY;
        for k in 1..=6 {
            let rec = pca.inverse_transform(&pca.transform(&data, k));
            let e = data.sub(&rec).fro_norm();
            assert!(e <= last + 1e-9, "k={k}: {e} vs {last}");
            last = e;
        }
    }

    #[test]
    fn means_are_column_means() {
        let data = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 30.0]);
        let pca = Pca::fit(&data);
        assert_eq!(pca.means, vec![2.0, 20.0]);
    }

    #[test]
    fn constant_data_has_zero_variance() {
        let data = Matrix::from_fn(10, 3, |_, c| c as f64);
        let pca = Pca::fit(&data);
        assert!(pca.variances.iter().all(|&v| v < 1e-12));
        assert_eq!(pca.components_for_variance(0.95), 0);
        // Reconstruction still returns the constant rows via the means.
        let rec = pca.inverse_transform(&pca.transform(&data, 1));
        assert!(data.sub(&rec).fro_norm() < 1e-9);
    }

    #[test]
    fn variances_descend() {
        let data = Matrix::from_fn(60, 5, |r, c| {
            ((r + c * 7) as f64 * 0.23).sin() * (5 - c) as f64
        });
        let pca = Pca::fit(&data);
        for w in pca.variances.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn proportions_sum_to_one_for_nonzero_data() {
        let data = toy_correlated(64);
        let p = Pca::fit(&data).proportions();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn rejects_empty() {
        Pca::fit(&Matrix::zeros(0, 3));
    }
}
