//! Randomized truncated SVD (Halko–Martinsson–Tropp).
//!
//! The paper's Fig. 12 complaint about SVD preconditioning is its cost;
//! a randomized range sketch computes only the `k` needed triplets:
//! sample `Ω ~ N(0,1)^{n×(k+p)}`, form `Y = (A Aᵀ)^q A Ω`, orthonormalize
//! `Y = QR`, decompose the small `B = Qᵀ A`, and lift `U = Q U_B`. For
//! the tall-skinny matrices the preconditioners produce, this replaces
//! the `O(m n²)` one-sided Jacobi with `O(m n (k+p))`.

use crate::matrix::Matrix;
use crate::qr::qr;
use crate::svd::{svd, Svd};
use lrm_rng::Rng64;

/// Configuration of the randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct RsvdConfig {
    /// Target rank `k` (the triplets actually returned).
    pub rank: usize,
    /// Oversampling `p` (defaults to 8; improves accuracy cheaply).
    pub oversample: usize,
    /// Power-iteration count `q` (0..=3; sharpens decaying spectra).
    pub power_iterations: usize,
    /// RNG seed — fixed so runs are reproducible.
    pub seed: u64,
}

impl RsvdConfig {
    /// Sensible defaults for rank `k`.
    pub fn rank(k: usize) -> Self {
        Self {
            rank: k.max(1),
            oversample: 8,
            power_iterations: 1,
            seed: 0x5eed,
        }
    }
}

/// Computes an approximate truncated SVD of `a` with `cfg.rank` triplets.
pub fn randomized_svd(a: &Matrix, cfg: &RsvdConfig) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    let l = (cfg.rank + cfg.oversample).min(n).min(m).max(1);

    let mut rng = Rng64::new(cfg.seed);
    let omega = Matrix::from_fn(n, l, |_, _| rng.normal());

    // Range sketch with optional power iterations (re-orthonormalized
    // between applications for stability).
    let mut y = a.matmul(&omega);
    for _ in 0..cfg.power_iterations {
        let (q, _) = qr(&y);
        let z = a.transpose().matmul(&q);
        let (qz, _) = qr(&z);
        y = a.matmul(&qz);
    }
    let (q, _) = qr(&y);

    // Small decomposition: B = Qᵀ A is l×n.
    let b = q.transpose().matmul(a);
    let small = svd(&b);

    let k = cfg.rank.min(small.sigma.len());
    let u = q.matmul(&small.u.take_cols(k));
    Svd {
        u,
        sigma: small.sigma[..k].to_vec(),
        v: small.v.take_cols(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_plus_noise(m: usize, n: usize, rank: usize) -> Matrix {
        let mut a = Matrix::zeros(m, n);
        for t in 0..rank {
            let scale = 10.0 / (t + 1) as f64;
            for r in 0..m {
                for c in 0..n {
                    let v = a.get(r, c)
                        + scale
                            * ((r as f64 * (t + 1) as f64 * 0.13).sin()
                                * (c as f64 * (t + 1) as f64 * 0.21).cos());
                    a.set(r, c, v);
                }
            }
        }
        a
    }

    #[test]
    fn recovers_dominant_singular_values() {
        let a = low_rank_plus_noise(120, 30, 3);
        let exact = svd(&a);
        let approx = randomized_svd(&a, &RsvdConfig::rank(5));
        for i in 0..3 {
            let rel = (exact.sigma[i] - approx.sigma[i]).abs() / exact.sigma[i];
            assert!(
                rel < 1e-6,
                "sigma {i}: {} vs {}",
                exact.sigma[i],
                approx.sigma[i]
            );
        }
    }

    #[test]
    fn truncated_reconstruction_is_accurate() {
        let a = low_rank_plus_noise(80, 24, 2);
        let approx = randomized_svd(&a, &RsvdConfig::rank(4));
        let rec = approx.reconstruct(4);
        assert!(a.sub(&rec).fro_norm() < 1e-6 * (1.0 + a.fro_norm()));
    }

    #[test]
    fn factors_are_orthonormal_on_retained_directions() {
        // Add full-rank pseudo-noise so all requested directions exist.
        let mut a = low_rank_plus_noise(60, 20, 4);
        for r in 0..60 {
            for c in 0..20 {
                let v = a.get(r, c) + 0.01 * (((r * 37 + c * 13) % 89) as f64 / 89.0 - 0.5);
                a.set(r, c, v);
            }
        }
        let d = randomized_svd(&a, &RsvdConfig::rank(6));
        let utu = d.u.transpose().matmul(&d.u);
        let k = d.sigma.len();
        assert!(
            utu.sub(&Matrix::identity(k)).fro_norm() < 1e-8,
            "UᵀU deviation {}",
            utu.sub(&Matrix::identity(k)).fro_norm()
        );
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let a = low_rank_plus_noise(40, 16, 3);
        let d1 = randomized_svd(&a, &RsvdConfig::rank(4));
        let d2 = randomized_svd(&a, &RsvdConfig::rank(4));
        assert_eq!(d1.sigma, d2.sigma);
    }

    #[test]
    fn power_iterations_improve_noisy_spectra() {
        // Add broadband noise: q = 2 must estimate sigma_1 at least as
        // well as q = 0.
        let mut a = low_rank_plus_noise(100, 32, 2);
        for r in 0..100 {
            for c in 0..32 {
                let v = a.get(r, c) + 0.3 * (((r * 31 + c * 17) % 101) as f64 / 101.0 - 0.5);
                a.set(r, c, v);
            }
        }
        let exact = svd(&a);
        let q0 = randomized_svd(
            &a,
            &RsvdConfig {
                power_iterations: 0,
                ..RsvdConfig::rank(2)
            },
        );
        let q2 = randomized_svd(
            &a,
            &RsvdConfig {
                power_iterations: 2,
                ..RsvdConfig::rank(2)
            },
        );
        let e0 = (exact.sigma[0] - q0.sigma[0]).abs();
        let e2 = (exact.sigma[0] - q2.sigma[0]).abs();
        assert!(e2 <= e0 + 1e-9, "q0 err {e0}, q2 err {e2}");
    }

    #[test]
    fn rank_larger_than_matrix_is_clamped() {
        let a = low_rank_plus_noise(10, 4, 2);
        let d = randomized_svd(&a, &RsvdConfig::rank(99));
        assert!(d.sigma.len() <= 4);
    }
}
