//! Bound-verification reports: quantify how a reconstruction honored its
//! error bound across a whole field.
//!
//! Compression papers (this one included) report a single RMSE per run;
//! production users also need to know the *worst* point, how many points
//! approached the bound, and whether any violated it. [`BoundReport`]
//! computes all of that in one pass.

/// The kind of bound being checked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// `|a - b| <= e` everywhere.
    Absolute(f64),
    /// `|a - b| <= rel * |a|` pointwise (points with `|a|` below the
    /// floor are checked absolutely against `rel * floor`).
    Relative {
        /// The relative tolerance.
        rel: f64,
        /// Magnitude floor below which the check switches to absolute.
        floor: f64,
    },
}

use crate::error::StatsError;

/// One-pass verification summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundReport {
    /// Points checked.
    pub count: usize,
    /// Points violating the bound.
    pub violations: usize,
    /// Worst observed error / allowed error ratio (1.0 = at the bound).
    pub worst_utilization: f64,
    /// Index of the worst point.
    pub worst_index: usize,
    /// Mean error / allowed error ratio.
    pub mean_utilization: f64,
}

impl BoundReport {
    /// Verifies `recon` against `orig` under `bound`.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn check(orig: &[f64], recon: &[f64], bound: Bound) -> Self {
        assert_eq!(orig.len(), recon.len(), "verify: length mismatch");
        let mut worst = 0.0f64;
        let mut worst_index = 0usize;
        let mut sum = 0.0f64;
        let mut violations = 0usize;
        for (i, (&a, &b)) in orig.iter().zip(recon).enumerate() {
            let err = (a - b).abs();
            let allowed = match bound {
                Bound::Absolute(e) => e,
                Bound::Relative { rel, floor } => rel * a.abs().max(floor),
            };
            let u = if allowed > 0.0 {
                err / allowed
            } else if err == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            if u > worst {
                worst = u;
                worst_index = i;
            }
            sum += u;
            if u > 1.0 {
                violations += 1;
            }
        }
        Self {
            count: orig.len(),
            violations,
            worst_utilization: worst,
            worst_index,
            mean_utilization: if orig.is_empty() {
                0.0
            } else {
                sum / orig.len() as f64
            },
        }
    }

    /// True when no point violated the bound.
    pub fn holds(&self) -> bool {
        self.violations == 0
    }

    /// Non-panicking [`check`](Self::check): a length mismatch or a
    /// NaN/inf on either side is a typed [`StatsError`], because a
    /// bound is meaningless at a non-finite point — `NaN <= e` is
    /// false for every `e`, and a report computed through it would
    /// claim violations (or worse, compare NaN and claim none).
    pub fn try_check(orig: &[f64], recon: &[f64], bound: Bound) -> Result<Self, StatsError> {
        if orig.len() != recon.len() {
            return Err(StatsError::LengthMismatch {
                left: orig.len(),
                right: recon.len(),
            });
        }
        for (i, (&a, &b)) in orig.iter().zip(recon).enumerate() {
            if !a.is_finite() || !b.is_finite() {
                return Err(StatsError::NonFiniteInput { index: i });
            }
        }
        Ok(Self::check(orig, recon, bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_bound_report() {
        let orig = [1.0, 2.0, 3.0, 4.0];
        let recon = [1.05, 2.0, 2.92, 4.2];
        let r = BoundReport::check(&orig, &recon, Bound::Absolute(0.1));
        assert_eq!(r.count, 4);
        assert_eq!(r.violations, 1); // the 0.2 error at index 3
        assert_eq!(r.worst_index, 3);
        assert!((r.worst_utilization - 2.0).abs() < 1e-12);
        assert!(!r.holds());
    }

    #[test]
    fn relative_bound_report() {
        let orig = [100.0, 0.001];
        let recon = [100.5, 0.0011];
        let r = BoundReport::check(
            &orig,
            &recon,
            Bound::Relative {
                rel: 0.01,
                floor: 1e-6,
            },
        );
        // 0.5/1.0 = 0.5 and 1e-4/1e-5 = 10 -> violation at index 1.
        assert_eq!(r.violations, 1);
        assert_eq!(r.worst_index, 1);
    }

    #[test]
    fn perfect_reconstruction_holds_trivially() {
        let d = [1.0, -2.0, 0.0];
        let r = BoundReport::check(&d, &d, Bound::Absolute(1e-12));
        assert!(r.holds());
        assert_eq!(r.worst_utilization, 0.0);
        assert_eq!(r.mean_utilization, 0.0);
    }

    #[test]
    fn zero_allowed_error_with_mismatch_is_infinite() {
        let r = BoundReport::check(&[1.0], &[1.5], Bound::Absolute(0.0));
        assert!(r.worst_utilization.is_infinite());
        assert!(!r.holds());
    }

    #[test]
    fn empty_slices_are_vacuously_fine() {
        let r = BoundReport::check(&[], &[], Bound::Absolute(1.0));
        assert!(r.holds());
        assert_eq!(r.count, 0);
    }

    #[test]
    fn try_check_rejects_nan_with_typed_error() {
        let e = BoundReport::try_check(&[1.0, f64::NAN], &[1.0, 1.0], Bound::Absolute(0.1));
        assert_eq!(e, Err(StatsError::NonFiniteInput { index: 1 }));
        let e = BoundReport::try_check(&[1.0], &[f64::INFINITY], Bound::Absolute(0.1));
        assert_eq!(e, Err(StatsError::NonFiniteInput { index: 0 }));
    }

    #[test]
    fn try_check_rejects_length_mismatch() {
        let e = BoundReport::try_check(&[1.0], &[1.0, 2.0], Bound::Absolute(0.1));
        assert_eq!(e, Err(StatsError::LengthMismatch { left: 1, right: 2 }));
    }

    #[test]
    fn try_check_matches_check_on_finite_data() {
        let orig = [1.0, 2.0, 3.0];
        let recon = [1.05, 2.0, 3.02];
        let bound = Bound::Absolute(0.1);
        let r = BoundReport::try_check(&orig, &recon, bound).expect("finite");
        assert_eq!(r, BoundReport::check(&orig, &recon, bound));
        assert!(r.holds());
    }

    #[test]
    fn utilization_reflects_margin() {
        // Errors at half the bound -> utilization 0.5.
        let orig = [10.0, 20.0];
        let recon = [10.05, 20.05];
        let r = BoundReport::check(&orig, &recon, Bound::Absolute(0.1));
        assert!((r.mean_utilization - 0.5).abs() < 1e-12);
        assert!(r.holds());
    }
}
