//! Reconstruction-error metrics.
//!
//! The paper assesses compression quality with RMSE (Fig. 10) and sweeps
//! rate–distortion curves of compression ratio vs RMSE (Fig. 11). Error
//! bounds for the SZ-like codec are *pointwise relative*, which
//! [`max_pointwise_rel_error`] verifies.

/// Mean squared error between `a` and `b`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let s: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum();
    s / a.len() as f64
}

/// Root mean squared error between `a` and `b`.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    mse(a, b).sqrt()
}

/// RMSE normalized by the value range of `a` (the reference data).
/// Returns plain RMSE when the range is zero.
pub fn nrmse(a: &[f64], b: &[f64]) -> f64 {
    let r = rmse(a, b);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in a {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if range > 0.0 {
        r / range
    } else {
        r
    }
}

/// Peak signal-to-noise ratio in dB, with the peak taken as the value
/// range of the reference `a`. Returns `f64::INFINITY` for identical data.
pub fn psnr(a: &[f64], b: &[f64]) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        return f64::INFINITY;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in a {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let peak = hi - lo;
    20.0 * peak.log10() - 10.0 * m.log10()
}

/// Maximum absolute pointwise error.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Maximum pointwise *relative* error `|a_i - b_i| / |a_i|`, skipping
/// reference points whose magnitude is below `floor` (where relative error
/// is ill-defined). This is the error semantics of SZ's point-wise relative
/// bound mode used throughout the paper's evaluation.
pub fn max_pointwise_rel_error(a: &[f64], b: &[f64], floor: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "max_pointwise_rel_error: length mismatch");
    let mut worst: f64 = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if x.abs() > floor {
            worst = worst.max((x - y).abs() / x.abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let d = [1.0, -2.0, 3.0];
        assert_eq!(mse(&d, &d), 0.0);
        assert_eq!(rmse(&d, &d), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((mse(&a, &b) - 12.5).abs() < 1e-15);
        assert!((rmse(&a, &b) - 12.5f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let a = [0.0, 10.0];
        let b = [1.0, 10.0];
        // rmse = sqrt(0.5), range = 10
        assert!((nrmse(&a, &b) - (0.5f64.sqrt() / 10.0)).abs() < 1e-15);
    }

    #[test]
    fn psnr_of_identical_is_infinite() {
        let d = [1.0, 2.0];
        assert_eq!(psnr(&d, &d), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let small: Vec<f64> = a.iter().map(|v| v + 0.01).collect();
        let big: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        assert!(psnr(&a, &small) > psnr(&a, &big));
    }

    #[test]
    fn max_abs_error_finds_worst_point() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.1];
        assert!((max_abs_error(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rel_error_skips_tiny_reference_values() {
        let a = [1e-300, 10.0];
        let b = [1.0, 10.1];
        let e = max_pointwise_rel_error(&a, &b, 1e-100);
        assert!((e - 0.01).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = [5.0, -5.0];
        assert_eq!(max_pointwise_rel_error(&a, &a, 0.0), 0.0);
    }
}
